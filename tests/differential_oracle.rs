//! Differential top-N oracle: every algorithm in the family is pinned to a
//! naive full-scan ground truth on seeded workloads.
//!
//! The oracle implementations here are deliberately *independent* of the
//! library code they check — plain exhaustive scans and full sorts written
//! in this file — so a bug in a shared helper (e.g. `TopNHeap` or
//! `InMemoryLists::topk_oracle`) cannot hide itself.
//!
//! Coverage, per the paper's survey of top-N techniques:
//!
//! * bounded-heap top-N and the full-sort baseline (`moa_topn::heap`),
//! * Fagin's FA, TA, and NRA over seeded correlated feature lists
//!   (`moa_corpus::FeatureLists` → `InMemoryLists`),
//! * Carey–Kossmann STOP AFTER policies against a filtered oracle,
//! * Donjerkovic–Ramakrishnan probabilistic cutoff: exactness after
//!   restarts plus the first-pass recall bound,
//! * the full corpus → index → fragmentation → algebra executor path
//!   against a from-scratch posting-scan scorer.

use std::sync::Arc;

use moa_core::{Env, Expr, IrRuntime, Planner, Session, Value};
use moa_corpus::{
    generate_queries, Collection, CollectionConfig, Correlation, FeatureConfig, FeatureLists,
    QueryConfig,
};
use moa_ir::{
    DaatSearcher, EngineSet, FragSearcher, FragmentSpec, FragmentedIndex, InvertedIndex,
    PhysicalPlan, RankingModel, Searcher, Strategy, SwitchPolicy,
};
use moa_storage::EquiWidthHistogram;
use moa_topn::{
    aggressive, conservative, fagin_topn, nra_topn, prob_topn, scan_stop, ta_topn, topn,
    topn_full_sort, Agg, InMemoryLists, SortedAccess,
};

// ---------------------------------------------------------------------------
// The naive oracles.
// ---------------------------------------------------------------------------

/// Full-sort top-n over scored tuples: score descending, object id ascending.
/// This is the ground truth every algorithm must reproduce.
fn oracle_topn(scored: &[(u32, f64)], n: usize) -> Vec<(u32, f64)> {
    let mut all = scored.to_vec();
    all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(n);
    all
}

/// Exhaustive-scan top-n under a monotone aggregate over `grades[list][obj]`.
fn oracle_agg_topn(grades: &[Vec<f64>], n: usize, agg: &Agg) -> Vec<(u32, f64)> {
    let num_objects = grades.first().map_or(0, Vec::len);
    let scored: Vec<(u32, f64)> = (0..num_objects as u32)
        .map(|obj| {
            let per_list: Vec<f64> = grades.iter().map(|l| l[obj as usize]).collect();
            (obj, agg.apply(&per_list))
        })
        .collect();
    oracle_topn(&scored, n)
}

/// Fraction of the oracle's object set that `got` recovered.
fn recall(got: &[(u32, f64)], oracle: &[(u32, f64)]) -> f64 {
    if oracle.is_empty() {
        return 1.0;
    }
    let want: std::collections::HashSet<u32> = oracle.iter().map(|&(o, _)| o).collect();
    let hit = got.iter().filter(|&&(o, _)| want.contains(&o)).count();
    hit as f64 / want.len() as f64
}

/// Asserts two ranked lists agree: same length, identical score sequences,
/// and rank-for-rank score agreement regardless of float-tie ordering.
fn assert_ranking_matches(got: &[(u32, f64)], want: &[(u32, f64)], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: length mismatch");
    for (rank, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g.1 - w.1).abs() <= 1e-9,
            "{context}: score mismatch at rank {rank}: got {:?} want {:?}",
            g,
            w
        );
    }
    // Descending order of the candidate.
    for pair in got.windows(2) {
        assert!(
            pair[0].1 >= pair[1].1 - 1e-12,
            "{context}: ranking not descending: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }
}

// ---------------------------------------------------------------------------
// Seeded workloads.
// ---------------------------------------------------------------------------

/// `(label, objects, lists, correlation, seed)` — the exact-safe middleware
/// configurations the acceptance criteria require (≥ 3, different regimes).
fn middleware_workloads() -> Vec<(&'static str, FeatureConfig)> {
    vec![
        (
            "independent_small",
            FeatureConfig {
                num_objects: 64,
                num_lists: 2,
                correlation: Correlation::Independent,
                seed: 0xA11CE,
            },
        ),
        (
            "correlated_mid",
            FeatureConfig {
                num_objects: 400,
                num_lists: 3,
                correlation: Correlation::Correlated(0.7),
                seed: 0xB0B1,
            },
        ),
        (
            "anticorrelated_wide",
            FeatureConfig {
                num_objects: 250,
                num_lists: 4,
                correlation: Correlation::AntiCorrelated(0.6),
                seed: 0xC4A7,
            },
        ),
        (
            "single_list",
            FeatureConfig {
                num_objects: 150,
                num_lists: 1,
                correlation: Correlation::Independent,
                seed: 0x5EED,
            },
        ),
    ]
}

fn grades_of(fl: &FeatureLists) -> Vec<Vec<f64>> {
    (0..fl.num_lists())
        .map(|i| {
            (0..fl.num_objects() as u32)
                .map(|o| fl.grade(i, o))
                .collect()
        })
        .collect()
}

/// A deterministic scored relation derived from one feature list.
fn scored_relation(config: &FeatureConfig) -> Vec<(u32, f64)> {
    let fl = FeatureLists::generate(config).expect("valid workload config");
    (0..fl.num_objects() as u32)
        .map(|o| (o, fl.grade(0, o)))
        .collect()
}

// ---------------------------------------------------------------------------
// Middleware family: FA / TA / NRA / heap vs the oracle.
// ---------------------------------------------------------------------------

#[test]
fn fa_ta_heap_agree_with_oracle_on_seeded_workloads() {
    for (label, config) in middleware_workloads() {
        let fl = FeatureLists::generate(&config).expect("valid workload config");
        let grades = grades_of(&fl);
        let lists = InMemoryLists::from_grades(grades.clone());
        let aggs: Vec<Agg> = vec![
            Agg::Sum,
            Agg::Min,
            Agg::Max,
            Agg::Weighted((0..config.num_lists).map(|i| 0.5 + i as f64).collect()),
        ];
        for agg in &aggs {
            assert!(agg.validate(lists.num_lists()), "{label}: invalid agg");
            for n in [
                0usize,
                1,
                7,
                config.num_objects / 2,
                config.num_objects,
                config.num_objects + 10,
            ] {
                let oracle = oracle_agg_topn(&grades, n, agg);
                let fa = fagin_topn(&lists, n, agg);
                let ta = ta_topn(&lists, n, agg);
                assert_eq!(
                    fa.items, oracle,
                    "{label}: FA diverged from oracle (n={n}, agg={agg:?})"
                );
                assert_eq!(
                    ta.items, oracle,
                    "{label}: TA diverged from oracle (n={n}, agg={agg:?})"
                );
                // TA never does more sorted accesses than FA's full drain
                // bound: m lists × universe.
                let drain = lists.num_lists() * lists.num_objects();
                assert!(
                    ta.stats.sorted_accesses <= drain,
                    "{label}: TA over-scanned ({} > {drain})",
                    ta.stats.sorted_accesses
                );
            }
        }
    }
}

#[test]
fn nra_matches_oracle_set_with_sound_bounds_and_no_random_access() {
    for (label, config) in middleware_workloads() {
        let fl = FeatureLists::generate(&config).expect("valid workload config");
        let grades = grades_of(&fl);
        let lists = InMemoryLists::from_grades(grades.clone());
        for n in [1usize, 5, 20, config.num_objects] {
            let oracle = oracle_agg_topn(&grades, n, &Agg::Sum);
            let nra = nra_topn(&lists, n, &Agg::Sum);
            let mut got: Vec<u32> = nra.items.iter().map(|&(o, _)| o).collect();
            let mut want: Vec<u32> = oracle.iter().map(|&(o, _)| o).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "{label}: NRA object set diverged (n={n})");
            // NRA reports lower bounds; each must not exceed the exact score.
            for &(obj, reported) in &nra.items {
                let exact: f64 = grades.iter().map(|l| l[obj as usize]).sum();
                assert!(
                    reported <= exact + 1e-9,
                    "{label}: NRA bound unsound for obj {obj}: {reported} > {exact}"
                );
            }
            assert_eq!(
                nra.stats.random_accesses, 0,
                "{label}: NRA did random access"
            );
        }
    }
}

#[test]
fn bounded_heap_matches_full_sort_and_oracle() {
    for (label, config) in middleware_workloads() {
        let scored = scored_relation(&config);
        for n in [
            0usize,
            1,
            13,
            scored.len() / 2,
            scored.len(),
            scored.len() + 5,
        ] {
            let oracle = oracle_topn(&scored, n);
            assert_eq!(
                topn(scored.clone(), n),
                oracle,
                "{label}: heap top-n (n={n})"
            );
            assert_eq!(
                topn_full_sort(scored.clone(), n),
                oracle,
                "{label}: full-sort top-n (n={n})"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// STOP AFTER policies vs the filtered oracle.
// ---------------------------------------------------------------------------

#[test]
fn stop_after_policies_agree_with_filtered_oracle() {
    for (label, config) in middleware_workloads() {
        let scored = scored_relation(&config);
        for modulo in [1u32, 3, 10] {
            let pred = move |obj: u32| obj.is_multiple_of(modulo);
            let filtered: Vec<(u32, f64)> =
                scored.iter().copied().filter(|&(o, _)| pred(o)).collect();
            for n in [1usize, 8, 40, scored.len()] {
                let oracle = oracle_topn(&filtered, n);
                let cons = conservative(&scored, n, pred);
                assert_eq!(
                    cons.items, oracle,
                    "{label}: conservative diverged (n={n}, modulo={modulo})"
                );
                // Conservative never restarts and touches everything.
                assert_eq!(cons.restarts, 0);
                assert_eq!(cons.tuples_processed, scored.len());
                // Aggressive agrees regardless of estimate quality; sweep
                // optimistic and pessimistic pass-rate estimates.
                for est in [0.05f64, 1.0 / f64::from(modulo), 0.95] {
                    let aggr = aggressive(&scored, n, est, 1.2, pred);
                    assert_eq!(
                        aggr.items, oracle,
                        "{label}: aggressive diverged (n={n}, modulo={modulo}, est={est})"
                    );
                }
            }
        }
        // Scan-stop on a best-first input is exactly the oracle prefix.
        let sorted = oracle_topn(&scored, scored.len());
        for n in [0usize, 1, 17, scored.len() + 3] {
            let r = scan_stop(&sorted, n);
            assert_eq!(
                r.items,
                oracle_topn(&scored, n),
                "{label}: scan_stop (n={n})"
            );
            assert_eq!(r.tuples_processed, n.min(sorted.len()));
        }
    }
}

// ---------------------------------------------------------------------------
// Probabilistic cutoff: exact after restarts, recall bound on the first pass.
// ---------------------------------------------------------------------------

#[test]
fn probabilistic_cutoff_is_exact_and_first_pass_recall_is_bounded() {
    for (label, config) in middleware_workloads() {
        let scored = scored_relation(&config);
        let values: Vec<f64> = scored.iter().map(|&(_, s)| s).collect();
        let hist = EquiWidthHistogram::build(&values, 64).expect("non-empty scores");
        let mut prev_cutoff = f64::INFINITY;
        for confidence in [0.5f64, 0.9, 0.99] {
            for n in [1usize, 10, scored.len() / 3] {
                let oracle = oracle_topn(&scored, n);
                let r = prob_topn(&scored, n, &hist, confidence).expect("valid confidence");
                // The restart loop makes the final answer exact — recall 1.0,
                // which trivially satisfies any confidence-level bound.
                assert_eq!(
                    r.items, oracle,
                    "{label}: prob_topn diverged (n={n}, confidence={confidence})"
                );
                assert!((recall(&r.items, &oracle) - 1.0).abs() < f64::EPSILON);
                // First-pass recall bound: when the optimizer's gamble paid
                // off (no restart), the first pass alone must already contain
                // the full top-n — that is exactly the event the confidence
                // level prices.
                let first_pass: Vec<(u32, f64)> = scored
                    .iter()
                    .copied()
                    .filter(|&(_, s)| s >= r.initial_cutoff)
                    .collect();
                assert_eq!(first_pass.len(), r.first_pass_survivors);
                if r.restarts == 0 {
                    let fp_recall = recall(&oracle_topn(&first_pass, n), &oracle);
                    assert!(
                        (fp_recall - 1.0).abs() < f64::EPSILON,
                        "{label}: zero-restart run missed top-n (recall {fp_recall})"
                    );
                } else {
                    // A restart means the first pass was short — the report
                    // must be consistent about that.
                    assert!(
                        r.first_pass_survivors < n,
                        "{label}: restarted with {} ≥ n={n} survivors",
                        r.first_pass_survivors
                    );
                    assert!(r.tuples_scanned > scored.len());
                }
            }
            // Higher confidence can only lower (relax) the initial cutoff.
            let r = prob_topn(&scored, 10, &hist, confidence).expect("valid confidence");
            assert!(
                r.initial_cutoff <= prev_cutoff + 1e-12,
                "{label}: cutoff not monotone in confidence"
            );
            prev_cutoff = r.initial_cutoff;
        }

        // A stale histogram (believes scores are twice as large) forces
        // restarts, yet the answer stays exact: the error of the
        // probabilistic variant is bounded by its restart mechanism.
        let inflated: Vec<f64> = values.iter().map(|v| v * 2.0 + 1.0).collect();
        let stale = EquiWidthHistogram::build(&inflated, 64).expect("non-empty scores");
        let n = 10usize.min(scored.len());
        let r = prob_topn(&scored, n, &stale, 0.9).expect("valid confidence");
        assert_eq!(
            r.items,
            oracle_topn(&scored, n),
            "{label}: stale histogram broke exactness"
        );
        assert!(
            r.restarts >= 1,
            "{label}: expected restarts under stale histogram"
        );
    }
}

// ---------------------------------------------------------------------------
// End to end: corpus → index → fragmentation → executor vs a posting-scan
// oracle that never touches the index.
// ---------------------------------------------------------------------------

/// Scores every document by scanning the *collection's* raw postings —
/// independent of `InvertedIndex`, fragments, accumulators, and heaps.
fn naive_document_scores(
    collection: &Collection,
    model: RankingModel,
    terms: &[u32],
) -> Vec<(u32, f64)> {
    // Rebuild collection statistics from raw postings.
    let stats = moa_ir::CollectionStats {
        num_docs: collection.num_docs(),
        avg_doc_len: collection.total_tokens() as f64 / collection.num_docs().max(1) as f64,
        total_tokens: collection.total_tokens(),
    };
    let mut scores = vec![0.0f64; collection.num_docs()];
    let mut touched = vec![false; collection.num_docs()];
    for &term in terms {
        let df = collection.df()[term as usize];
        let cf = collection.cf()[term as usize];
        for p in collection.postings_for_term(term) {
            let doc_len = collection.doc_len()[p.doc as usize];
            scores[p.doc as usize] += model.term_weight(p.tf, df, cf, doc_len, &stats);
            touched[p.doc as usize] = true;
        }
    }
    (0..collection.num_docs() as u32)
        .filter(|&d| touched[d as usize])
        .map(|d| (d, scores[d as usize]))
        .collect()
}

fn e2e_collections() -> Vec<(&'static str, CollectionConfig)> {
    vec![
        ("tiny_preset", CollectionConfig::tiny()),
        (
            "mid_zipfian",
            CollectionConfig {
                num_docs: 300,
                vocab_size: 900,
                avg_doc_len: 30,
                zipf_exponent: 1.1,
                num_topics: 8,
                topic_mix: 0.4,
                seed: 0xD1FF,
            },
        ),
        (
            "flat_vocabulary",
            CollectionConfig {
                num_docs: 150,
                vocab_size: 200,
                avg_doc_len: 15,
                zipf_exponent: 0.7,
                num_topics: 3,
                topic_mix: 0.2,
                seed: 0x02AC,
            },
        ),
    ]
}

#[test]
fn every_engine_path_matches_the_posting_scan_oracle() {
    for (label, config) in e2e_collections() {
        let collection = Collection::generate(config).expect("valid collection config");
        let model = RankingModel::default();
        let index = Arc::new(InvertedIndex::from_collection(&collection));
        let frag = Arc::new(
            FragmentedIndex::build(Arc::clone(&index), FragmentSpec::TermFraction(0.9))
                .expect("non-empty collection"),
        );
        let queries = generate_queries(
            &collection,
            &QueryConfig {
                num_queries: 8,
                seed: 0x9E2E,
                ..QueryConfig::default()
            },
        )
        .expect("valid workload");

        let mut eaat = Searcher::new(&index, model);
        let daat = DaatSearcher::new(&index, model);
        let mut frag_searcher =
            FragSearcher::new(Arc::clone(&frag), model, SwitchPolicy::default());
        let rt = Arc::new(IrRuntime::new(
            Arc::clone(&frag),
            model,
            SwitchPolicy::default(),
            Strategy::FullScan,
        ));
        let session = Session::with_ir(rt);

        for (qi, q) in queries.iter().enumerate() {
            let n = 1 + (qi % 3) * 7; // 1, 8, 15, 1, ...
            let scored = naive_document_scores(&collection, model, &q.terms);
            let oracle = oracle_topn(&scored, n);
            let context = format!("{label} q{qi} n={n}");

            // Element-addressable set-at-a-time engine.
            let r = eaat.search(&q.terms, n).expect("eaat query");
            assert_ranking_matches(&r.top, &oracle, &format!("{context}: eaat"));

            // Document-at-a-time engine.
            let r = daat.search(&q.terms, n).expect("daat query");
            assert_ranking_matches(&r.top, &oracle, &format!("{context}: daat"));

            // Fragmented scan engine, exact-safe strategies only.
            let r = frag_searcher
                .search(&q.terms, n, Strategy::FullScan)
                .expect("frag full scan");
            assert_ranking_matches(&r.top, &oracle, &format!("{context}: frag full scan"));
            let r = frag_searcher
                .search(&q.terms, n, Strategy::Switch { use_b_index: true })
                .expect("frag switch");
            // The switch strategy is only exact when it consulted B (or when
            // the query never needed B); the early-quality-check regime is
            // bounded, not exact — checked separately below.
            if r.used_b {
                assert_ranking_matches(&r.top, &oracle, &format!("{context}: frag switch"));
            }

            // The full algebra executor path (corpus → index → fragmentation
            // → optimizer → executor).
            let terms: Vec<i64> = q.terms.iter().map(|&t| i64::from(t)).collect();
            let expr = Expr::mm_topn(
                Expr::mm_rank(Expr::constant(Value::int_list(terms))),
                n as i64,
            );
            let report = session.run(&expr, &Env::new()).expect("executor query");
            let ranked = report.value.as_ranked().expect("ranked result");
            assert_ranking_matches(ranked, &oracle, &format!("{context}: executor"));
        }
    }
}

#[test]
fn pruned_daat_is_bit_exact_with_the_naive_oracle_for_every_model_and_n() {
    // The MaxScore-pruned DAAT kernel must reproduce the naive full-scan
    // oracle *exactly* — same documents, same order, same f64 bits — for
    // every ranking model and for N below, at, and beyond the matching-set
    // size. Bit-equality (not tolerance) is possible because
    // `RankingModel::term_weight` delegates to the same `TermScorer` +
    // `doc_norm` floating-point path the pruned kernel executes, and the
    // kernel sums per-document contributions in query-term order.
    let models = [
        RankingModel::TfIdf,
        RankingModel::HiemstraLm { lambda: 0.15 },
        RankingModel::Bm25 { k1: 1.2, b: 0.75 },
    ];
    for (label, config) in e2e_collections() {
        let collection = Collection::generate(config).expect("valid collection config");
        let index = Arc::new(InvertedIndex::from_collection(&collection));
        let queries = generate_queries(
            &collection,
            &QueryConfig {
                num_queries: 10,
                seed: 0xDAA7,
                ..QueryConfig::default()
            },
        )
        .expect("valid workload");
        for model in models {
            let daat = DaatSearcher::new(&index, model);
            for (qi, q) in queries.iter().enumerate() {
                let scored = naive_document_scores(&collection, model, &q.terms);
                // N = 1, N = 10, and N >= every match (the full ranking).
                for n in [1usize, 10, scored.len() + 7] {
                    let oracle = oracle_topn(&scored, n);
                    let rep = daat.search(&q.terms, n).expect("pruned daat query");
                    assert_eq!(
                        rep.top, oracle,
                        "{label} q{qi} n={n} {model:?}: pruned DAAT != naive oracle"
                    );
                    // The work ledger must balance: scored + bypassed
                    // postings account for the query's full volume.
                    let volume: usize =
                        q.terms.iter().map(|&t| index.df(t).unwrap() as usize).sum();
                    assert_eq!(
                        rep.postings_scanned + rep.docs_skipped,
                        volume,
                        "{label} q{qi} n={n} {model:?}: work ledger"
                    );
                    // With n beyond every match nothing may be pruned.
                    if n > scored.len() {
                        assert_eq!(rep.postings_scanned, volume);
                        assert_eq!(rep.bound_exits, 0);
                    }
                }
            }
        }
    }
}

#[test]
fn pruned_and_exhaustive_daat_agree_bit_for_bit_on_seeded_workloads() {
    for (label, config) in e2e_collections() {
        let collection = Collection::generate(config).expect("valid collection config");
        let index = Arc::new(InvertedIndex::from_collection(&collection));
        let daat = DaatSearcher::new(&index, RankingModel::default());
        let queries = generate_queries(
            &collection,
            &QueryConfig {
                num_queries: 12,
                seed: 0xB177,
                ..QueryConfig::default()
            },
        )
        .expect("valid workload");
        for q in &queries {
            for n in [1usize, 5, 10, 50] {
                let pruned = daat.search(&q.terms, n).expect("pruned query");
                let full = daat
                    .search_exhaustive(&q.terms, n)
                    .expect("exhaustive query");
                assert_eq!(pruned.top, full.top, "{label} {:?} n={n}", q.terms);
                assert!(pruned.postings_scanned <= full.postings_scanned);
            }
        }
    }
}

#[test]
fn sharded_serving_is_bit_identical_to_single_shard_and_the_naive_oracle() {
    // The serving layer's merged answer is pinned twice: against the
    // from-scratch posting-scan oracle in this file (independent of all
    // library code), and *bit-for-bit* against a single-shard engine —
    // for every ranking model, N below/at/beyond the matching set, and
    // shard counts 2 and 4, with cross-shard threshold propagation on.
    use moa_serve::{ServeConfig, ServeSession, ShardSpec};
    let models = [
        RankingModel::TfIdf,
        RankingModel::HiemstraLm { lambda: 0.15 },
        RankingModel::Bm25 { k1: 1.2, b: 0.75 },
    ];
    for (label, config) in e2e_collections() {
        let collection = Collection::generate(config).expect("valid collection config");
        let index = Arc::new(InvertedIndex::from_collection(&collection));
        let queries = generate_queries(
            &collection,
            &QueryConfig {
                num_queries: 6,
                seed: 0x5E11,
                ..QueryConfig::default()
            },
        )
        .expect("valid workload");
        for model in models {
            let session_config = |shards: usize| ServeConfig {
                shard_spec: ShardSpec::Range { shards },
                model,
                ..ServeConfig::planned(shards)
            };
            let mut single = ServeSession::new(Arc::clone(&index), session_config(1))
                .expect("single-shard session");
            for shards in [2usize, 4] {
                let mut sharded = ServeSession::new(Arc::clone(&index), session_config(shards))
                    .expect("sharded session");
                for (qi, q) in queries.iter().enumerate() {
                    let scored = naive_document_scores(&collection, model, &q.terms);
                    for n in [1usize, 10, scored.len() + 3] {
                        let oracle = oracle_topn(&scored, n);
                        let want = single.submit(&q.terms, n).expect("single-shard query");
                        let got = sharded.submit(&q.terms, n).expect("sharded query");
                        assert_eq!(
                            got.top, want.top,
                            "{label} q{qi} n={n} {model:?} x{shards}: sharded != single-shard"
                        );
                        assert_eq!(
                            got.top, oracle,
                            "{label} q{qi} n={n} {model:?} x{shards}: sharded != naive oracle"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn planner_executed_topn_is_bit_identical_to_the_oracle_for_every_exact_strategy() {
    // The cost-driven planner may pick any *exact* physical operator: the
    // answer must be bit-identical to the naive full-scan oracle no
    // matter which one wins — same documents, same order, same f64 bits —
    // for every ranking model and for N below, at, and beyond the
    // matching-set size. The rejected exact alternatives are executed
    // too: a plan the planner *could* pick under other weights must be
    // just as exact.
    let models = [
        RankingModel::TfIdf,
        RankingModel::HiemstraLm { lambda: 0.15 },
        RankingModel::Bm25 { k1: 1.2, b: 0.75 },
    ];
    for (label, config) in e2e_collections() {
        let collection = Collection::generate(config).expect("valid collection config");
        let index = Arc::new(InvertedIndex::from_collection(&collection));
        let mut frag = FragmentedIndex::build(Arc::clone(&index), FragmentSpec::TermFraction(0.9))
            .expect("non-empty collection");
        frag.fragment_a_mut()
            .build_sparse_index(128)
            .expect("sorted");
        frag.fragment_b_mut()
            .build_sparse_index(128)
            .expect("sorted");
        let frag = Arc::new(frag);
        let queries = generate_queries(
            &collection,
            &QueryConfig {
                num_queries: 6,
                seed: 0x9AB5,
                ..QueryConfig::default()
            },
        )
        .expect("valid workload");
        for model in models {
            let planner = Planner::default();
            let mut engines = EngineSet::new(Arc::clone(&frag), model, SwitchPolicy::default());
            for (qi, q) in queries.iter().enumerate() {
                let scored = naive_document_scores(&collection, model, &q.terms);
                for n in [1usize, 10, scored.len() + 7] {
                    let oracle = oracle_topn(&scored, n);
                    let decision = planner
                        .plan(&q.terms, n, &frag, model, SwitchPolicy::default())
                        .expect("plannable query");
                    let chosen = decision.chosen_alternative();
                    assert!(chosen.exact && chosen.feasible, "{label}: unsafe pick");
                    for alt in &decision.alternatives {
                        if !(alt.exact && alt.feasible) {
                            continue;
                        }
                        let rep = engines
                            .execute(alt.plan, &q.terms, n)
                            .expect("executable plan");
                        assert_eq!(
                            rep.top,
                            oracle,
                            "{label} q{qi} n={n} {model:?}: {} != naive oracle",
                            alt.plan.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn empty_and_duplicate_queries_agree_across_every_engine_path() {
    // Pinned behavior: the empty query returns an empty ranking with zero
    // work on every path, and a duplicated query term contributes once
    // per occurrence (bag-of-words semantics) on every path — both
    // bit-identical to the naive oracle.
    for (label, config) in e2e_collections() {
        let collection = Collection::generate(config).expect("valid collection config");
        let model = RankingModel::default();
        let index = Arc::new(InvertedIndex::from_collection(&collection));
        let frag = Arc::new(
            FragmentedIndex::build(Arc::clone(&index), FragmentSpec::TermFraction(0.9))
                .expect("non-empty collection"),
        );
        let mut engines = EngineSet::new(Arc::clone(&frag), model, SwitchPolicy::default());
        let all_plans = PhysicalPlan::ALL;

        // Empty query: empty answer, nothing inspected, on every plan.
        for plan in all_plans {
            let rep = engines.execute(plan, &[], 10).expect("empty query runs");
            assert!(rep.top.is_empty(), "{label}: {} non-empty", plan.name());
            assert_eq!(
                rep.postings_scanned,
                0,
                "{label}: {} scanned on empty query",
                plan.name()
            );
        }

        // Duplicated term: the oracle scores it once per occurrence.
        let terms = index.terms_by_df_asc();
        let q = vec![
            terms[terms.len() - 1],
            terms[terms.len() - 1],
            terms[terms.len() / 2],
        ];
        let scored = naive_document_scores(&collection, model, &q);
        for n in [1usize, 10, scored.len() + 3] {
            let oracle = oracle_topn(&scored, n);
            for plan in [
                PhysicalPlan::PrunedDaat,
                PhysicalPlan::ExhaustiveDaat,
                PhysicalPlan::SetAtATime,
                PhysicalPlan::Fragmented(Strategy::FullScan),
            ] {
                let rep = engines.execute(plan, &q, n).expect("duplicate query runs");
                assert_eq!(
                    rep.top,
                    oracle,
                    "{label} n={n}: {} mishandles duplicate terms",
                    plan.name()
                );
            }
        }

        // Unknown terms error uniformly.
        for plan in all_plans {
            assert!(
                engines.execute(plan, &[u32::MAX], 5).is_err(),
                "{label}: {} accepted an unknown term",
                plan.name()
            );
        }
    }
}

#[test]
fn unsafe_a_only_strategy_error_is_one_sided_and_bounded() {
    // A-only is the paper's deliberately *unsafe* strategy: it may lose
    // score mass from fragment B but can never invent documents or inflate
    // scores. The differential harness pins that one-sided error down.
    for (label, config) in e2e_collections() {
        let collection = Collection::generate(config).expect("valid collection config");
        let model = RankingModel::default();
        let index = Arc::new(InvertedIndex::from_collection(&collection));
        let frag = Arc::new(
            FragmentedIndex::build(Arc::clone(&index), FragmentSpec::TermFraction(0.9))
                .expect("non-empty collection"),
        );
        let mut searcher = FragSearcher::new(Arc::clone(&frag), model, SwitchPolicy::default());
        let queries = generate_queries(
            &collection,
            &QueryConfig {
                num_queries: 6,
                seed: 0xAB1E,
                ..QueryConfig::default()
            },
        )
        .expect("valid workload");
        for q in &queries {
            let scored = naive_document_scores(&collection, model, &q.terms);
            let full: std::collections::HashMap<u32, f64> = scored.iter().copied().collect();
            let a_only = searcher
                .search(
                    &q.terms,
                    collection.num_docs(),
                    Strategy::AOnly { use_a_index: false },
                )
                .expect("a-only query");
            for &(doc, score) in &a_only.top {
                let exact = full
                    .get(&doc)
                    .copied()
                    .unwrap_or_else(|| panic!("{label}: A-only invented doc {doc}"));
                assert!(
                    score <= exact + 1e-9,
                    "{label}: A-only inflated doc {doc}: {score} > {exact}"
                );
            }
        }
    }
}
