//! Integration tests of the fragmentation pipeline across corpus, storage,
//! and IR: the paper's Step 1 invariants at module boundaries.

use std::sync::Arc;

use moa_corpus::{generate_queries, Collection, CollectionConfig, DfBias, QueryConfig};
use moa_ir::{
    FragSearcher, FragmentSpec, FragmentedIndex, InvertedIndex, RankingModel, Strategy,
    SwitchPolicy,
};

fn build(spec: FragmentSpec) -> (Collection, Arc<FragmentedIndex>) {
    let collection = Collection::generate(CollectionConfig::tiny()).expect("valid preset");
    let index = Arc::new(InvertedIndex::from_collection(&collection));
    let frag = Arc::new(FragmentedIndex::build(index, spec).expect("non-empty"));
    (collection, frag)
}

#[test]
fn fragments_partition_postings_for_every_spec() {
    for spec in [
        FragmentSpec::VolumeFraction(0.05),
        FragmentSpec::VolumeFraction(0.5),
        FragmentSpec::TermFraction(0.5),
        FragmentSpec::TermFraction(0.95),
        FragmentSpec::DfThreshold(2),
        FragmentSpec::DfThreshold(1_000_000),
    ] {
        let (collection, frag) = build(spec);
        assert_eq!(
            frag.fragment_a().volume() + frag.fragment_b().volume(),
            collection.num_postings(),
            "partition violated for {spec:?}"
        );
    }
}

#[test]
fn a_only_results_are_a_subset_of_scoring_signal() {
    // Every document returned by A-only must also appear in the full
    // ranking (it can only lose score mass, not gain docs).
    let (collection, frag) = build(FragmentSpec::TermFraction(0.9));
    let queries = generate_queries(&collection, &QueryConfig::default()).expect("workload");
    let mut searcher = FragSearcher::new(
        Arc::clone(&frag),
        RankingModel::default(),
        SwitchPolicy::default(),
    );
    for q in queries.iter().take(10) {
        let full = searcher
            .search(&q.terms, collection.num_docs(), Strategy::FullScan)
            .expect("query");
        let a_only = searcher
            .search(
                &q.terms,
                collection.num_docs(),
                Strategy::AOnly { use_a_index: false },
            )
            .expect("query");
        let full_docs: std::collections::HashSet<u32> = full.top.iter().map(|&(d, _)| d).collect();
        for &(d, score) in &a_only.top {
            assert!(full_docs.contains(&d), "doc {d} only in A-only result");
            // A-only scores never exceed the full score.
            let full_score = full.top.iter().find(|&&(fd, _)| fd == d).unwrap().1;
            assert!(score <= full_score + 1e-9);
        }
    }
}

#[test]
fn rare_only_queries_never_switch() {
    let (collection, frag) = build(FragmentSpec::TermFraction(0.95));
    let queries = generate_queries(
        &collection,
        &QueryConfig {
            bias: DfBias::RareOnly,
            ..QueryConfig::default()
        },
    )
    .expect("workload");
    let boundary = frag.df_boundary();
    let mut searcher = FragSearcher::new(
        Arc::clone(&frag),
        RankingModel::default(),
        SwitchPolicy::default(),
    );
    let mut ran = 0;
    for q in &queries {
        // Only check queries whose terms all fall inside fragment A.
        if q.terms.iter().all(|&t| frag.term_in_a(t)) {
            let rep = searcher
                .search(&q.terms, 10, Strategy::Switch { use_b_index: false })
                .expect("query");
            assert!(
                !rep.used_b,
                "switched for all-A query (boundary df {boundary})"
            );
            ran += 1;
        }
    }
    assert!(ran > 0, "no all-A queries in the rare-only workload");
}

#[test]
fn frequent_only_queries_always_switch() {
    let (collection, frag) = build(FragmentSpec::VolumeFraction(0.1));
    let queries = generate_queries(
        &collection,
        &QueryConfig {
            bias: DfBias::FrequentOnly,
            ..QueryConfig::default()
        },
    )
    .expect("workload");
    let mut searcher = FragSearcher::new(
        Arc::clone(&frag),
        RankingModel::default(),
        SwitchPolicy::default(),
    );
    for q in queries.iter().take(10) {
        if q.terms.iter().all(|&t| !frag.term_in_a(t)) {
            let rep = searcher
                .search(&q.terms, 10, Strategy::Switch { use_b_index: false })
                .expect("query");
            assert!(rep.used_b, "did not switch for all-B query {:?}", q.terms);
            // And the result matches the full scan exactly.
            let full = searcher
                .search(&q.terms, 10, Strategy::FullScan)
                .expect("query");
            assert_eq!(rep.top, full.top);
        }
    }
}

#[test]
fn sparse_index_on_b_changes_cost_not_results() {
    let collection = Collection::generate(CollectionConfig::tiny()).expect("preset");
    let index = Arc::new(InvertedIndex::from_collection(&collection));
    let mut frag = FragmentedIndex::build(Arc::clone(&index), FragmentSpec::VolumeFraction(0.15))
        .expect("non-empty");
    frag.fragment_b_mut()
        .build_sparse_index(128)
        .expect("sorted term column");
    let frag = Arc::new(frag);
    let queries = generate_queries(&collection, &QueryConfig::default()).expect("workload");
    let mut searcher = FragSearcher::new(
        Arc::clone(&frag),
        RankingModel::default(),
        SwitchPolicy::default(),
    );
    for q in queries.iter().take(10) {
        let with_index = searcher
            .search(&q.terms, 20, Strategy::Switch { use_b_index: true })
            .expect("query");
        let without = searcher
            .search(&q.terms, 20, Strategy::Switch { use_b_index: false })
            .expect("query");
        assert_eq!(with_index.top, without.top);
        assert!(with_index.postings_scanned <= without.postings_scanned);
    }
}

#[test]
fn determinism_across_searcher_instances() {
    let (collection, frag) = build(FragmentSpec::TermFraction(0.95));
    let queries = generate_queries(&collection, &QueryConfig::default()).expect("workload");
    let q = &queries[0];
    let mut s1 = FragSearcher::new(
        Arc::clone(&frag),
        RankingModel::default(),
        SwitchPolicy::default(),
    );
    let mut s2 = FragSearcher::new(
        Arc::clone(&frag),
        RankingModel::default(),
        SwitchPolicy::default(),
    );
    let a = s1.search(&q.terms, 10, Strategy::FullScan).expect("query");
    let b = s2.search(&q.terms, 10, Strategy::FullScan).expect("query");
    assert_eq!(a.top, b.top);
    assert_eq!(a.postings_scanned, b.postings_scanned);
}
