//! End-to-end integration: corpus → index → fragmentation → algebra →
//! optimizer → executor, crossing every crate boundary.

use std::sync::Arc;

use moa_core::{Env, Expr, IrRuntime, Planner, Session, Value};
use moa_corpus::{generate_queries, Collection, CollectionConfig, QueryConfig};
use moa_ir::{FragmentSpec, FragmentedIndex, InvertedIndex, RankingModel, Strategy, SwitchPolicy};

fn runtime(strategy: Strategy) -> (Collection, Arc<IrRuntime>) {
    let collection = Collection::generate(CollectionConfig::tiny()).expect("valid preset");
    let index = Arc::new(InvertedIndex::from_collection(&collection));
    let frag = Arc::new(
        FragmentedIndex::build(index, FragmentSpec::TermFraction(0.95)).expect("non-empty"),
    );
    let rt = Arc::new(IrRuntime::new(
        frag,
        RankingModel::default(),
        SwitchPolicy::default(),
        strategy,
    ));
    (collection, rt)
}

fn first_query(collection: &Collection) -> Vec<i64> {
    let queries = generate_queries(collection, &QueryConfig::default()).expect("valid workload");
    queries[0].terms.iter().map(|&t| i64::from(t)).collect()
}

#[test]
fn ranked_query_through_the_full_stack() {
    let (collection, rt) = runtime(Strategy::FullScan);
    let session = Session::with_ir(rt);
    let terms = first_query(&collection);
    let expr = Expr::mm_topn(Expr::mm_rank(Expr::constant(Value::int_list(terms))), 10);
    let report = session.run(&expr, &Env::new()).expect("query runs");
    let ranked = report.value.as_ranked().expect("ranked result");
    assert!(!ranked.is_empty());
    assert!(ranked.len() <= 10);
    assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
    // The fused physical operator was used.
    assert!(report
        .trace
        .fired
        .contains(&"intra.mm_rank_topn_fusion".to_string()));
}

#[test]
fn optimizer_preserves_query_results_across_strategies() {
    for strategy in [
        Strategy::FullScan,
        Strategy::AOnly { use_a_index: false },
        Strategy::Switch { use_b_index: false },
    ] {
        let (collection, rt) = runtime(strategy);
        let session = Session::with_ir(rt);
        let terms = first_query(&collection);
        let expr = Expr::mm_topn(Expr::mm_rank(Expr::constant(Value::int_list(terms))), 5);
        let optimized = session.run(&expr, &Env::new()).expect("query runs");
        let baseline = session
            .run_unoptimized(&expr, &Env::new())
            .expect("query runs");
        assert_eq!(
            optimized.value, baseline.value,
            "optimization changed results under {strategy:?}"
        );
        assert!(optimized.work <= baseline.work);
    }
}

#[test]
fn cross_extension_pipeline_over_ranked_results() {
    // projecttolist crosses MMRANK → LIST; firstn then crosses back via the
    // inter-object rule and fuses into rank_topn.
    let (collection, rt) = runtime(Strategy::FullScan);
    let session = Session::with_ir(rt);
    let terms = first_query(&collection);
    let expr = Expr::list_firstn(
        Expr::mm_projecttolist(Expr::mm_rank(Expr::constant(Value::int_list(terms)))),
        5,
    );
    let optimized = session.run(&expr, &Env::new()).expect("query runs");
    let baseline = session
        .run_unoptimized(&expr, &Env::new())
        .expect("query runs");
    assert_eq!(optimized.value, baseline.value);
    assert!(
        optimized.work < baseline.work,
        "pushdown did not reduce work: {} vs {}",
        optimized.work,
        baseline.work
    );
    assert!(optimized
        .trace
        .fired
        .iter()
        .any(|r| r == "inter.firstn_over_mm_projecttolist"));
    let docs = optimized.value.as_list().expect("list of doc ids");
    assert!(docs.len() <= 5);
}

#[test]
fn switch_strategy_matches_full_scan_when_b_is_needed() {
    let (collection, rt_switch) = runtime(Strategy::Switch { use_b_index: false });
    let (_, rt_full) = runtime(Strategy::FullScan);
    // A frequent-terms query forces the switch.
    let index = InvertedIndex::from_collection(&collection);
    let frequent: Vec<i64> = {
        let mut terms = index.terms_by_df_asc();
        terms.reverse();
        terms.into_iter().take(3).map(i64::from).collect()
    };
    let expr = Expr::mm_topn(Expr::mm_rank(Expr::constant(Value::int_list(frequent))), 10);
    let switch_session = Session::with_ir(rt_switch);
    let full_session = Session::with_ir(rt_full);
    let sw = switch_session.run(&expr, &Env::new()).expect("runs");
    let fu = full_session.run(&expr, &Env::new()).expect("runs");
    assert_eq!(sw.value, fu.value);
}

#[test]
fn type_checking_guards_cross_crate_plans() {
    let (_, rt) = runtime(Strategy::FullScan);
    let session = Session::with_ir(rt);
    // Ill-typed: ranking a bag.
    let bad = Expr::mm_rank(Expr::projecttobag(Expr::constant(Value::int_list([1, 2]))));
    assert!(session.type_check(&bad, &Env::new()).is_err());
    // Well-typed pipeline checks out.
    let good = Expr::mm_topn(Expr::mm_rank(Expr::constant(Value::int_list([1, 2]))), 3);
    assert_eq!(
        session.type_check(&good, &Env::new()).unwrap(),
        moa_core::MoaType::Ranked
    );
}

#[test]
fn mmrank_without_runtime_fails_cleanly() {
    let session = Session::new();
    let expr = Expr::mm_rank(Expr::constant(Value::int_list([1])));
    let err = session.run(&expr, &Env::new()).unwrap_err();
    assert_eq!(err, moa_core::CoreError::NoIrRuntime);
}

fn planned_runtime() -> (Collection, Arc<IrRuntime>) {
    let collection = Collection::generate(CollectionConfig::tiny()).expect("valid preset");
    let index = Arc::new(InvertedIndex::from_collection(&collection));
    let frag = Arc::new(
        FragmentedIndex::build(index, FragmentSpec::TermFraction(0.95)).expect("non-empty"),
    );
    let rt = Arc::new(IrRuntime::planned(
        frag,
        RankingModel::default(),
        SwitchPolicy::default(),
        Planner::default(),
    ));
    (collection, rt)
}

#[test]
fn planned_runtime_matches_fixed_full_scan_and_names_its_operator() {
    let (collection, rt_planned) = planned_runtime();
    let (_, rt_full) = runtime(Strategy::FullScan);
    let planned = Session::with_ir(Arc::clone(&rt_planned));
    let full = Session::with_ir(rt_full);
    let terms = first_query(&collection);
    let expr = Expr::mm_topn(Expr::mm_rank(Expr::constant(Value::int_list(terms))), 10);
    let p = planned.run(&expr, &Env::new()).expect("planned run");
    let f = full.run(&expr, &Env::new()).expect("full run");
    // The planner may pick any exact operator: results are bit-identical.
    assert_eq!(p.value, f.value);
    // The chosen physical operator (and its cost estimate) surfaces in
    // the execution notes.
    assert!(
        p.notes
            .iter()
            .any(|n| n.contains("via") && n.contains("est. cost")),
        "notes missing the planner decision: {:?}",
        p.notes
    );
    // A planned runtime reports no fixed plan.
    assert!(rt_planned.fixed_plan().is_none());
}

#[test]
fn explain_surfaces_the_physical_alternatives() {
    let (collection, rt) = planned_runtime();
    let session = Session::with_ir(rt);
    let terms = first_query(&collection);
    let expr = Expr::mm_topn(Expr::mm_rank(Expr::constant(Value::int_list(terms))), 10);
    let text = session.explain(&expr);
    assert!(text.contains("== physical retrieval =="), "{text}");
    // The chosen operator is marked and every alternative is priced.
    assert!(text.contains("->"));
    for name in [
        "pruned_daat",
        "set_at_a_time",
        "frag_full_scan",
        "frag_switch",
    ] {
        assert!(
            text.contains(name),
            "missing alternative {name} in:\n{text}"
        );
    }
    assert!(text.contains("est. cost"));
}
