//! Property-based tests (proptest) on the core invariants:
//!
//! * every top-N algorithm agrees with the naive oracle,
//! * NRA bound administration is sound (lower ≤ exact ≤ upper),
//! * optimizer rewrites preserve semantics on arbitrary inputs,
//! * fragmentation partitions postings for arbitrary specs.

use proptest::prelude::*;

use moa_core::{Env, Expr, Session, Value};
use moa_topn::{
    aggressive, conservative, fagin_topn, nra_topn, ta_topn, topn, topn_full_sort, Agg,
    InMemoryLists, RandomAccess, SortedAccess,
};

fn grades_strategy(max_lists: usize, max_objects: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1..=max_lists, 0..=max_objects).prop_flat_map(|(m, n)| {
        proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, n..=n), m..=m)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heap_topn_matches_full_sort(
        scores in proptest::collection::vec(0.0f64..1.0, 0..200),
        n in 0usize..50,
    ) {
        let items: Vec<(u32, f64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u32, s))
            .collect();
        prop_assert_eq!(topn(items.clone(), n), topn_full_sort(items, n));
    }

    #[test]
    fn fa_and_ta_match_oracle(grades in grades_strategy(4, 60), n in 0usize..20) {
        let lists = InMemoryLists::from_grades(grades);
        let oracle = lists.topk_oracle(n, &Agg::Sum);
        let fa = fagin_topn(&lists, n, &Agg::Sum);
        let ta = ta_topn(&lists, n, &Agg::Sum);
        prop_assert_eq!(&fa.items, &oracle);
        prop_assert_eq!(&ta.items, &oracle);
    }

    #[test]
    fn nra_set_matches_oracle_and_bounds_are_sound(
        grades in grades_strategy(3, 50),
        n in 1usize..15,
    ) {
        let lists = InMemoryLists::from_grades(grades);
        let oracle = lists.topk_oracle(n, &Agg::Sum);
        let nra = nra_topn(&lists, n, &Agg::Sum);
        let mut got: Vec<u32> = nra.items.iter().map(|&(o, _)| o).collect();
        let mut want: Vec<u32> = oracle.iter().map(|&(o, _)| o).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // Reported scores are sound lower bounds.
        for &(obj, reported) in &nra.items {
            let exact: f64 = (0..lists.num_lists()).map(|i| lists.grade(i, obj)).sum();
            prop_assert!(reported <= exact + 1e-9);
        }
        prop_assert_eq!(nra.stats.random_accesses, 0);
    }

    #[test]
    fn ta_matches_oracle_under_min_and_weighted(
        grades in grades_strategy(3, 40),
        n in 1usize..10,
    ) {
        let lists = InMemoryLists::from_grades(grades);
        for agg in [Agg::Min, Agg::Weighted(vec![1.5, 0.5, 2.0][..lists.num_lists().min(3)].to_vec())] {
            if !agg.validate(lists.num_lists()) { continue; }
            let oracle = lists.topk_oracle(n, &agg);
            let ta = ta_topn(&lists, n, &agg);
            prop_assert_eq!(&ta.items, &oracle, "agg {:?}", agg);
        }
    }

    #[test]
    fn stop_after_policies_agree(
        scores in proptest::collection::vec(0.0f64..1.0, 1..150),
        n in 1usize..20,
        modulo in 1u32..8,
    ) {
        let input: Vec<(u32, f64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u32, s))
            .collect();
        let pred = move |obj: u32| obj.is_multiple_of(modulo);
        let cons = conservative(&input, n, pred);
        let aggr = aggressive(&input, n, 0.5, 1.2, pred);
        prop_assert_eq!(cons.items, aggr.items);
    }

    #[test]
    fn example1_rewrite_preserves_semantics(
        items in proptest::collection::vec(-50i64..50, 0..120),
        lo in -60i64..60,
        span in 0i64..60,
    ) {
        let expr = Expr::bag_select(
            Expr::projecttobag(Expr::constant(Value::int_list(items))),
            Value::Int(lo),
            Value::Int(lo + span),
        );
        let session = Session::new();
        let optimized = session.run(&expr, &Env::new()).unwrap();
        let baseline = session.run_unoptimized(&expr, &Env::new()).unwrap();
        prop_assert_eq!(optimized.value, baseline.value);
    }

    #[test]
    fn list_pipeline_rewrites_preserve_semantics(
        items in proptest::collection::vec(-100i64..100, 0..100),
        a in -100i64..100,
        b in -100i64..100,
        n in 0i64..30,
    ) {
        // sort → select → topn pipeline with nested select fusion.
        let expr = Expr::list_topn(
            Expr::list_select(
                Expr::list_select(
                    Expr::list_sort(Expr::constant(Value::int_list(items))),
                    Value::Int(a.min(b)),
                    Value::Int(a.max(b)),
                ),
                Value::Int(-100),
                Value::Int(100),
            ),
            n,
        );
        let session = Session::new();
        let optimized = session.run(&expr, &Env::new()).unwrap();
        let baseline = session.run_unoptimized(&expr, &Env::new()).unwrap();
        prop_assert_eq!(optimized.value, baseline.value);
        // The rewrite layers are heuristic, not cost-gated: on very small
        // inputs binary-search overhead can exceed a scan. The work
        // advantage is an asymptotic property.
        if expr.size() > 0 && baseline.work >= 256 {
            prop_assert!(
                optimized.work <= baseline.work,
                "work regressed: {} > {}",
                optimized.work,
                baseline.work
            );
        }
    }
}
