//! # moa — Top-N query optimization for multimedia databases
//!
//! Umbrella crate of the reproduction of H.E. Blok, *Top N optimization
//! issues in MM databases* (EDBT 2000). Re-exports the five member crates:
//!
//! * [`moa_core`] (re-exported as `core`) — the Moa structured object algebra, the three-layer
//!   (logical / inter-object / intra-object) optimizer, the cost model, and
//!   the expression language,
//! * [`moa_ir`] (as `ir`) — the set-at-a-time retrieval engine with df-based
//!   horizontal fragmentation, the early quality check, and the
//!   element-at-a-time comparator,
//! * [`moa_topn`] (as `topn`) — bounded-heap top-N, Fagin's FA, TA, NRA,
//!   Carey–Kossmann STOP AFTER, and probabilistic cutoff top-N,
//! * [`moa_storage`] (as `storage`) — the main-memory BAT kernel with non-dense
//!   indexes and histograms,
//! * [`moa_corpus`] (as `corpus`) — seeded synthetic workloads (Zipf collections,
//!   topical queries and qrels, correlated feature lists),
//! * [`moa_serve`] (as `serve`) — the sharded parallel serving layer:
//!   per-shard planned execution over document partitions, cross-shard
//!   score-threshold propagation, and the batched query service.
//!
//! See `README.md` for a tour, `DESIGN.md` for the paper-to-module mapping,
//! and `EXPERIMENTS.md` for the measured reproduction of every claim.
//!
//! ```
//! use moa::core::{parse_expr, Env, Session};
//!
//! let session = Session::new();
//! let expr = parse_expr("BAG.count(LIST.projecttobag([4, 5, 6]))").unwrap();
//! let report = session.run(&expr, &Env::new()).unwrap();
//! assert_eq!(report.value, moa::core::Value::Int(3));
//! ```

pub use moa_core as core;
pub use moa_corpus as corpus;
pub use moa_ir as ir;
pub use moa_serve as serve;
pub use moa_storage as storage;
pub use moa_topn as topn;
