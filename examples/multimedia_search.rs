//! The paper's MM scenario: multi-feature fusion retrieval. Synthetic MM
//! objects carry three feature scores (think colour, texture, keywords);
//! the engine must return the overall top-N under a monotone combination —
//! the problem Fagin's FA/TA/NRA solve with bound administration.
//!
//! ```text
//! cargo run --release --example multimedia_search
//! ```

use moa_corpus::{Correlation, FeatureConfig, FeatureLists};
use moa_topn::{fagin_topn, nra_topn, ta_topn, Agg, InMemoryLists};

fn main() {
    let config = FeatureConfig {
        num_objects: 50_000,
        num_lists: 3,
        correlation: Correlation::Correlated(0.6),
        seed: 0x3313,
    };
    let features = FeatureLists::generate(&config).expect("valid feature config");
    let lists = InMemoryLists::from_grades(
        (0..features.num_lists())
            .map(|i| {
                (0..features.num_objects() as u32)
                    .map(|o| features.grade(i, o))
                    .collect()
            })
            .collect(),
    );

    let n = 10;
    println!(
        "universe: {} MM objects × {} feature lists (colour/texture/keyword)\n",
        features.num_objects(),
        features.num_lists()
    );

    // Weighted combination: the user cares most about colour (Fagin &
    // Maarek's user-weighted terms).
    let agg = Agg::Weighted(vec![2.0, 1.0, 0.5]);

    let naive_accesses = features.num_objects() * features.num_lists();
    println!("naive full scan: {naive_accesses} grade accesses\n");

    let fa = fagin_topn(&lists, n, &agg);
    let ta = ta_topn(&lists, n, &agg);
    let nra = nra_topn(&lists, n, &agg);
    println!(
        "FA : {:>7} sorted + {:>7} random accesses",
        fa.stats.sorted_accesses, fa.stats.random_accesses
    );
    println!(
        "TA : {:>7} sorted + {:>7} random accesses",
        ta.stats.sorted_accesses, ta.stats.random_accesses
    );
    println!(
        "NRA: {:>7} sorted + {:>7} random accesses (no random access at all)",
        nra.stats.sorted_accesses, nra.stats.random_accesses
    );

    assert_eq!(fa.items, ta.items, "FA and TA must agree exactly");

    println!("\ntop-{n} objects (weighted sum, colour × 2):");
    for (rank, (obj, score)) in ta.items.iter().enumerate() {
        println!(
            "  {:>2}. object {obj:>6}  combined {score:.4}  (colour {:.3}, texture {:.3}, keyword {:.3})",
            rank + 1,
            features.grade(0, *obj),
            features.grade(1, *obj),
            features.grade(2, *obj),
        );
    }
}
