//! Drive the algebra through its concrete syntax: parse expressions, type
//! check them, EXPLAIN the optimizer's decisions, and execute — the
//! round-trip a downstream user of the library would script.
//!
//! ```text
//! cargo run --release --example query_language
//! ```

use moa_core::{parse_expr, Env, Session, Value};

fn main() {
    let session = Session::new();
    let mut env = Env::new();
    env.bind(
        "measurements",
        Value::int_list((0..50_000).map(|i| i % 1000)),
    );
    env.bind(
        "sorted_scores",
        Value::list(
            (0..100_000)
                .map(|i| Value::Float(f64::from(i) / 1000.0))
                .collect(),
        ),
    );

    let programs = [
        // The paper's Example 1, written in concrete syntax over a bound
        // variable.
        "BAG.select(LIST.projecttobag($measurements), 100, 120)",
        // Aggregation shortcut: count never materializes the bag.
        "BAG.count(LIST.projecttobag($measurements))",
        // Order-aware selection over a sorted input expression.
        "LIST.select(LIST.sort($measurements), 42, 64)",
        // Nested select fusion.
        "LIST.select(LIST.select($measurements, 10, 900), 50, 100)",
        // Top-N pipeline.
        "LIST.topn(LIST.select($measurements, 0, 500), 5)",
    ];

    for src in programs {
        println!("────────────────────────────────────────────────────────");
        println!("query: {src}\n");
        let expr = parse_expr(src).expect("well-formed program");
        let ty = session.type_check(&expr, &env).expect("well-typed program");
        println!("type: {ty}");
        println!("{}", session.explain(&expr));
        let optimized = session.run(&expr, &env).expect("executes");
        let baseline = session.run_unoptimized(&expr, &env).expect("executes");
        assert_eq!(
            optimized.value, baseline.value,
            "optimizer must preserve semantics"
        );
        let summary = match &optimized.value {
            Value::Int(i) => format!("INT {i}"),
            v => format!("{} elements", v.cardinality()),
        };
        println!(
            "result: {summary}   work: {} optimized vs {} baseline ({:.1}x)",
            optimized.work,
            baseline.work,
            baseline.work as f64 / optimized.work.max(1) as f64
        );
    }
}
