//! The paper's Example 1, literally: `select(projecttobag(list), 2, 4)` and
//! what each optimizer layer does to it.
//!
//! ```text
//! cargo run --release --example interobject_rewrite
//! ```

use moa_core::{Env, Expr, OptimizerConfig, Session, Value};

fn main() {
    // The exact expression from the paper (list [1,2,3,4,4,5], range 2..=4)…
    let tiny = Expr::bag_select(
        Expr::projecttobag(Expr::constant(Value::int_list([1, 2, 3, 4, 4, 5]))),
        Value::Int(2),
        Value::Int(4),
    );
    let session = Session::new();
    let report = session.run(&tiny, &Env::new()).expect("valid expression");
    println!("Example 1 expression: {tiny}");
    println!("result: {}", report.value);
    println!("(paper: select(projecttobag([1,2,3,4,4,5]),2,4) = {{1..}} with 2,3,4,4)\n");

    // …and the measured effect at a size where the rewrite matters.
    let n: i64 = 200_000;
    let big = Expr::bag_select(
        Expr::projecttobag(Expr::constant(Value::int_list(0..n))),
        Value::Int(n / 2),
        Value::Int(n / 2 + n / 100),
    );

    let mut naive = Session::new();
    naive.set_optimizer_config(OptimizerConfig::disabled());
    let mut inter_only = Session::new();
    inter_only.set_optimizer_config(OptimizerConfig {
        logical: true,
        inter_object: true,
        intra_object: false,
        max_passes: 8,
    });
    let full = Session::new();

    println!("plans for n = {n}:");
    for (label, s) in [
        ("no optimization        ", &naive),
        ("inter-object rewrite   ", &inter_only),
        ("inter + order-awareness", &full),
    ] {
        let t0 = std::time::Instant::now();
        let rep = s.run(&big, &Env::new()).expect("valid expression");
        println!(
            "  {label}: {:>9} work units, {:>9.2?}, rules fired: {:?}",
            rep.work,
            t0.elapsed(),
            rep.trace.fired
        );
    }

    println!(
        "\nEXPLAIN of the fully optimized plan:\n{}",
        full.explain(&big)
    );
}
