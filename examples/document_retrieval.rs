//! The paper's Step 1 scenario end-to-end: a TREC-FT-like document
//! collection queried under the three fragmentation strategies —
//! full scan (unoptimized), fragment-A-only (unsafe), and the safe switch
//! with the early quality check.
//!
//! ```text
//! cargo run --release --example document_retrieval
//! ```

use std::sync::Arc;

use moa_corpus::{
    generate_qrels, generate_queries, Collection, CollectionConfig, QrelsConfig, QueryConfig,
};
use moa_ir::{
    average_precision, mean_of, FragSearcher, FragmentSpec, FragmentedIndex, InvertedIndex,
    RankingModel, Strategy, SwitchPolicy,
};

fn main() {
    let collection = Collection::generate(CollectionConfig::small()).expect("valid preset");
    let queries = generate_queries(&collection, &QueryConfig::default()).expect("valid workload");
    let qrels =
        generate_qrels(&collection, &queries, &QrelsConfig::default()).expect("valid qrels");
    let index = Arc::new(InvertedIndex::from_collection(&collection));
    let frag = Arc::new(
        FragmentedIndex::build(Arc::clone(&index), FragmentSpec::TermFraction(0.95))
            .expect("non-empty index"),
    );

    println!(
        "collection: {} docs / {} postings; fragment A = {:.1}% of terms, {:.1}% of volume\n",
        collection.num_docs(),
        collection.num_postings(),
        100.0 * frag.term_fraction_a(),
        100.0 * frag.volume_fraction_a()
    );

    let strategies = [
        ("full scan (unoptimized)", Strategy::FullScan),
        (
            "fragment A only (unsafe)",
            Strategy::AOnly { use_a_index: false },
        ),
        ("switch (safe)", Strategy::Switch { use_b_index: false }),
    ];

    println!(
        "{:<26} {:>16} {:>12} {:>8} {:>12}",
        "strategy", "postings scanned", "batch time", "MAP", "queries w/ B"
    );
    for (label, strategy) in strategies {
        let mut searcher = FragSearcher::new(
            Arc::clone(&frag),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        let t0 = std::time::Instant::now();
        let mut scanned = 0usize;
        let mut used_b = 0usize;
        let mut aps: Vec<Option<f64>> = Vec::new();
        for q in &queries {
            let rep = searcher
                .search(&q.terms, 1_000, strategy)
                .expect("valid query");
            scanned += rep.postings_scanned;
            used_b += usize::from(rep.used_b);
            let ranking: Vec<u32> = rep.top.iter().map(|&(d, _)| d).collect();
            let rel = qrels.relevant(q.id);
            aps.push(if rel.is_empty() {
                None
            } else {
                average_precision(&ranking, rel)
            });
        }
        let map = mean_of(aps).unwrap_or(0.0);
        println!(
            "{label:<26} {scanned:>16} {:>12.2?} {map:>8.4} {used_b:>9}/{}",
            t0.elapsed(),
            queries.len()
        );
    }

    println!("\nThe unsafe strategy trades quality for speed; the switch strategy's");
    println!("early check (per-term score-mass bounds) recovers quality, paying with");
    println!("fragment-B scans only on the queries that need them.");
}
