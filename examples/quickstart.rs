//! Quickstart: build a small collection, attach it to a Moa session, and
//! run a ranked top-10 query through the full stack — algebra, optimizer,
//! and the fragmented retrieval engine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use moa_core::{Env, Expr, IrRuntime, Session};
use moa_corpus::{generate_queries, Collection, CollectionConfig, QueryConfig};
use moa_ir::{FragmentSpec, FragmentedIndex, InvertedIndex, RankingModel, Strategy, SwitchPolicy};

fn main() {
    // 1. A synthetic Zipf-distributed collection (seeded, deterministic).
    let collection = Collection::generate(CollectionConfig::small()).expect("valid preset");
    println!(
        "collection: {} docs, {} observed terms, {} postings",
        collection.num_docs(),
        collection.observed_vocab(),
        collection.num_postings()
    );

    // 2. Index it and fragment the term-document matrix: fragment A holds
    //    the 95% rarest ("most interesting") terms.
    let index = Arc::new(InvertedIndex::from_collection(&collection));
    let frag = Arc::new(
        FragmentedIndex::build(Arc::clone(&index), FragmentSpec::TermFraction(0.95))
            .expect("non-empty index"),
    );
    println!(
        "fragment A: {:.1}% of terms, {:.1}% of volume",
        100.0 * frag.term_fraction_a(),
        100.0 * frag.volume_fraction_a()
    );

    // 3. Attach the retrieval runtime to a Moa session using the safe
    //    switch strategy.
    let runtime = Arc::new(IrRuntime::new(
        frag,
        RankingModel::default(),
        SwitchPolicy::default(),
        Strategy::Switch { use_b_index: false },
    ));
    let session = Session::with_ir(runtime);

    // 4. Express "top 10 for this query" in the algebra. The intra-object
    //    optimizer fuses topn(rank(q)) into the bounded rank_topn operator.
    let query = generate_queries(&collection, &QueryConfig::default())
        .expect("valid workload")
        .remove(0);
    println!("query terms: {:?}", query.terms);
    let expr = Expr::mm_topn(
        Expr::mm_rank(Expr::constant(moa_core::Value::int_list(
            query.terms.iter().map(|&t| i64::from(t)),
        ))),
        10,
    );

    println!("\n{}", session.explain(&expr));

    let unopt = session
        .run_unoptimized(&expr, &Env::new())
        .expect("query runs");
    let opt = session.run(&expr, &Env::new()).expect("query runs");
    assert_eq!(opt.value, unopt.value);

    println!(
        "top-10 ({} work units optimized, {} unoptimized):",
        opt.work, unopt.work
    );
    if let moa_core::Value::Ranked(pairs) = &opt.value {
        for (rank, (doc, score)) in pairs.iter().enumerate() {
            println!("  {:>2}. doc {:>6}  score {score:.4}", rank + 1, doc);
        }
    }
}
