//! Synthetic relevance judgments (qrels).
//!
//! TREC qrels are human judgments; we substitute a *coordination-level*
//! model: a document is relevant to a query when it contains a sufficient
//! fraction of the query's distinct terms, with seeded noise flipping a
//! small share of judgments. Relevance is thus generated from the corpus
//! alone — independently of any retrieval system under test — yet correlated
//! with every reasonable ranking function, which is all the paper's
//! *relative* quality-drop measurements need.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::collection::Collection;
use crate::error::{CorpusError, Result};
use crate::queries::Query;

/// How relevance is synthesized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QrelsMode {
    /// A doc is relevant when it matches at least
    /// `ceil(min_match_fraction · |query terms|)` distinct query terms.
    Coordination,
    /// TREC-like topical relevance: a doc is relevant when it belongs to
    /// the query's latent topic **and** matches at least `min_match`
    /// distinct query terms. Requires a topical query workload; queries
    /// without a topic fall back to coordination matching.
    Topical {
        /// Minimum distinct query-term matches for a topical doc.
        min_match: usize,
    },
}

/// Configuration of qrels synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct QrelsConfig {
    /// The relevance model.
    pub mode: QrelsMode,
    /// Coordination threshold (used by [`QrelsMode::Coordination`] and the
    /// topic-less fallback).
    pub min_match_fraction: f64,
    /// Probability of flipping a judgment (noise).
    pub noise: f64,
    /// RNG seed for the noise process.
    pub seed: u64,
}

impl Default for QrelsConfig {
    fn default() -> Self {
        QrelsConfig {
            mode: QrelsMode::Coordination,
            min_match_fraction: 0.6,
            noise: 0.02,
            seed: 0x9E15,
        }
    }
}

impl QrelsConfig {
    /// The topical-relevance configuration used by the fragmentation
    /// experiments (matches the default topical query workload).
    pub fn topical() -> QrelsConfig {
        QrelsConfig {
            mode: QrelsMode::Topical { min_match: 1 },
            ..QrelsConfig::default()
        }
    }
}

/// Relevance judgments: per query, the set of relevant document ids.
#[derive(Debug, Clone, Default)]
pub struct Qrels {
    relevant: HashMap<u32, HashSet<u32>>,
}

impl Qrels {
    /// The set of relevant documents for a query (empty if none).
    pub fn relevant(&self, query_id: u32) -> &HashSet<u32> {
        static EMPTY: std::sync::OnceLock<HashSet<u32>> = std::sync::OnceLock::new();
        self.relevant
            .get(&query_id)
            .unwrap_or_else(|| EMPTY.get_or_init(HashSet::new))
    }

    /// Whether `doc` is judged relevant for `query_id`.
    pub fn is_relevant(&self, query_id: u32, doc: u32) -> bool {
        self.relevant
            .get(&query_id)
            .is_some_and(|s| s.contains(&doc))
    }

    /// Number of relevant documents for a query.
    pub fn num_relevant(&self, query_id: u32) -> usize {
        self.relevant.get(&query_id).map_or(0, HashSet::len)
    }

    /// Insert a judgment (used by tests and custom generators).
    pub fn insert(&mut self, query_id: u32, doc: u32) {
        self.relevant.entry(query_id).or_default().insert(doc);
    }

    /// Total number of (query, doc) judgments.
    pub fn len(&self) -> usize {
        self.relevant.values().map(HashSet::len).sum()
    }

    /// Whether no judgments exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Generate qrels for a query workload over a collection.
pub fn generate_qrels(
    collection: &Collection,
    queries: &[Query],
    config: &QrelsConfig,
) -> Result<Qrels> {
    if !(0.0..=1.0).contains(&config.min_match_fraction) {
        return Err(CorpusError::InvalidConfig(
            "min_match_fraction must be in [0, 1]".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.noise) {
        return Err(CorpusError::InvalidConfig("noise must be in [0, 1]".into()));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut qrels = Qrels::default();

    for q in queries {
        // Count distinct query-term matches per doc via the posting runs.
        let mut matches: HashMap<u32, usize> = HashMap::new();
        for &t in &q.terms {
            for p in collection.postings_for_term(t) {
                *matches.entry(p.doc).or_insert(0) += 1;
            }
        }
        let mut docs: Vec<u32> = match (config.mode, q.topic) {
            (QrelsMode::Topical { min_match }, Some(topic)) => matches
                .iter()
                .filter(|&(&d, &m)| {
                    m >= min_match.max(1) && collection.doc_topic()[d as usize] == topic
                })
                .map(|(&d, _)| d)
                .collect(),
            _ => {
                let needed =
                    ((config.min_match_fraction * q.terms.len() as f64).ceil() as usize).max(1);
                matches
                    .iter()
                    .filter(|&(_, &m)| m >= needed)
                    .map(|(&d, _)| d)
                    .collect()
            }
        };
        docs.sort_unstable(); // deterministic iteration for the noise pass
        let set = qrels.relevant.entry(q.id).or_default();
        for d in docs {
            if rng.gen::<f64>() >= config.noise {
                set.insert(d);
            }
        }
        // Noise can also add a few spurious relevants.
        if config.noise > 0.0 {
            let spurious = (config.noise * 5.0).ceil() as usize;
            for _ in 0..spurious {
                if rng.gen::<f64>() < config.noise {
                    set.insert(rng.gen_range(0..collection.num_docs() as u32));
                }
            }
        }
    }
    Ok(qrels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionConfig;
    use crate::queries::{generate_queries, QueryConfig};

    fn setup() -> (Collection, Vec<Query>) {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let q = generate_queries(&c, &QueryConfig::default()).unwrap();
        (c, q)
    }

    #[test]
    fn qrels_deterministic() {
        let (c, q) = setup();
        let cfg = QrelsConfig::default();
        let a = generate_qrels(&c, &q, &cfg).unwrap();
        let b = generate_qrels(&c, &q, &cfg).unwrap();
        for query in &q {
            assert_eq!(a.relevant(query.id), b.relevant(query.id));
        }
    }

    #[test]
    fn relevant_docs_contain_query_terms() {
        let (c, q) = setup();
        let cfg = QrelsConfig {
            noise: 0.0,
            ..QrelsConfig::default()
        };
        let qrels = generate_qrels(&c, &q, &cfg).unwrap();
        for query in &q {
            let needed =
                ((cfg.min_match_fraction * query.terms.len() as f64).ceil() as usize).max(1);
            for &doc in qrels.relevant(query.id) {
                let matched = query
                    .terms
                    .iter()
                    .filter(|&&t| c.postings_for_term(t).iter().any(|p| p.doc == doc))
                    .count();
                assert!(
                    matched >= needed,
                    "doc {doc} matches only {matched}/{needed} terms of query {}",
                    query.id
                );
            }
        }
    }

    #[test]
    fn noise_zero_is_pure_coordination() {
        let (c, q) = setup();
        let no_noise = generate_qrels(
            &c,
            &q,
            &QrelsConfig {
                noise: 0.0,
                ..QrelsConfig::default()
            },
        )
        .unwrap();
        // With noise, judgments may differ but should be mostly the same.
        let noisy = generate_qrels(&c, &q, &QrelsConfig::default()).unwrap();
        let mut common = 0usize;
        let mut total = 0usize;
        for query in &q {
            total += no_noise.num_relevant(query.id);
            common += no_noise
                .relevant(query.id)
                .intersection(noisy.relevant(query.id))
                .count();
        }
        if total > 0 {
            assert!(common as f64 >= 0.9 * total as f64);
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let (c, q) = setup();
        let cfg = QrelsConfig {
            min_match_fraction: 1.5,
            ..QrelsConfig::default()
        };
        assert!(generate_qrels(&c, &q, &cfg).is_err());
        let cfg = QrelsConfig {
            noise: -0.1,
            ..QrelsConfig::default()
        };
        assert!(generate_qrels(&c, &q, &cfg).is_err());
    }

    #[test]
    fn accessors_on_empty_qrels() {
        let qrels = Qrels::default();
        assert!(qrels.is_empty());
        assert_eq!(qrels.num_relevant(3), 0);
        assert!(!qrels.is_relevant(3, 7));
        assert!(qrels.relevant(3).is_empty());
    }

    #[test]
    fn insert_and_len() {
        let mut qrels = Qrels::default();
        qrels.insert(1, 10);
        qrels.insert(1, 11);
        qrels.insert(2, 10);
        assert_eq!(qrels.len(), 3);
        assert!(qrels.is_relevant(1, 10));
        assert!(!qrels.is_relevant(2, 11));
    }

    #[test]
    fn topical_mode_restricts_to_query_topic() {
        let (c, q) = setup();
        let cfg = QrelsConfig {
            mode: QrelsMode::Topical { min_match: 1 },
            noise: 0.0,
            ..QrelsConfig::default()
        };
        let qrels = generate_qrels(&c, &q, &cfg).unwrap();
        let mut judged = 0usize;
        for query in &q {
            let Some(topic) = query.topic else { continue };
            for &doc in qrels.relevant(query.id) {
                judged += 1;
                assert_eq!(
                    c.doc_topic()[doc as usize],
                    topic,
                    "off-topic doc {doc} judged relevant"
                );
                let matched = query
                    .terms
                    .iter()
                    .any(|&t| c.postings_for_term(t).iter().any(|p| p.doc == doc));
                assert!(matched, "doc {doc} matches no query term");
            }
        }
        assert!(judged > 0, "topical qrels produced no judgments");
    }

    #[test]
    fn topical_preset_constructor() {
        let cfg = QrelsConfig::topical();
        assert_eq!(cfg.mode, QrelsMode::Topical { min_match: 1 });
    }

    #[test]
    fn enough_queries_have_relevant_docs() {
        // As with real TREC topics, some queries end up with no judged
        // relevant documents (evaluation skips those); but a workable share
        // must have at least one.
        let (c, q) = setup();
        let qrels = generate_qrels(&c, &q, &QrelsConfig::default()).unwrap();
        let with_rel = q
            .iter()
            .filter(|query| qrels.num_relevant(query.id) > 0)
            .count();
        assert!(
            with_rel * 4 >= q.len(),
            "only {with_rel}/{} queries have relevant docs",
            q.len()
        );
    }
}
