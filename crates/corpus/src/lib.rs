//! # moa-corpus — seeded synthetic workload generation
//!
//! The paper evaluates on the TREC FT collection with TREC topics and human
//! relevance judgments; none of those are redistributable. This crate
//! generates the closest synthetic equivalents, exercising the same code
//! paths (documented substitutions — see DESIGN.md):
//!
//! * [`zipf`] — exact Zipf samplers plus the mass-geometry helpers behind
//!   the paper's "95% of the terms ≈ 5% of the data" premise,
//! * [`collection`] — Zipf-distributed document collections with FT-like
//!   hapax-heavy vocabularies,
//! * [`queries`] — TREC-topic-like query workloads with a controllable
//!   document-frequency bias,
//! * [`qrels`] — coordination-level synthetic relevance judgments,
//! * [`features`] — correlated multi-feature score lists for Fagin-style
//!   (FA/TA/NRA) middleware experiments.
//!
//! Every generator takes an explicit seed and is deterministic.

#![warn(missing_docs)]

pub mod collection;
pub mod error;
pub mod features;
pub mod qrels;
pub mod queries;
pub mod zipf;

pub use collection::{Collection, CollectionConfig, Posting};
pub use error::{CorpusError, Result};
pub use features::{Correlation, FeatureConfig, FeatureLists};
pub use qrels::{generate_qrels, Qrels, QrelsConfig, QrelsMode};
pub use queries::{
    generate_queries, generate_query_stream, DfBias, Query, QueryConfig, StreamConfig,
};
pub use zipf::Zipf;
