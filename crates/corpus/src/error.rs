//! Error types for workload generation.

use std::fmt;

/// Errors produced by corpus/workload generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// A configuration parameter was out of range.
    InvalidConfig(String),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CorpusError {}

/// Result alias for corpus operations.
pub type Result<T> = std::result::Result<T, CorpusError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_config() {
        let e = CorpusError::InvalidConfig("vocab_size must be > 0".into());
        assert_eq!(
            e.to_string(),
            "invalid configuration: vocab_size must be > 0"
        );
    }
}
