//! Multi-feature MM object workloads.
//!
//! Fagin-style middleware algorithms (FA/TA/NRA) are evaluated on m graded
//! score lists over the same object universe — e.g. colour, texture and
//! keyword similarity of multimedia objects. The inter-list correlation is
//! the classic difficulty knob: independent lists are the textbook case,
//! correlated lists make early termination easy, anti-correlated lists are
//! adversarial (Fagin 1998/1999).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{CorpusError, Result};

/// Inter-list score correlation regime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Correlation {
    /// Lists are independent uniform scores.
    Independent,
    /// Lists share a latent per-object quality with the given strength in
    /// `(0, 1]`; 1.0 means identical lists up to tie order.
    Correlated(f64),
    /// Odd lists are (strength-weighted) reversals of even lists.
    AntiCorrelated(f64),
}

/// Configuration of a feature workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureConfig {
    /// Number of objects in the universe.
    pub num_objects: usize,
    /// Number of feature lists (m).
    pub num_lists: usize,
    /// Correlation regime.
    pub correlation: Correlation,
    /// RNG seed.
    pub seed: u64,
}

impl FeatureConfig {
    /// A small default workload.
    pub fn small() -> FeatureConfig {
        FeatureConfig {
            num_objects: 1_000,
            num_lists: 3,
            correlation: Correlation::Independent,
            seed: 0xFEA7,
        }
    }
}

/// m score lists over `n` objects, with per-list sorted access order and
/// O(1) random access — the data layout Fagin's algorithms assume.
#[derive(Debug, Clone)]
pub struct FeatureLists {
    /// `scores[i][obj]` = grade of `obj` in list `i`, in `[0, 1]`.
    scores: Vec<Vec<f64>>,
    /// `sorted[i]` = object ids of list `i` in descending grade order.
    sorted: Vec<Vec<u32>>,
}

impl FeatureLists {
    /// Generate a workload (deterministic per seed).
    pub fn generate(config: &FeatureConfig) -> Result<FeatureLists> {
        if config.num_objects == 0 {
            return Err(CorpusError::InvalidConfig("num_objects must be > 0".into()));
        }
        if config.num_lists == 0 {
            return Err(CorpusError::InvalidConfig("num_lists must be > 0".into()));
        }
        match config.correlation {
            Correlation::Correlated(s) | Correlation::AntiCorrelated(s) => {
                if !(0.0 < s && s <= 1.0) {
                    return Err(CorpusError::InvalidConfig(
                        "correlation strength must be in (0, 1]".into(),
                    ));
                }
            }
            Correlation::Independent => {}
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.num_objects;
        let m = config.num_lists;

        // Latent per-object quality used by the correlated regimes.
        let latent: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();

        let mut scores = Vec::with_capacity(m);
        for list in 0..m {
            let mut s = Vec::with_capacity(n);
            for &lat in latent.iter().take(n) {
                let noise: f64 = rng.gen();
                let grade = match config.correlation {
                    Correlation::Independent => noise,
                    Correlation::Correlated(strength) => strength * lat + (1.0 - strength) * noise,
                    Correlation::AntiCorrelated(strength) => {
                        let base = if list % 2 == 0 { lat } else { 1.0 - lat };
                        strength * base + (1.0 - strength) * noise
                    }
                };
                s.push(grade.clamp(0.0, 1.0));
            }
            scores.push(s);
        }

        let sorted = scores
            .iter()
            .map(|list| {
                let mut ids: Vec<u32> = (0..n as u32).collect();
                ids.sort_by(|&a, &b| {
                    list[b as usize]
                        .total_cmp(&list[a as usize])
                        .then(a.cmp(&b))
                });
                ids
            })
            .collect();

        Ok(FeatureLists { scores, sorted })
    }

    /// Number of objects.
    pub fn num_objects(&self) -> usize {
        self.scores.first().map_or(0, Vec::len)
    }

    /// Number of lists (m).
    pub fn num_lists(&self) -> usize {
        self.scores.len()
    }

    /// Random access: grade of `obj` in list `i`.
    pub fn grade(&self, list: usize, obj: u32) -> f64 {
        self.scores[list][obj as usize]
    }

    /// Sorted access: the `rank`-th best object of list `i` and its grade.
    pub fn sorted_entry(&self, list: usize, rank: usize) -> Option<(u32, f64)> {
        let obj = *self.sorted.get(list)?.get(rank)?;
        Some((obj, self.scores[list][obj as usize]))
    }

    /// The full descending-grade object order of list `i`.
    pub fn sorted_order(&self, list: usize) -> &[u32] {
        &self.sorted[list]
    }

    /// Aggregate grade of an object across all lists (sum aggregation, the
    /// canonical monotone function in the Fagin line of work).
    pub fn aggregate_sum(&self, obj: u32) -> f64 {
        (0..self.num_lists()).map(|i| self.grade(i, obj)).sum()
    }

    /// Minimum aggregation (fuzzy conjunction).
    pub fn aggregate_min(&self, obj: u32) -> f64 {
        (0..self.num_lists())
            .map(|i| self.grade(i, obj))
            .fold(f64::INFINITY, f64::min)
    }

    /// Exact top-k objects under sum aggregation, by full scan (oracle for
    /// correctness checks).
    pub fn topk_sum_oracle(&self, k: usize) -> Vec<(u32, f64)> {
        let mut all: Vec<(u32, f64)> = (0..self.num_objects() as u32)
            .map(|o| (o, self.aggregate_sum(o)))
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FeatureConfig::small();
        let a = FeatureLists::generate(&cfg).unwrap();
        let b = FeatureLists::generate(&cfg).unwrap();
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = FeatureConfig::small();
        cfg.num_objects = 0;
        assert!(FeatureLists::generate(&cfg).is_err());
        let mut cfg = FeatureConfig::small();
        cfg.num_lists = 0;
        assert!(FeatureLists::generate(&cfg).is_err());
        let mut cfg = FeatureConfig::small();
        cfg.correlation = Correlation::Correlated(0.0);
        assert!(FeatureLists::generate(&cfg).is_err());
        let mut cfg = FeatureConfig::small();
        cfg.correlation = Correlation::AntiCorrelated(1.5);
        assert!(FeatureLists::generate(&cfg).is_err());
    }

    #[test]
    fn grades_in_unit_interval() {
        let fl = FeatureLists::generate(&FeatureConfig::small()).unwrap();
        for i in 0..fl.num_lists() {
            for o in 0..fl.num_objects() as u32 {
                let g = fl.grade(i, o);
                assert!((0.0..=1.0).contains(&g));
            }
        }
    }

    #[test]
    fn sorted_access_is_descending() {
        let fl = FeatureLists::generate(&FeatureConfig::small()).unwrap();
        for i in 0..fl.num_lists() {
            let mut prev = f64::INFINITY;
            for r in 0..fl.num_objects() {
                let (_, g) = fl.sorted_entry(i, r).unwrap();
                assert!(g <= prev + 1e-12);
                prev = g;
            }
            assert!(fl.sorted_entry(i, fl.num_objects()).is_none());
        }
    }

    #[test]
    fn sorted_order_is_permutation() {
        let fl = FeatureLists::generate(&FeatureConfig::small()).unwrap();
        for i in 0..fl.num_lists() {
            let mut order = fl.sorted_order(i).to_vec();
            order.sort_unstable();
            let expect: Vec<u32> = (0..fl.num_objects() as u32).collect();
            assert_eq!(order, expect);
        }
    }

    #[test]
    fn correlated_lists_agree_on_top() {
        let cfg = FeatureConfig {
            correlation: Correlation::Correlated(0.95),
            ..FeatureConfig::small()
        };
        let fl = FeatureLists::generate(&cfg).unwrap();
        // Top-50 of two lists overlap strongly when correlation is high.
        let a: std::collections::HashSet<u32> = fl.sorted_order(0)[..50].iter().copied().collect();
        let b: std::collections::HashSet<u32> = fl.sorted_order(1)[..50].iter().copied().collect();
        let overlap = a.intersection(&b).count();
        assert!(overlap >= 20, "overlap={overlap}");
    }

    #[test]
    fn anticorrelated_lists_disagree_on_top() {
        let cfg = FeatureConfig {
            num_lists: 2,
            correlation: Correlation::AntiCorrelated(0.95),
            ..FeatureConfig::small()
        };
        let fl = FeatureLists::generate(&cfg).unwrap();
        let a: std::collections::HashSet<u32> = fl.sorted_order(0)[..50].iter().copied().collect();
        let b: std::collections::HashSet<u32> = fl.sorted_order(1)[..50].iter().copied().collect();
        let overlap = a.intersection(&b).count();
        assert!(overlap <= 5, "overlap={overlap}");
    }

    #[test]
    fn aggregates_are_consistent() {
        let fl = FeatureLists::generate(&FeatureConfig::small()).unwrap();
        for o in [0u32, 7, 500] {
            let sum = fl.aggregate_sum(o);
            let min = fl.aggregate_min(o);
            assert!(min <= sum / fl.num_lists() as f64 + 1e-12);
            assert!(sum <= fl.num_lists() as f64);
        }
    }

    #[test]
    fn oracle_topk_is_sorted_and_sized() {
        let fl = FeatureLists::generate(&FeatureConfig::small()).unwrap();
        let top = fl.topk_sum_oracle(10);
        assert_eq!(top.len(), 10);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        let all = fl.topk_sum_oracle(fl.num_objects());
        assert_eq!(all.len(), fl.num_objects());
    }
}
