//! Zipf-distributed sampling.
//!
//! "Terms in natural language have a Zipf distribution" is the statistical
//! premise the paper's Step 1 fragmentation exploits. This module provides an
//! exact (table-based inverse-CDF) Zipf sampler plus the analytic helpers the
//! experiments use to reason about term-mass geometry — e.g. what fraction of
//! total token mass the rarest X% of the vocabulary carries.

use rand::Rng;

use crate::error::{CorpusError, Result};

/// A Zipf distribution over ranks `0..n` (rank 0 most probable), with
/// exponent `s`: `P(rank r) ∝ 1 / (r+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution; `cdf[r]` = P(rank ≤ r). Last entry is 1.0.
    cdf: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// Build a Zipf distribution over `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Result<Zipf> {
        if n == 0 {
            return Err(CorpusError::InvalidConfig("Zipf needs n > 0 ranks".into()));
        }
        if s.is_nan() || s <= 0.0 || !s.is_finite() {
            return Err(CorpusError::InvalidConfig(format!(
                "Zipf exponent must be finite and positive, got {s}"
            )));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let norm = acc;
        for v in &mut cdf {
            *v /= norm;
        }
        // Guard against rounding: force exact closure.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf { cdf, s })
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// The exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Probability mass of `rank` (0-based; rank 0 most probable).
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Cumulative mass of ranks `0..=rank`.
    pub fn cdf(&self, rank: usize) -> f64 {
        if self.cdf.is_empty() {
            return 0.0;
        }
        self.cdf[rank.min(self.cdf.len() - 1)]
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Token-mass fraction carried by the *most frequent* `k` ranks.
    pub fn head_mass(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf(k - 1)
        }
    }

    /// Token-mass fraction carried by the *rarest* `k` ranks — the
    /// "interesting" terms of the paper's fragmentation argument.
    pub fn tail_mass(&self, k: usize) -> f64 {
        let n = self.ranks();
        if k >= n {
            1.0
        } else {
            1.0 - self.cdf(n - k - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_config() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, f64::INFINITY).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 1.0).unwrap();
        let total: f64 = (0..1000).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = Zipf::new(100, 1.2).unwrap();
        for r in 1..100 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-15);
        }
    }

    #[test]
    fn pmf_ratio_matches_exponent() {
        let z = Zipf::new(100, 2.0).unwrap();
        // p(0)/p(1) = 2^s = 4
        let ratio = z.pmf(0) / z.pmf(1);
        assert!((ratio - 4.0).abs() < 1e-9, "ratio={ratio}");
    }

    #[test]
    fn out_of_range_pmf_is_zero() {
        let z = Zipf::new(5, 1.0).unwrap();
        assert_eq!(z.pmf(5), 0.0);
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn cdf_closes_at_one() {
        let z = Zipf::new(7, 1.5).unwrap();
        assert_eq!(z.cdf(6), 1.0);
        assert_eq!(z.cdf(100), 1.0);
    }

    #[test]
    fn sampling_respects_distribution() {
        let z = Zipf::new(50, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 50];
        let trials = 200_000;
        for _ in 0..trials {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 empirical frequency close to pmf(0).
        let emp = counts[0] as f64 / trials as f64;
        assert!((emp - z.pmf(0)).abs() < 0.01, "emp={emp} pmf={}", z.pmf(0));
        // Monotone-ish head.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[5]);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(100, 1.1).unwrap();
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn head_and_tail_mass_partition() {
        let z = Zipf::new(1000, 1.0).unwrap();
        for k in [0usize, 1, 10, 500, 999, 1000] {
            let h = z.head_mass(k);
            let t = z.tail_mass(1000 - k);
            assert!((h + t - 1.0).abs() < 1e-9, "k={k} h={h} t={t}");
        }
    }

    #[test]
    fn steeper_exponent_concentrates_mass() {
        let flat = Zipf::new(10_000, 1.0).unwrap();
        let steep = Zipf::new(10_000, 1.5).unwrap();
        // Top 5% of ranks carry more mass under the steeper law.
        assert!(steep.head_mass(500) > flat.head_mass(500));
        // And the rarest 95% of terms carry correspondingly little:
        // this is the geometry behind the paper's "95% of terms ≈ 5% of
        // the data" claim.
        assert!(steep.tail_mass(9_500) < 0.15);
    }
}
