//! Query workload generation.
//!
//! TREC-style topics mix moderately rare content words with the occasional
//! frequent term. The df-bias of the generated workload is the lever that
//! decides how often the unsafe fragment-A-only strategy misses query terms
//! — exactly the trade-off the paper's Step 1 experiment measures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::collection::Collection;
use crate::error::{CorpusError, Result};
use crate::zipf::Zipf;

/// How query terms are biased over the document-frequency spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DfBias {
    /// TREC-topic-like: each query targets one latent topic and draws most
    /// terms from that topic's term set, with the given probability of a
    /// high-df (frequent, stop-word-like) term per slot. This is the default
    /// and the workload used by the fragmentation experiments.
    Topical {
        /// Probability that a term slot draws from the high-df band.
        high_df_mix: f64,
    },
    /// Mid-to-low-df content terms without topical coherence.
    TrecLike {
        /// Probability that a term slot draws from the high-df band.
        high_df_mix: f64,
    },
    /// Uniform over all observed terms.
    Uniform,
    /// Only rare terms (lowest df band) — the fragment-A-friendly extreme.
    RareOnly,
    /// Only frequent terms (highest df band) — the fragment-A-hostile extreme.
    FrequentOnly,
}

/// Configuration of a query workload.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryConfig {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Minimum terms per query.
    pub min_terms: usize,
    /// Maximum terms per query (inclusive).
    pub max_terms: usize,
    /// Df bias of term selection.
    pub bias: DfBias,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            num_queries: 50,
            min_terms: 2,
            max_terms: 6,
            bias: DfBias::Topical { high_df_mix: 0.2 },
            seed: 0x7121C,
        }
    }
}

/// A ranked-retrieval query: a bag of term ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Query id (dense, 0-based).
    pub id: u32,
    /// Term ids (distinct, unordered).
    pub terms: Vec<u32>,
    /// The latent topic the query targets, for topical workloads.
    pub topic: Option<u32>,
}

/// Generate a deterministic query workload against a collection.
///
/// Terms are drawn from df bands of the *observed* vocabulary:
/// rare = lowest-df third, mid = middle third, high = top df decile
/// (drawn df-weighted, so "frequent" slots track actual term usage).
pub fn generate_queries(collection: &Collection, config: &QueryConfig) -> Result<Vec<Query>> {
    if config.num_queries == 0 {
        return Err(CorpusError::InvalidConfig("num_queries must be > 0".into()));
    }
    if config.min_terms == 0 || config.min_terms > config.max_terms {
        return Err(CorpusError::InvalidConfig(format!(
            "term range [{}, {}] is invalid",
            config.min_terms, config.max_terms
        )));
    }
    if let DfBias::TrecLike { high_df_mix } | DfBias::Topical { high_df_mix } = config.bias {
        if !(0.0..=1.0).contains(&high_df_mix) {
            return Err(CorpusError::InvalidConfig(
                "high_df_mix must be in [0, 1]".into(),
            ));
        }
    }

    // Observed terms sorted by df ascending.
    let mut observed: Vec<u32> = (0..collection.vocab_size() as u32)
        .filter(|&t| collection.df()[t as usize] > 0)
        .collect();
    if observed.is_empty() {
        return Err(CorpusError::InvalidConfig(
            "collection has no observed terms".into(),
        ));
    }
    observed.sort_by_key(|&t| collection.df()[t as usize]);

    let n = observed.len();
    // Skip df == 1 hapaxes for the "rare" band start when possible: real
    // topics rarely contain one-document terms.
    let first_df2 = observed
        .iter()
        .position(|&t| collection.df()[t as usize] >= 2)
        .unwrap_or(0);
    let rare_band = &observed[first_df2..(n / 3).max(first_df2 + 1).min(n)];
    let mid_band = &observed[n / 3..(2 * n / 3).max(n / 3 + 1)];
    let high_band = &observed[(9 * n / 10).min(n - 1)..];
    // High-band slots draw df-weighted, not uniform: a "frequent,
    // stop-word-like" query slot should land on terms in proportion to
    // how often they are used. A uniform draw stops modelling that as the
    // vocabulary grows — the top df decile of a large Zipf vocabulary is
    // dominated by its own low end, so uniform sampling would make
    // "frequent" slots mostly near-rare and leave the long posting runs
    // unexercised at exactly the scales where they matter.
    let high_cum: Vec<u64> = high_band
        .iter()
        .scan(0u64, |acc, &t| {
            *acc += u64::from(collection.df()[t as usize]);
            Some(*acc)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut queries = Vec::with_capacity(config.num_queries);
    for id in 0..config.num_queries {
        let k = rng.gen_range(config.min_terms..=config.max_terms);
        // Topical queries pick one topic and prefer its observed terms.
        let (topic, topical_terms): (Option<u32>, Vec<u32>) = match config.bias {
            DfBias::Topical { .. } => {
                let t = rng.gen_range(0..collection.num_topics() as u32);
                let terms: Vec<u32> = collection
                    .topic_terms(t)
                    .iter()
                    .copied()
                    .filter(|&term| collection.df()[term as usize] >= 2)
                    .collect();
                (Some(t), terms)
            }
            _ => (None, Vec::new()),
        };
        // Topic titles favour the topic's characteristic (frequent-within-
        // topic) words: draw Zipf-weighted over the topic's term list, the
        // same skew the collection generator used.
        let topical_zipf = if topical_terms.is_empty() {
            None
        } else {
            Some(Zipf::new(topical_terms.len(), 1.0)?)
        };
        let mut terms: Vec<u32> = Vec::with_capacity(k);
        let mut guard = 0;
        while terms.len() < k && guard < 1000 {
            guard += 1;
            let band: &[u32] = match config.bias {
                DfBias::Uniform => &observed,
                DfBias::RareOnly => rare_band,
                DfBias::FrequentOnly => high_band,
                DfBias::TrecLike { high_df_mix } => {
                    if rng.gen::<f64>() < high_df_mix {
                        high_band
                    } else if rng.gen::<f64>() < 0.5 {
                        rare_band
                    } else {
                        mid_band
                    }
                }
                DfBias::Topical { high_df_mix } => {
                    if rng.gen::<f64>() < high_df_mix || topical_terms.is_empty() {
                        high_band
                    } else {
                        // Zipf-weighted draw handled below.
                        &topical_terms
                    }
                }
            };
            if band.is_empty() {
                break;
            }
            let t = if std::ptr::eq(band.as_ptr(), topical_terms.as_ptr())
                && !topical_terms.is_empty()
            {
                let z = topical_zipf.as_ref().expect("built with topical_terms");
                topical_terms[z.sample(&mut rng)]
            } else if std::ptr::eq(band.as_ptr(), high_band.as_ptr()) {
                // Df-weighted draw over the high band (see `high_cum`).
                let total = *high_cum.last().expect("high band is non-empty");
                let r = rng.gen_range(0..total);
                high_band[high_cum.partition_point(|&c| c <= r)]
            } else {
                band[rng.gen_range(0..band.len())]
            };
            if !terms.contains(&t) {
                terms.push(t);
            }
        }
        if terms.is_empty() {
            // Degenerate fallback: take the most frequent observed term.
            terms.push(*observed.last().expect("non-empty observed vocab"));
        }
        queries.push(Query {
            id: id as u32,
            terms,
            topic,
        });
    }
    Ok(queries)
}

/// Configuration of a sustained query *stream*: a pool of distinct
/// queries replayed under Zipf popularity, the arrival pattern a serving
/// deployment actually sees ("a few queries are hot, most are rare" —
/// the same statistical law the paper exploits for terms, applied one
/// level up, to whole queries).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// The pool of distinct queries popularity ranks are drawn over.
    pub pool: QueryConfig,
    /// Total arrivals in the stream (repeats expected; a pool query's
    /// arrival count follows its Zipf rank).
    pub length: usize,
    /// Zipf exponent of the popularity law over pool ranks (rank 0 —
    /// the first pool query — is the hottest).
    pub exponent: f64,
    /// RNG seed of the arrival sequence (independent of the pool seed,
    /// so the same pool can be replayed under different popularity
    /// draws).
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            pool: QueryConfig::default(),
            length: 200,
            exponent: 1.0,
            seed: 0x57E4,
        }
    }
}

/// Generate a deterministic sustained query stream: `length` arrivals
/// drawn from a [`generate_queries`] pool under a Zipf popularity law
/// over pool ranks. Returned queries keep their pool `id`, so stream
/// consumers can key caches or popularity counters by it.
pub fn generate_query_stream(collection: &Collection, config: &StreamConfig) -> Result<Vec<Query>> {
    if config.length == 0 {
        return Err(CorpusError::InvalidConfig(
            "stream length must be > 0".into(),
        ));
    }
    let pool = generate_queries(collection, &config.pool)?;
    let popularity = Zipf::new(pool.len(), config.exponent)?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    Ok((0..config.length)
        .map(|_| pool[popularity.sample(&mut rng)].clone())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionConfig;

    fn coll() -> Collection {
        Collection::generate(CollectionConfig::tiny()).unwrap()
    }

    #[test]
    fn workload_is_deterministic() {
        let c = coll();
        let cfg = QueryConfig::default();
        let a = generate_queries(&c, &cfg).unwrap();
        let b = generate_queries(&c, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn respects_count_and_term_bounds() {
        let c = coll();
        let cfg = QueryConfig {
            num_queries: 17,
            min_terms: 2,
            max_terms: 4,
            ..QueryConfig::default()
        };
        let qs = generate_queries(&c, &cfg).unwrap();
        assert_eq!(qs.len(), 17);
        for q in &qs {
            assert!((1..=4).contains(&q.terms.len()), "query {:?}", q);
            // Terms are distinct.
            let mut t = q.terms.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), q.terms.len());
        }
    }

    #[test]
    fn all_terms_are_observed() {
        let c = coll();
        let qs = generate_queries(&c, &QueryConfig::default()).unwrap();
        for q in &qs {
            for &t in &q.terms {
                assert!(c.df()[t as usize] > 0, "term {t} has df 0");
            }
        }
    }

    #[test]
    fn rare_only_picks_low_df() {
        let c = coll();
        let cfg = QueryConfig {
            bias: DfBias::RareOnly,
            ..QueryConfig::default()
        };
        let qs = generate_queries(&c, &cfg).unwrap();
        let max_df = qs
            .iter()
            .flat_map(|q| q.terms.iter())
            .map(|&t| c.df()[t as usize])
            .max()
            .unwrap();
        let cfg2 = QueryConfig {
            bias: DfBias::FrequentOnly,
            ..QueryConfig::default()
        };
        let qs2 = generate_queries(&c, &cfg2).unwrap();
        let min_df_frequent = qs2
            .iter()
            .flat_map(|q| q.terms.iter())
            .map(|&t| c.df()[t as usize])
            .min()
            .unwrap();
        assert!(
            max_df <= min_df_frequent,
            "rare band df {max_df} should not exceed frequent band df {min_df_frequent}"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = coll();
        let cfg = QueryConfig {
            num_queries: 0,
            ..QueryConfig::default()
        };
        assert!(generate_queries(&c, &cfg).is_err());
        let cfg = QueryConfig {
            min_terms: 0,
            ..QueryConfig::default()
        };
        assert!(generate_queries(&c, &cfg).is_err());
        let cfg = QueryConfig {
            min_terms: 5,
            max_terms: 3,
            ..QueryConfig::default()
        };
        assert!(generate_queries(&c, &cfg).is_err());
        let cfg = QueryConfig {
            bias: DfBias::TrecLike { high_df_mix: 1.5 },
            ..QueryConfig::default()
        };
        assert!(generate_queries(&c, &cfg).is_err());
    }

    #[test]
    fn stream_is_deterministic_and_sized() {
        let c = coll();
        let cfg = StreamConfig {
            length: 120,
            ..StreamConfig::default()
        };
        let a = generate_query_stream(&c, &cfg).unwrap();
        let b = generate_query_stream(&c, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 120);
        // Every arrival is a pool query (ids within the pool range).
        assert!(a.iter().all(|q| (q.id as usize) < cfg.pool.num_queries));
    }

    #[test]
    fn stream_popularity_is_zipf_skewed() {
        let c = coll();
        let cfg = StreamConfig {
            length: 2000,
            exponent: 1.2,
            ..StreamConfig::default()
        };
        let stream = generate_query_stream(&c, &cfg).unwrap();
        let mut counts = vec![0usize; cfg.pool.num_queries];
        for q in &stream {
            counts[q.id as usize] += 1;
        }
        // Rank 0 is the hottest query and repeats many times; the tail
        // still appears (no query is starved out of a long stream).
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max, "pool rank 0 must be the hottest");
        assert!(max >= stream.len() / 10, "no popularity skew: max={max}");
        assert!(counts.iter().filter(|&&c| c > 0).count() > cfg.pool.num_queries / 2);
    }

    #[test]
    fn stream_rejects_bad_configs() {
        let c = coll();
        assert!(generate_query_stream(
            &c,
            &StreamConfig {
                length: 0,
                ..StreamConfig::default()
            }
        )
        .is_err());
        assert!(generate_query_stream(
            &c,
            &StreamConfig {
                exponent: -1.0,
                ..StreamConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn trec_like_mixes_bands() {
        let c = Collection::generate(CollectionConfig::small()).unwrap();
        let cfg = QueryConfig {
            num_queries: 100,
            bias: DfBias::TrecLike { high_df_mix: 0.3 },
            ..QueryConfig::default()
        };
        let qs = generate_queries(&c, &cfg).unwrap();
        let dfs: Vec<u32> = qs
            .iter()
            .flat_map(|q| q.terms.iter())
            .map(|&t| c.df()[t as usize])
            .collect();
        let max = *dfs.iter().max().unwrap();
        let min = *dfs.iter().min().unwrap();
        // A real mixture: spread over at least an order of magnitude.
        assert!(max >= min.saturating_mul(10), "min={min} max={max}");
    }
}
