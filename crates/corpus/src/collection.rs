//! Synthetic document collections.
//!
//! The paper evaluates on the TREC FT collection, which is licensed and not
//! redistributable. We substitute a seeded synthetic collection whose term
//! statistics follow the Zipf law the paper's argument rests on. Term ids
//! are assigned by frequency rank (term 0 is the most frequent), so document
//! frequency is monotonically tied to rank and the df-based fragmentation in
//! `moa-ir` has the same geometry as on real text: a huge tail of rare
//! ("interesting", high-idf) terms that together account for a small
//! fraction of the postings volume.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{CorpusError, Result};
use crate::zipf::Zipf;

/// Configuration of a synthetic collection.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionConfig {
    /// Number of documents.
    pub num_docs: usize,
    /// Vocabulary size (number of distinct term ids the sampler can emit;
    /// terms that are never drawn end up with df = 0).
    pub vocab_size: usize,
    /// Average document length in tokens; actual lengths are uniform in
    /// `[avg/2, 3·avg/2]`.
    pub avg_doc_len: usize,
    /// Zipf exponent of the term distribution. Natural-language token
    /// streams are near 1.0; vocabulary-heavy collections (OCR noise, proper
    /// nouns — like TREC FT) behave steeper in the tail. 1.4–1.6 reproduces
    /// the paper's "95% of terms ≈ 5% of the volume" geometry.
    pub zipf_exponent: f64,
    /// Number of latent topics. Each document belongs to one topic and
    /// draws a share of its tokens from the topic's term set, giving the
    /// collection the topical co-occurrence structure real text has (and
    /// which relevance judgments rely on).
    pub num_topics: usize,
    /// Fraction of each document's tokens drawn from its topic's term set
    /// instead of the global Zipf background; in `[0, 1)`.
    pub topic_mix: f64,
    /// RNG seed; equal configs generate identical collections.
    pub seed: u64,
}

impl CollectionConfig {
    /// A few-hundred-document collection for unit tests.
    pub fn tiny() -> CollectionConfig {
        CollectionConfig {
            num_docs: 200,
            vocab_size: 2_000,
            avg_doc_len: 40,
            zipf_exponent: 1.3,
            num_topics: 20,
            topic_mix: 0.35,
            seed: 0xC0FFEE,
        }
    }

    /// A small laptop-friendly collection for integration tests.
    pub fn small() -> CollectionConfig {
        CollectionConfig {
            num_docs: 2_000,
            vocab_size: 20_000,
            avg_doc_len: 80,
            zipf_exponent: 1.4,
            num_topics: 50,
            topic_mix: 0.3,
            seed: 0xC0FFEE,
        }
    }

    /// A scaled-down stand-in for the TREC FT collection used by the
    /// experiment harness (FT is ~210k docs; we default to 20k docs with a
    /// proportionally large vocabulary so the df geometry matches).
    pub fn ft_scale() -> CollectionConfig {
        CollectionConfig {
            num_docs: 20_000,
            vocab_size: 200_000,
            avg_doc_len: 150,
            zipf_exponent: 1.5,
            num_topics: 100,
            topic_mix: 0.3,
            seed: 0xF7,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.num_docs == 0 {
            return Err(CorpusError::InvalidConfig("num_docs must be > 0".into()));
        }
        if self.vocab_size == 0 {
            return Err(CorpusError::InvalidConfig("vocab_size must be > 0".into()));
        }
        if self.avg_doc_len < 2 {
            return Err(CorpusError::InvalidConfig(
                "avg_doc_len must be at least 2".into(),
            ));
        }
        if self.zipf_exponent.is_nan() || self.zipf_exponent <= 0.0 {
            return Err(CorpusError::InvalidConfig(
                "zipf_exponent must be positive".into(),
            ));
        }
        if self.num_topics == 0 {
            return Err(CorpusError::InvalidConfig("num_topics must be > 0".into()));
        }
        if !(0.0..1.0).contains(&self.topic_mix) {
            return Err(CorpusError::InvalidConfig(
                "topic_mix must be in [0, 1)".into(),
            ));
        }
        Ok(())
    }

    /// The rank band of the vocabulary used as topical "content" terms:
    /// mid-frequency ranks, skipping stop-word-like heads and the hapax
    /// tail. Returns `(start, end)` exclusive-end rank bounds.
    pub fn content_band(&self) -> (usize, usize) {
        let start = (self.vocab_size / 100).max(1);
        let end = (self.vocab_size / 2).max(start + self.num_topics);
        (start, end.min(self.vocab_size))
    }
}

/// One posting: a term occurs in a document with a frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Term id (frequency rank; 0 = most frequent).
    pub term: u32,
    /// Document id.
    pub doc: u32,
    /// Within-document term frequency.
    pub tf: u32,
}

/// A generated collection: postings sorted by `(term, doc)` plus per-term
/// and per-document statistics.
#[derive(Debug, Clone)]
pub struct Collection {
    config: CollectionConfig,
    postings: Vec<Posting>,
    /// Per-term document frequency (index = term id).
    df: Vec<u32>,
    /// Per-term collection frequency (total occurrences).
    cf: Vec<u64>,
    /// Per-document token count.
    doc_len: Vec<u32>,
    /// Per-document latent topic.
    doc_topic: Vec<u32>,
    /// Term ids of each topic's term set.
    topic_terms: Vec<Vec<u32>>,
    /// Offset of each term's posting run in `postings` (len = vocab+1).
    term_offsets: Vec<usize>,
}

impl Collection {
    /// Generate a collection from a configuration (deterministic per seed).
    pub fn generate(config: CollectionConfig) -> Result<Collection> {
        config.validate()?;
        let zipf = Zipf::new(config.vocab_size, config.zipf_exponent)?;
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Assign content-band terms to topics round-robin, so every topic's
        // term set spans the same df spectrum.
        let (band_start, band_end) = config.content_band();
        let mut topic_terms: Vec<Vec<u32>> = vec![Vec::new(); config.num_topics];
        for (i, term) in (band_start..band_end).enumerate() {
            topic_terms[i % config.num_topics].push(term as u32);
        }
        // Within-topic term draw follows its own Zipf, so each topic has a
        // few prominent terms and a tail — like real topical vocabulary.
        let topic_zipfs: Vec<Zipf> = topic_terms
            .iter()
            .map(|terms| Zipf::new(terms.len().max(1), 1.0))
            .collect::<Result<_>>()?;

        let mut df = vec![0u32; config.vocab_size];
        let mut cf = vec![0u64; config.vocab_size];
        let mut doc_len = Vec::with_capacity(config.num_docs);
        let mut doc_topic = Vec::with_capacity(config.num_docs);
        let mut postings: Vec<Posting> = Vec::new();

        // Reusable per-document tf accumulator keyed by term.
        let mut tf_map: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();

        let lo = (config.avg_doc_len / 2).max(1);
        let hi = config.avg_doc_len + config.avg_doc_len / 2;
        for doc in 0..config.num_docs {
            let len = rng.gen_range(lo..=hi) as u32;
            let topic = rng.gen_range(0..config.num_topics as u32);
            doc_len.push(len);
            doc_topic.push(topic);
            tf_map.clear();
            for _ in 0..len {
                let term = if rng.gen::<f64>() < config.topic_mix
                    && !topic_terms[topic as usize].is_empty()
                {
                    let idx = topic_zipfs[topic as usize].sample(&mut rng);
                    topic_terms[topic as usize][idx]
                } else {
                    zipf.sample(&mut rng) as u32
                };
                *tf_map.entry(term).or_insert(0) += 1;
            }
            for (&term, &tf) in tf_map.iter() {
                df[term as usize] += 1;
                cf[term as usize] += u64::from(tf);
                postings.push(Posting {
                    term,
                    doc: doc as u32,
                    tf,
                });
            }
        }
        postings.sort_unstable_by_key(|p| (p.term, p.doc));

        // Dense offsets per term for O(1) posting-run access.
        let mut term_offsets = vec![0usize; config.vocab_size + 1];
        for p in &postings {
            term_offsets[p.term as usize + 1] += 1;
        }
        for t in 0..config.vocab_size {
            term_offsets[t + 1] += term_offsets[t];
        }

        Ok(Collection {
            config,
            postings,
            df,
            cf,
            doc_len,
            doc_topic,
            topic_terms,
            term_offsets,
        })
    }

    /// The generating configuration.
    pub fn config(&self) -> &CollectionConfig {
        &self.config
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.config.num_docs
    }

    /// Vocabulary size (including never-drawn terms with df = 0).
    pub fn vocab_size(&self) -> usize {
        self.config.vocab_size
    }

    /// All postings, sorted by `(term, doc)`.
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// Total number of postings (the collection's storage volume unit).
    pub fn num_postings(&self) -> usize {
        self.postings.len()
    }

    /// Document frequency per term.
    pub fn df(&self) -> &[u32] {
        &self.df
    }

    /// Collection frequency per term.
    pub fn cf(&self) -> &[u64] {
        &self.cf
    }

    /// Token count per document.
    pub fn doc_len(&self) -> &[u32] {
        &self.doc_len
    }

    /// Total tokens in the collection.
    pub fn total_tokens(&self) -> u64 {
        self.doc_len.iter().map(|&l| u64::from(l)).sum()
    }

    /// The posting run of a single term (sorted by doc id).
    pub fn postings_for_term(&self, term: u32) -> &[Posting] {
        let t = term as usize;
        if t >= self.config.vocab_size {
            return &[];
        }
        &self.postings[self.term_offsets[t]..self.term_offsets[t + 1]]
    }

    /// Number of terms that actually occur (df > 0).
    pub fn observed_vocab(&self) -> usize {
        self.df.iter().filter(|&&d| d > 0).count()
    }

    /// The latent topic of each document.
    pub fn doc_topic(&self) -> &[u32] {
        &self.doc_topic
    }

    /// The term set of a topic (empty slice for out-of-range topics).
    pub fn topic_terms(&self, topic: u32) -> &[u32] {
        self.topic_terms
            .get(topic as usize)
            .map_or(&[], Vec::as_slice)
    }

    /// Number of latent topics.
    pub fn num_topics(&self) -> usize {
        self.config.num_topics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Collection::generate(CollectionConfig::tiny()).unwrap();
        let b = Collection::generate(CollectionConfig::tiny()).unwrap();
        assert_eq!(a.postings(), b.postings());
        assert_eq!(a.doc_len(), b.doc_len());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = CollectionConfig::tiny();
        let a = Collection::generate(cfg.clone()).unwrap();
        cfg.seed += 1;
        let b = Collection::generate(cfg).unwrap();
        assert_ne!(a.postings(), b.postings());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = CollectionConfig::tiny();
        cfg.num_docs = 0;
        assert!(Collection::generate(cfg).is_err());
        let mut cfg = CollectionConfig::tiny();
        cfg.vocab_size = 0;
        assert!(Collection::generate(cfg).is_err());
        let mut cfg = CollectionConfig::tiny();
        cfg.avg_doc_len = 1;
        assert!(Collection::generate(cfg).is_err());
        let mut cfg = CollectionConfig::tiny();
        cfg.zipf_exponent = 0.0;
        assert!(Collection::generate(cfg).is_err());
    }

    #[test]
    fn postings_sorted_and_consistent() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let p = c.postings();
        assert!(p
            .windows(2)
            .all(|w| (w[0].term, w[0].doc) < (w[1].term, w[1].doc)));
        // df equals number of postings per term.
        for term in 0..c.vocab_size() as u32 {
            assert_eq!(
                c.df()[term as usize] as usize,
                c.postings_for_term(term).len(),
                "term {term}"
            );
        }
    }

    #[test]
    fn cf_matches_tf_sums_and_doc_len() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let cf_sum: u64 = c.cf().iter().sum();
        let tf_sum: u64 = c.postings().iter().map(|p| u64::from(p.tf)).sum();
        assert_eq!(cf_sum, tf_sum);
        assert_eq!(cf_sum, c.total_tokens());
    }

    #[test]
    fn doc_lengths_in_configured_band() {
        let cfg = CollectionConfig::tiny();
        let c = Collection::generate(cfg.clone()).unwrap();
        let lo = (cfg.avg_doc_len / 2) as u32;
        let hi = (cfg.avg_doc_len + cfg.avg_doc_len / 2) as u32;
        assert!(c.doc_len().iter().all(|&l| (lo..=hi).contains(&l)));
        assert_eq!(c.doc_len().len(), cfg.num_docs);
    }

    #[test]
    fn frequent_terms_have_higher_df() {
        let c = Collection::generate(CollectionConfig::small()).unwrap();
        // Term 0 (most probable) should appear in far more docs than a
        // mid-tail term.
        assert!(c.df()[0] > c.df()[5_000].saturating_mul(2));
    }

    #[test]
    fn vocabulary_is_hapax_heavy() {
        // The FT-like geometry: most observed terms are rare.
        let c = Collection::generate(CollectionConfig::small()).unwrap();
        let rare = c.df().iter().filter(|&&d| (1..=2).contains(&d)).count();
        let observed = c.observed_vocab();
        assert!(
            rare as f64 > 0.4 * observed as f64,
            "rare={rare} observed={observed}"
        );
    }

    #[test]
    fn postings_for_unknown_term_is_empty() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        assert!(c.postings_for_term(u32::MAX).is_empty());
    }

    #[test]
    fn rarest_terms_carry_small_volume() {
        // The quantitative premise of E9: sort terms by df ascending; the
        // rarest 95% of observed terms carry a strongly sub-proportional
        // share of the postings volume. (On TREC FT at 210k docs the paper
        // reports ≈5%; at this laptop scale the df ceiling of 2k docs
        // compresses the head, yielding ≈40% — still a 2.4× concentration.
        // E9 reports the full curve.)
        let c = Collection::generate(CollectionConfig::small()).unwrap();
        let mut dfs: Vec<u32> = c.df().iter().copied().filter(|&d| d > 0).collect();
        dfs.sort_unstable();
        let cut = (dfs.len() as f64 * 0.95) as usize;
        let tail_volume: u64 = dfs[..cut].iter().map(|&d| u64::from(d)).sum();
        let total: u64 = dfs.iter().map(|&d| u64::from(d)).sum();
        let frac = tail_volume as f64 / total as f64;
        assert!(frac < 0.50, "rarest 95% of terms carry {frac:.3} of volume");
    }

    #[test]
    fn topics_partition_content_band_and_docs_have_topics() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        assert_eq!(c.doc_topic().len(), c.num_docs());
        assert!(c.doc_topic().iter().all(|&t| (t as usize) < c.num_topics()));
        let (start, end) = c.config().content_band();
        let mut seen = std::collections::HashSet::new();
        for t in 0..c.num_topics() as u32 {
            for &term in c.topic_terms(t) {
                assert!((start..end).contains(&(term as usize)));
                assert!(seen.insert(term), "term {term} in two topics");
            }
        }
        assert_eq!(seen.len(), end - start);
        assert!(c.topic_terms(u32::MAX).is_empty());
    }

    #[test]
    fn topical_docs_share_vocabulary() {
        // Two docs of the same topic should share more distinct terms than
        // two docs of different topics, on average.
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let mut doc_terms: Vec<std::collections::HashSet<u32>> =
            vec![std::collections::HashSet::new(); c.num_docs()];
        for p in c.postings() {
            doc_terms[p.doc as usize].insert(p.term);
        }
        let mut same = (0usize, 0usize); // (overlap sum, pairs)
        let mut diff = (0usize, 0usize);
        for a in 0..c.num_docs().min(60) {
            for b in (a + 1)..c.num_docs().min(60) {
                let overlap = doc_terms[a].intersection(&doc_terms[b]).count();
                if c.doc_topic()[a] == c.doc_topic()[b] {
                    same = (same.0 + overlap, same.1 + 1);
                } else {
                    diff = (diff.0 + overlap, diff.1 + 1);
                }
            }
        }
        if same.1 > 0 && diff.1 > 0 {
            let same_avg = same.0 as f64 / same.1 as f64;
            let diff_avg = diff.0 as f64 / diff.1 as f64;
            assert!(
                same_avg > diff_avg,
                "same-topic overlap {same_avg:.2} <= cross-topic {diff_avg:.2}"
            );
        }
    }
}
