//! Property-based tests of the workload generators.

use proptest::prelude::*;

use moa_corpus::{
    generate_queries, Collection, CollectionConfig, Correlation, DfBias, FeatureConfig,
    FeatureLists, QueryConfig, Zipf,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn zipf_pmf_normalizes_and_decreases(n in 1usize..2000, s in 0.2f64..3.0) {
        let z = Zipf::new(n, s).unwrap();
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "total {total}");
        for r in 1..n.min(50) {
            prop_assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
        prop_assert!((z.cdf(n - 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_head_tail_partition(n in 2usize..500, s in 0.5f64..2.0, k in 0usize..500) {
        let z = Zipf::new(n, s).unwrap();
        let k = k.min(n);
        let h = z.head_mass(k);
        let t = z.tail_mass(n - k);
        prop_assert!((h + t - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
    }

    #[test]
    fn collection_invariants(
        docs in 10usize..120,
        vocab in 50usize..800,
        avg_len in 4usize..40,
        s in 0.8f64..1.8,
        seed in 0u64..1000,
    ) {
        let cfg = CollectionConfig {
            num_docs: docs,
            vocab_size: vocab,
            avg_doc_len: avg_len,
            zipf_exponent: s,
            num_topics: 5,
            topic_mix: 0.3,
            seed,
        };
        let c = Collection::generate(cfg).unwrap();
        // df/cf/postings consistency.
        let df_sum: u64 = c.df().iter().map(|&d| u64::from(d)).sum();
        prop_assert_eq!(df_sum as usize, c.num_postings());
        let cf_sum: u64 = c.cf().iter().sum();
        prop_assert_eq!(cf_sum, c.total_tokens());
        // Every posting's tf ≥ 1 and doc id in range.
        for p in c.postings() {
            prop_assert!(p.tf >= 1);
            prop_assert!((p.doc as usize) < docs);
            prop_assert!((p.term as usize) < vocab);
        }
        // Posting runs match df exactly.
        for term in 0..vocab as u32 {
            prop_assert_eq!(
                c.postings_for_term(term).len(),
                c.df()[term as usize] as usize
            );
        }
    }

    #[test]
    fn queries_use_observed_terms(seed in 0u64..200) {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        for bias in [
            DfBias::Topical { high_df_mix: 0.2 },
            DfBias::TrecLike { high_df_mix: 0.2 },
            DfBias::Uniform,
            DfBias::RareOnly,
            DfBias::FrequentOnly,
        ] {
            let qs = generate_queries(
                &c,
                &QueryConfig { bias, seed, num_queries: 5, ..QueryConfig::default() },
            ).unwrap();
            prop_assert_eq!(qs.len(), 5);
            for q in &qs {
                prop_assert!(!q.terms.is_empty());
                for &t in &q.terms {
                    prop_assert!(c.df()[t as usize] > 0, "df-0 term in query");
                }
            }
        }
    }

    #[test]
    fn feature_lists_invariants(
        n in 1usize..300,
        m in 1usize..5,
        seed in 0u64..500,
    ) {
        for corr in [
            Correlation::Independent,
            Correlation::Correlated(0.7),
            Correlation::AntiCorrelated(0.7),
        ] {
            let fl = FeatureLists::generate(&FeatureConfig {
                num_objects: n,
                num_lists: m,
                correlation: corr,
                seed,
            }).unwrap();
            prop_assert_eq!(fl.num_objects(), n);
            prop_assert_eq!(fl.num_lists(), m);
            for i in 0..m {
                // Sorted order is a permutation with descending grades.
                let mut seen = vec![false; n];
                let mut prev = f64::INFINITY;
                for r in 0..n {
                    let (obj, g) = fl.sorted_entry(i, r).unwrap();
                    prop_assert!(!seen[obj as usize]);
                    seen[obj as usize] = true;
                    prop_assert!(g <= prev + 1e-12);
                    prev = g;
                    prop_assert!((0.0..=1.0).contains(&g));
                }
            }
        }
    }
}
