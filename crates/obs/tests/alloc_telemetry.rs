//! Counting-allocator proof that the telemetry record path is
//! allocation-free.
//!
//! The observability contract (mirroring the execution arena's proof in
//! `crates/ir/tests/alloc_steady_state.rs`): once the primitives exist —
//! registry handles resolved, ring buffers preallocated, slow log at
//! capacity — recording a metric, a phase timing, or a trace performs
//! **zero heap allocations**, and a steady-state slow-log offer (one
//! that loses to the retained worst-K) constructs nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use moa_obs::{MetricsRegistry, Phase, PhaseAgg, QueryTrace, SlowLog, TraceRing};

struct CountingAlloc;

// Per-thread counter: the libtest harness thread allocates (output
// buffering) concurrently with the test thread, so a process-global
// counter would flake. The const initializer keeps thread-local access
// itself allocation-free.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn count_one() {
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

#[test]
fn record_paths_allocate_nothing() {
    // Setup phase: registration and preallocation may allocate freely.
    let registry = MetricsRegistry::new();
    let queries = registry.counter("serve.queries");
    let depth = registry.gauge("serve.queue_depth");
    let latency = registry.histogram("serve.query_ns");
    let mut ring = TraceRing::with_capacity(64);
    let slow: SlowLog<[u64; 4]> = SlowLog::with_capacity(4);
    // Fill the slow log so steady-state offers face a real threshold.
    for i in 0..4u64 {
        assert!(slow.offer_with(1_000_000 + i, || [i; 4]));
    }
    let mut phases = PhaseAgg::new();

    let before = allocations();
    for i in 0..10_000u64 {
        queries.incr();
        depth.set(i % 17);
        depth.add(1);
        depth.sub(1);
        latency.record(i * 37);
        phases.reset();
        phases.add_ns(Phase::GatePass, 100);
        phases.add_ns(Phase::Score, 10_000 + i);
        phases.add_ns(Phase::Merge, 200);
        let mut t = QueryTrace::new(i, (i % 32) as u32, (i % 4) as u32);
        t.plan = "pruned_daat";
        t.wall_ns = phases.total_ns();
        t.push(Phase::QueueWait, 500);
        t.push_phases(&phases);
        ring.record(t);
        // Steady state: every query is faster than the retained worst-K,
        // so the offer is rejected before the closure could allocate.
        let retained = slow.offer_with(i, || unreachable!("steady-state offer must lose"));
        assert!(!retained);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "telemetry record path performed {} heap allocations",
        after - before
    );
    assert_eq!(queries.get(), 10_000);
    assert_eq!(latency.count(), 10_000);
    assert_eq!(ring.recorded(), 10_000);
    assert_eq!(ring.len(), 64);
}
