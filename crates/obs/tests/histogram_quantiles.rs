//! Property tests pinning histogram percentiles to an exact
//! nearest-rank oracle.
//!
//! The histogram trades resolution for a fixed, lock-free footprint: it
//! knows only which log₂ bucket each sample fell in. The contract it
//! *can* keep — and the one these properties pin — is that p50/p95/p99
//! land in **exactly the bucket of the true nearest-rank sample**, and
//! report that bucket's upper bound (so the reported figure is an upper
//! estimate within one bucket, i.e. within 2×, of the truth). Edge
//! cases the issue calls out — empty, single sample, and samples sitting
//! exactly on bucket boundaries (powers of two) — are covered both by
//! dedicated cases and by the generators.

use proptest::prelude::*;

use moa_obs::metrics::NUM_BUCKETS;
use moa_obs::Histogram;

/// Exact nearest-rank percentile: the sample of rank ⌈q/100·n⌉ in
/// sorted order.
fn oracle(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    Some(sorted[rank.min(sorted.len()) - 1])
}

fn check_against_oracle(samples: &[u64]) {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    for q in [50.0, 95.0, 99.0] {
        let got = h.percentile(q);
        let want = oracle(&sorted, q);
        match (got, want) {
            (None, None) => {}
            (Some(got), Some(want)) => {
                assert_eq!(
                    Histogram::bucket_of(got),
                    Histogram::bucket_of(want),
                    "p{q}: histogram answered {got} (bucket {}), exact nearest-rank is \
                     {want} (bucket {}) over {} samples",
                    Histogram::bucket_of(got),
                    Histogram::bucket_of(want),
                    samples.len(),
                );
                assert_eq!(
                    got,
                    Histogram::bucket_upper(Histogram::bucket_of(want)),
                    "p{q}: the reported value must be the true bucket's upper bound"
                );
                assert!(got >= want, "p{q}: bucket upper bound can never undershoot");
            }
            _ => panic!("p{q}: emptiness disagrees: got {got:?}, oracle {want:?}"),
        }
    }
}

#[test]
fn empty_histogram_has_no_percentiles() {
    let h = Histogram::new();
    assert_eq!(h.percentile(50.0), None);
    assert_eq!(h.percentile(95.0), None);
    assert_eq!(h.percentile(99.0), None);
    assert_eq!(h.count(), 0);
}

#[test]
fn single_sample_is_every_percentile() {
    for v in [0u64, 1, 2, 7, 8, 1023, 1024, u64::MAX] {
        check_against_oracle(&[v]);
    }
}

#[test]
fn bucket_boundary_samples() {
    // Powers of two sit on bucket edges: 2^k opens bucket k+1, 2^k − 1
    // closes bucket k. Mixes of both exercise the rank walk across
    // adjacent buckets.
    let mut edges = vec![0u64];
    for k in 0..63u32 {
        edges.push(1u64 << k);
        edges.push((1u64 << k).wrapping_sub(1));
    }
    edges.push(u64::MAX);
    check_against_oracle(&edges);
    check_against_oracle(&[1, 1, 2, 2, 2, 4, 4, 8]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary sample streams: p50/p95/p99 always land in the exact
    /// nearest-rank sample's bucket.
    #[test]
    fn quantiles_match_oracle_bucket(
        samples in proptest::collection::vec(0u64..2_000_000_000, 0..400),
    ) {
        check_against_oracle(&samples);
    }

    /// Heavy-tailed streams (shifted by huge offsets, including near the
    /// top buckets) keep the property.
    #[test]
    fn quantiles_match_oracle_bucket_wide_range(
        samples in proptest::collection::vec(0u64..=u64::MAX, 1..120),
    ) {
        check_against_oracle(&samples);
    }

    /// Boundary-only streams: every sample a power of two or its
    /// predecessor, the worst case for off-by-one bucket edges.
    #[test]
    fn quantiles_match_oracle_on_boundaries(
        shifts in proptest::collection::vec(0u32..64, 1..100),
        minus_one in proptest::collection::vec(0u32..2, 1..100),
    ) {
        let samples: Vec<u64> = shifts
            .iter()
            .zip(minus_one.iter().cycle())
            .map(|(&k, &m)| {
                let v = 1u64 << k.min(63);
                if m == 1 { v.wrapping_sub(1) } else { v }
            })
            .collect();
        check_against_oracle(&samples);
    }

    /// The bucket function itself: values always fall within the bucket
    /// whose upper bound they map to, and buckets tile the u64 range.
    #[test]
    fn bucket_of_is_consistent(v in 0u64..=u64::MAX) {
        let b = Histogram::bucket_of(v);
        prop_assert!(b < NUM_BUCKETS);
        prop_assert!(v <= Histogram::bucket_upper(b));
        if b > 0 {
            prop_assert!(v > Histogram::bucket_upper(b - 1));
        }
    }
}
