//! A bounded worst-K slow-query log with lazy entry construction.
//!
//! The log retains the K entries with the largest keys (latency in
//! nanoseconds). The allocation discipline is the point: callers offer
//! `(key, closure)` and the closure — which typically clones terms and
//! builds the retained record — runs **only after** the key beats the
//! current admission threshold. In steady state, where almost every
//! query is faster than the retained worst-K, an offer is one mutex
//! acquisition and one integer compare: no allocation, nothing built.

use std::sync::Mutex;

struct Inner<T> {
    entries: Vec<(u64, T)>,
}

/// Worst-K retention keyed by `u64` (larger = slower = kept).
pub struct SlowLog<T> {
    inner: Mutex<Inner<T>>,
    cap: usize,
}

impl<T> std::fmt::Debug for SlowLog<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SlowLog(cap {})", self.cap)
    }
}

impl<T> SlowLog<T> {
    /// A log retaining the `cap` largest-keyed entries.
    pub fn with_capacity(cap: usize) -> SlowLog<T> {
        SlowLog {
            inner: Mutex::new(Inner {
                entries: Vec::with_capacity(cap),
            }),
            cap,
        }
    }

    /// Offer an entry. `make` is invoked only if `key` is admitted
    /// (log not yet full, or `key` strictly beats the smallest retained
    /// key). Returns whether the entry was retained.
    pub fn offer_with(&self, key: u64, make: impl FnOnce() -> T) -> bool {
        if self.cap == 0 {
            return false;
        }
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if g.entries.len() < self.cap {
            let entry = make();
            g.entries.push((key, entry));
            return true;
        }
        // K is small (a config knob, not a data structure): a linear
        // argmin beats heap bookkeeping and keeps the reject path to one
        // scan of K integers.
        let (min_i, min_key) = g
            .entries
            .iter()
            .enumerate()
            .map(|(i, (k, _))| (i, *k))
            .min_by_key(|&(_, k)| k)
            .expect("cap > 0 and full");
        if key <= min_key {
            return false;
        }
        let entry = make();
        g.entries[min_i] = (key, entry);
        true
    }

    /// The smallest key an offer must beat to be admitted (`None` while
    /// the log still has room; `Some(0)` means everything admits).
    pub fn threshold(&self) -> Option<u64> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if g.entries.len() < self.cap {
            None
        } else {
            g.entries.iter().map(|(k, _)| *k).min()
        }
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove and return every entry, worst (largest key) first.
    pub fn drain_sorted(&self) -> Vec<(u64, T)> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = std::mem::take(&mut g.entries);
        out.sort_by_key(|e| std::cmp::Reverse(e.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn retains_worst_k_sorted() {
        let log = SlowLog::with_capacity(3);
        for (key, name) in [(10, "a"), (50, "b"), (30, "c"), (5, "d"), (40, "e")] {
            log.offer_with(key, || name);
        }
        assert_eq!(log.len(), 3);
        let got = log.drain_sorted();
        assert_eq!(got, vec![(50, "b"), (40, "e"), (30, "c")]);
        assert!(log.is_empty());
    }

    #[test]
    fn rejected_offers_never_construct() {
        let built = AtomicUsize::new(0);
        let log = SlowLog::with_capacity(2);
        let mk = || {
            built.fetch_add(1, Ordering::Relaxed);
            "entry"
        };
        assert!(log.offer_with(100, mk));
        assert!(log.offer_with(200, mk));
        assert_eq!(log.threshold(), Some(100));
        // Below or at the threshold: the closure must not run.
        assert!(!log.offer_with(50, mk));
        assert!(!log.offer_with(100, mk));
        assert_eq!(built.load(Ordering::Relaxed), 2);
        // Above it: admitted, evicting the old minimum.
        assert!(log.offer_with(150, mk));
        assert_eq!(built.load(Ordering::Relaxed), 3);
        assert_eq!(log.threshold(), Some(150));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let log: SlowLog<&str> = SlowLog::with_capacity(0);
        assert!(!log.offer_with(u64::MAX, || unreachable!("cap 0 never constructs")));
        assert!(log.is_empty());
        assert_eq!(log.threshold(), None);
    }
}
