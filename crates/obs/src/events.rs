//! A bounded structured event log.
//!
//! Rare, structured occurrences — worker panics, respawns, shed storms —
//! want history with ordering, not a counter. [`EventLog`] keeps the
//! most recent `cap` events with monotone sequence numbers and counts
//! what it had to drop. It replaces ad-hoc `Vec` bookkeeping (the old
//! `ShardPool::panic_log`) with one audited primitive.
//!
//! Events are rare by definition, so this takes a mutex per record —
//! it is *not* a hot-path structure; per-query signals belong in
//! [`crate::metrics`] or [`crate::trace`].

use std::collections::VecDeque;
use std::sync::Mutex;

struct Inner<T> {
    events: VecDeque<(u64, T)>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, sequence-numbered event history.
pub struct EventLog<T> {
    inner: Mutex<Inner<T>>,
    cap: usize,
}

impl<T> std::fmt::Debug for EventLog<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EventLog(cap {})", self.cap)
    }
}

impl<T: Clone> EventLog<T> {
    /// A log retaining the most recent `cap` events.
    pub fn with_capacity(cap: usize) -> EventLog<T> {
        EventLog {
            inner: Mutex::new(Inner {
                events: VecDeque::with_capacity(cap),
                next_seq: 0,
                dropped: 0,
            }),
            cap,
        }
    }

    /// Record an event, evicting the oldest when full. Returns its
    /// sequence number.
    pub fn record(&self, event: T) -> u64 {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = g.next_seq;
        g.next_seq += 1;
        if self.cap == 0 {
            g.dropped += 1;
            return seq;
        }
        if g.events.len() == self.cap {
            g.events.pop_front();
            g.dropped += 1;
        }
        g.events.push_back((seq, event));
        seq
    }

    /// The retained events with their sequence numbers, oldest first.
    pub fn snapshot(&self) -> Vec<(u64, T)> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.events.iter().cloned().collect()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime count of events recorded (retained or evicted).
    pub fn recorded(&self) -> u64 {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.next_seq
    }

    /// Events evicted or discarded for capacity.
    pub fn dropped(&self) -> u64 {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_keep_sequence_and_evict_oldest() {
        let log = EventLog::with_capacity(2);
        assert!(log.is_empty());
        assert_eq!(log.record("a"), 0);
        assert_eq!(log.record("b"), 1);
        assert_eq!(log.record("c"), 2);
        let got = log.snapshot();
        assert_eq!(got, vec![(1, "b"), (2, "c")]);
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn zero_capacity_counts_only() {
        let log = EventLog::with_capacity(0);
        log.record(1u32);
        assert!(log.is_empty());
        assert_eq!(log.recorded(), 1);
        assert_eq!(log.dropped(), 1);
    }
}
