//! The span vocabulary: the lifecycle phases a query moves through, and
//! a plain (non-atomic) per-query aggregate of time spent in each.
//!
//! [`PhaseAgg`] is deliberately *not* atomic: it lives inside the
//! per-worker execution scratch and is written under `&mut` at stage
//! boundaries — a few `Instant` reads per query, not per posting — then
//! copied out as part of the query's outcome. Cross-thread aggregation
//! happens on the `Copy` snapshot, never on shared state.

use std::fmt;
use std::time::Duration;

/// One stage of the query lifecycle. The serve layer records the
/// front-of-house phases (admission, queue wait, k-way merge, delivery);
/// the execution engine records the per-shard phases (plan, gate pass,
/// decode, score, merge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum Phase {
    /// Admission control: shed/backpressure decision and coalescing.
    #[default]
    Admission = 0,
    /// Time between admission and a worker picking the job up.
    QueueWait = 1,
    /// Planner invocation (costing the alternatives, picking one).
    Plan = 2,
    /// Per-shard setup: cursor opening, bound-table resolution, MaxScore
    /// partition — everything before the first candidate is scored.
    GatePass = 3,
    /// Unpruned posting decode: the warm-up merge that fills the heap
    /// before bounds can prune (every posting decoded and scored).
    Decode = 4,
    /// The bounds-pruned scan: candidate gating and scoring until the
    /// lists exhaust or the deadline fires.
    Score = 5,
    /// Per-shard result extraction: draining the top-N heap in order.
    Merge = 6,
    /// Cross-shard k-way merge of per-shard columns.
    KWayMerge = 7,
    /// Response assembly and delivery back to the caller.
    Deliver = 8,
}

/// Number of phases (the length of [`Phase::ALL`]).
pub const NUM_PHASES: usize = 9;

impl Phase {
    /// Every phase, in lifecycle order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Admission,
        Phase::QueueWait,
        Phase::Plan,
        Phase::GatePass,
        Phase::Decode,
        Phase::Score,
        Phase::Merge,
        Phase::KWayMerge,
        Phase::Deliver,
    ];

    /// Stable snake_case name (used in exposition and EXPLAIN ANALYZE).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Admission => "admission",
            Phase::QueueWait => "queue_wait",
            Phase::Plan => "plan",
            Phase::GatePass => "gate_pass",
            Phase::Decode => "decode",
            Phase::Score => "score",
            Phase::Merge => "merge",
            Phase::KWayMerge => "kway_merge",
            Phase::Deliver => "deliver",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-query phase timings in nanoseconds: a plain `Copy` array written
/// under `&mut` at stage boundaries. All additions saturate — a stalled
/// clock or a pathological aggregation must never wrap into a tiny
/// figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseAgg {
    nanos: [u64; NUM_PHASES],
}

impl PhaseAgg {
    /// An empty aggregate.
    pub fn new() -> PhaseAgg {
        PhaseAgg::default()
    }

    /// Clear every phase (start of a new query).
    #[inline]
    pub fn reset(&mut self) {
        self.nanos = [0; NUM_PHASES];
    }

    /// Add `d` to `phase`.
    #[inline]
    pub fn add(&mut self, phase: Phase, d: Duration) {
        self.add_ns(phase, d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Add raw nanoseconds to `phase`.
    #[inline]
    pub fn add_ns(&mut self, phase: Phase, ns: u64) {
        let slot = &mut self.nanos[phase as usize];
        *slot = slot.saturating_add(ns);
    }

    /// Nanoseconds recorded against `phase`.
    #[inline]
    pub fn get(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }

    /// Sum across phases (saturating).
    pub fn total_ns(&self) -> u64 {
        self.nanos.iter().fold(0u64, |a, &n| a.saturating_add(n))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nanos.iter().all(|&n| n == 0)
    }

    /// Fold another aggregate into this one (saturating per phase).
    pub fn merge(&mut self, other: &PhaseAgg) {
        for (p, o) in self.nanos.iter_mut().zip(&other.nanos) {
            *p = p.saturating_add(*o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_unique_and_ordered() {
        let mut seen = Vec::new();
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
            assert!(!seen.contains(&p.name()));
            seen.push(p.name());
        }
    }

    #[test]
    fn agg_accumulates_and_saturates() {
        let mut a = PhaseAgg::new();
        assert!(a.is_empty());
        a.add(Phase::Score, Duration::from_nanos(10));
        a.add_ns(Phase::Score, 5);
        a.add_ns(Phase::Merge, u64::MAX);
        a.add_ns(Phase::Merge, 1);
        assert_eq!(a.get(Phase::Score), 15);
        assert_eq!(a.get(Phase::Merge), u64::MAX);
        assert_eq!(a.total_ns(), u64::MAX);
        let mut b = PhaseAgg::new();
        b.add_ns(Phase::Plan, 7);
        b.merge(&a);
        assert_eq!(b.get(Phase::Plan), 7);
        assert_eq!(b.get(Phase::Score), 15);
        a.reset();
        assert!(a.is_empty());
    }
}
