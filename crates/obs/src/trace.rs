//! Query traces: `Copy` span records written into preallocated ring
//! buffers.
//!
//! A [`QueryTrace`] is a fixed-size value — a small array of
//! [`Span`]s plus identity tags — so recording one is a memcpy into a
//! slot of a [`TraceRing`] the worker allocated at startup. Nothing on
//! the record path allocates, boxes, or formats; rendering happens only
//! when a trace is drained for display (EXPLAIN ANALYZE, the slow-query
//! log, tests).

use std::fmt::Write as _;

use crate::phase::{Phase, PhaseAgg};

/// Spans a single trace can hold — one per [`Phase`] plus headroom for
/// repeated phases (e.g. a retried shard). Pushes beyond this are
/// dropped, counted in [`QueryTrace::dropped_spans`].
pub const MAX_SPANS: usize = 12;

/// One timed stage of a query's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Which lifecycle stage.
    pub phase: Phase,
    /// Time spent, nanoseconds.
    pub nanos: u64,
}

/// The recorded lifecycle of one query on one shard (or, for the
/// batch-level spans, of one batch): identity tags plus up to
/// [`MAX_SPANS`] spans. `Copy` by design — recording is a slot write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTrace {
    /// Monotone batch sequence number (0 for unbatched execution).
    pub batch: u64,
    /// Query position within its batch.
    pub query: u32,
    /// Shard that executed it (`u32::MAX` for batch-level traces).
    pub shard: u32,
    /// Stable name of the physical plan that ran (empty when no plan was
    /// involved, e.g. batch-level merge spans).
    pub plan: &'static str,
    /// End-to-end wall time on this shard, nanoseconds.
    pub wall_ns: u64,
    /// Whether the execution was cut short (deadline/partial result).
    pub partial: bool,
    spans: [Span; MAX_SPANS],
    len: u8,
    dropped: u8,
}

impl QueryTrace {
    /// An empty trace tagged with its identity.
    pub fn new(batch: u64, query: u32, shard: u32) -> QueryTrace {
        QueryTrace {
            batch,
            query,
            shard,
            plan: "",
            wall_ns: 0,
            partial: false,
            spans: [Span::default(); MAX_SPANS],
            len: 0,
            dropped: 0,
        }
    }

    /// Append a span; silently dropped (and counted) once full.
    #[inline]
    pub fn push(&mut self, phase: Phase, nanos: u64) {
        if (self.len as usize) < MAX_SPANS {
            self.spans[self.len as usize] = Span { phase, nanos };
            self.len += 1;
        } else {
            self.dropped = self.dropped.saturating_add(1);
        }
    }

    /// Append every non-zero phase of an aggregate, in lifecycle order.
    pub fn push_phases(&mut self, agg: &PhaseAgg) {
        for p in Phase::ALL {
            let ns = agg.get(p);
            if ns > 0 {
                self.push(p, ns);
            }
        }
    }

    /// The recorded spans, in push order.
    pub fn spans(&self) -> &[Span] {
        &self.spans[..self.len as usize]
    }

    /// Spans that did not fit.
    pub fn dropped_spans(&self) -> u8 {
        self.dropped
    }

    /// Render one human-readable line (allocates; drain-time only).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "batch {} query {} shard {}",
            self.batch, self.query, self.shard
        );
        if !self.plan.is_empty() {
            let _ = write!(out, " plan {}", self.plan);
        }
        let _ = write!(out, " wall {}us", self.wall_ns / 1_000);
        if self.partial {
            out.push_str(" PARTIAL");
        }
        for s in self.spans() {
            let _ = write!(out, " | {} {}us", s.phase, s.nanos / 1_000);
        }
        out
    }
}

/// A preallocated ring of [`QueryTrace`]s: each worker owns one sized at
/// startup, and `record` overwrites the oldest slot once full — constant
/// memory, zero allocation, recent history always available.
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<QueryTrace>,
    cap: usize,
    next: usize,
    recorded: u64,
}

impl TraceRing {
    /// A ring holding the most recent `cap` traces (all slots
    /// preallocated here, never on the record path).
    pub fn with_capacity(cap: usize) -> TraceRing {
        TraceRing {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            recorded: 0,
        }
    }

    /// Record a trace: a slot write, overwriting the oldest once the
    /// ring is full. A zero-capacity ring counts and discards.
    #[inline]
    pub fn record(&mut self, trace: QueryTrace) {
        self.recorded += 1;
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(trace);
        } else {
            self.buf[self.next] = trace;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// Traces currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Lifetime count of traces recorded (retained or overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The retained traces, oldest first (allocates; drain-time only).
    pub fn snapshot(&self) -> Vec<QueryTrace> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_spans_in_order() {
        let mut t = QueryTrace::new(7, 3, 1);
        t.plan = "pruned_daat";
        t.wall_ns = 42_000;
        t.push(Phase::QueueWait, 5_000);
        let mut agg = PhaseAgg::new();
        agg.add_ns(Phase::GatePass, 1_000);
        agg.add_ns(Phase::Score, 30_000);
        t.push_phases(&agg);
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].phase, Phase::QueueWait);
        assert_eq!(spans[1].phase, Phase::GatePass);
        assert_eq!(spans[2].phase, Phase::Score);
        let line = t.render();
        assert!(line.contains("pruned_daat"));
        assert!(line.contains("score 30us"));
    }

    #[test]
    fn trace_drops_beyond_capacity() {
        let mut t = QueryTrace::new(0, 0, 0);
        for i in 0..(MAX_SPANS + 3) {
            t.push(Phase::Score, i as u64);
        }
        assert_eq!(t.spans().len(), MAX_SPANS);
        assert_eq!(t.dropped_spans(), 3);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut r = TraceRing::with_capacity(3);
        assert!(r.is_empty());
        for q in 0..5u32 {
            r.record(QueryTrace::new(0, q, 0));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 5);
        let kept: Vec<u32> = r.snapshot().iter().map(|t| t.query).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_ring_discards() {
        let mut r = TraceRing::with_capacity(0);
        r.record(QueryTrace::new(0, 0, 0));
        assert_eq!(r.len(), 0);
        assert_eq!(r.recorded(), 1);
        assert!(r.snapshot().is_empty());
    }
}
