//! Lock-free metric primitives: counters, high-water gauges, and
//! fixed-bucket log₂ latency histograms.
//!
//! All three are fixed blocks of `AtomicU64` with relaxed ordering:
//! recording is a handful of atomic RMW instructions, never a lock or an
//! allocation, so the serving hot path can touch them per query. Reads
//! (snapshots, percentiles) observe each atomic independently — a
//! snapshot taken concurrently with writers is a consistent-enough view
//! for monitoring, not a linearizable cut, which is the standard
//! trade-off for this kind of registry.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`. Wrapping at u64 is accepted (centuries away at any
    /// realistic rate); the saturating discipline matters for the
    /// *usize-typed aggregation* paths, which use `saturating_add`
    /// explicitly.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous level with a lifetime high-water mark.
///
/// `set`/`add`/`sub` maintain the current value; every update also
/// folds into the high-water mark with a `fetch_max`, so the deepest
/// level ever reached survives later drains and resets of the current
/// value. This replaces the ad-hoc high-water tracking that used to
/// live inside the serve crate's `QueueGauge`.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high_water: AtomicU64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the current level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Raise the current level by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        let now = self.value.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        self.high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Lower the current level by `n` (saturating at zero under races:
    /// a drop below zero clamps rather than wrapping to u64::MAX).
    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .value
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Lifetime high-water mark.
    #[inline]
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `b`
/// (1 ≤ b ≤ 64) holds values in `[2^(b-1), 2^b)`. 65 buckets cover the
/// full u64 range, so `record` never clamps.
pub const NUM_BUCKETS: usize = 65;

/// A fixed-bucket log₂ histogram of u64 samples (typically
/// nanoseconds).
///
/// Recording is one `fetch_add` on the bucket plus count/sum updates —
/// no allocation, no lock, no floating point. Percentiles are
/// nearest-rank over the bucket counts and return the *upper bound* of
/// the selected bucket, so a reported p99 is a value ≥ the exact
/// nearest-rank p99 and within 2× of it (one bucket of log₂
/// resolution). The proptest in `tests/histogram_quantiles.rs` pins
/// this against an exact oracle.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// The largest value bucket `b` can hold (its representative: the
    /// value percentiles report).
    #[inline]
    pub fn bucket_upper(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping; meaningful for means at realistic
    /// volumes).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile (`q` in (0, 100]): the upper bound of the
    /// bucket containing the sample of rank `ceil(q/100 × count)`.
    /// `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        self.snapshot().percentile(q)
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], for rendering and
/// percentile queries without re-reading the atomics per rank.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts.
    pub buckets: [u64; NUM_BUCKETS],
    /// Total samples (may drift ±1 from the bucket sum under concurrent
    /// writers; percentiles use the bucket sum).
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank percentile over the snapshot (see
    /// [`Histogram::percentile`]).
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Histogram::bucket_upper(b));
            }
        }
        Some(Histogram::bucket_upper(NUM_BUCKETS - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_level_and_high_water() {
        let g = Gauge::new();
        g.add(3);
        g.add(2);
        assert_eq!(g.get(), 5);
        g.sub(4);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 5);
        g.set(2);
        assert_eq!(g.high_water(), 5);
        g.set(9);
        assert_eq!(g.high_water(), 9);
        // Saturating drop: never wraps.
        g.sub(100);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
        // Every value sits within its bucket's range.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            assert!(v <= Histogram::bucket_upper(Histogram::bucket_of(v)));
        }
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        h.record(10);
        assert_eq!(h.percentile(50.0), Some(Histogram::bucket_upper(4)));
        assert_eq!(h.percentile(99.0), Some(Histogram::bucket_upper(4)));
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1015);
        // rank ceil(0.5*5)=3 → third sample (4) → bucket 3, upper 7.
        assert_eq!(h.percentile(50.0), Some(7));
        // rank ceil(0.99*5)=5 → 1000 → bucket 10, upper 1023.
        assert_eq!(h.percentile(99.0), Some(1023));
    }
}
