//! Query-lifecycle observability for the `moa` engine.
//!
//! Every layer of the engine emits signals — admission sheds, queue
//! depths, per-shard execution counters, planner estimates — and before
//! this crate each layer kept its own ad-hoc bookkeeping. `moa_obs` is
//! the shared substrate: allocation-free primitives the hot path can
//! touch on every query, behind a registry that renders deterministic
//! text and JSON snapshots for experiments and CI gates.
//!
//! Design constraints, in order:
//!
//! 1. **The record path allocates nothing.** Counters, gauges, and
//!    histograms are fixed blocks of atomics; traces are `Copy` structs
//!    written into preallocated ring buffers; the slow-query log only
//!    invokes its entry constructor *after* the admission check passes.
//!    The counting-allocator test in `tests/alloc_telemetry.rs` pins
//!    this.
//! 2. **Readers never stall writers.** Snapshots read the same atomics
//!    with relaxed ordering; registration takes a lock, recording never
//!    does (callers hold `Arc`s to their own metrics).
//! 3. **No dependencies.** The crate sits below every other `moa` crate
//!    and must never create a cycle or drag in a shim.
//!
//! Module map:
//!
//! * [`metrics`] — [`Counter`], [`Gauge`] (with high-water),
//!   [`Histogram`] (fixed log₂ buckets, nearest-rank percentiles).
//! * [`registry`] — [`MetricsRegistry`]: named get-or-register handles,
//!   sorted text/JSON exposition.
//! * [`phase`] — the span vocabulary: [`Phase`] and the plain
//!   per-query aggregate [`PhaseAgg`].
//! * [`trace`] — [`QueryTrace`] (a `Copy` span record) and
//!   [`TraceRing`] (preallocated per-worker ring buffer).
//! * [`events`] — [`EventLog`]: bounded structured event history with
//!   sequence numbers and drop accounting.
//! * [`slowlog`] — [`SlowLog`]: bounded worst-K retention keyed by
//!   latency, lazy entry construction.

#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod phase;
pub mod registry;
pub mod slowlog;
pub mod trace;

pub use events::EventLog;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use phase::{Phase, PhaseAgg};
pub use registry::MetricsRegistry;
pub use slowlog::SlowLog;
pub use trace::{QueryTrace, Span, TraceRing, MAX_SPANS};
