//! The metrics registry: named get-or-register handles and
//! deterministic exposition snapshots.
//!
//! Registration (startup, not the hot path) takes a mutex and may
//! allocate; it hands back an `Arc` to the primitive, and all recording
//! happens through that handle without touching the registry again.
//! Snapshots render metrics sorted by name, so text/JSON output is
//! stable across runs and directly diffable in tests and CI artifacts.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram};

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named collection of metric primitives. Cheap to share via `Arc`;
/// one per serving session (plus one per `Session` for planner
/// telemetry).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MetricsRegistry")
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = g.counters.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        g.counters.insert(name.to_owned(), Arc::clone(&c));
        c
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(x) = g.gauges.get(name) {
            return Arc::clone(x);
        }
        let x = Arc::new(Gauge::new());
        g.gauges.insert(name.to_owned(), Arc::clone(&x));
        x
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(h) = g.histograms.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        g.histograms.insert(name.to_owned(), Arc::clone(&h));
        h
    }

    /// Render every metric as `name kind value` lines, sorted by name
    /// within each kind. Histograms expose count/sum/p50/p95/p99.
    pub fn render_text(&self) -> String {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, c) in &g.counters {
            let _ = writeln!(out, "{name} counter {}", c.get());
        }
        for (name, x) in &g.gauges {
            let _ = writeln!(
                out,
                "{name} gauge {} high_water {}",
                x.get(),
                x.high_water()
            );
        }
        for (name, h) in &g.histograms {
            let s = h.snapshot();
            let _ = writeln!(
                out,
                "{name} histogram count {} sum {} p50 {} p95 {} p99 {}",
                s.count,
                s.sum,
                s.percentile(50.0).unwrap_or(0),
                s.percentile(95.0).unwrap_or(0),
                s.percentile(99.0).unwrap_or(0),
            );
        }
        out
    }

    /// Render every metric as one JSON object, keys sorted within each
    /// kind (hand-rolled like the experiment emitters; no serializer
    /// dependency).
    pub fn render_json(&self) -> String {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::from("{\n");
        out.push_str("  \"counters\": {");
        for (i, (name, c)) in g.counters.iter().enumerate() {
            let comma = if i + 1 < g.counters.len() { "," } else { "" };
            let _ = write!(out, "\n    \"{name}\": {}{comma}", c.get());
        }
        out.push_str(if g.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"gauges\": {");
        for (i, (name, x)) in g.gauges.iter().enumerate() {
            let comma = if i + 1 < g.gauges.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    \"{name}\": {{\"value\": {}, \"high_water\": {}}}{comma}",
                x.get(),
                x.high_water()
            );
        }
        out.push_str(if g.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in g.histograms.iter().enumerate() {
            let comma = if i + 1 < g.histograms.len() { "," } else { "" };
            let s = h.snapshot();
            let _ = write!(
                out,
                "\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}}}{comma}",
                s.count,
                s.sum,
                s.percentile(50.0).unwrap_or(0),
                s.percentile(95.0).unwrap_or(0),
                s.percentile(99.0).unwrap_or(0),
            );
        }
        out.push_str(if g.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_handle() {
        let r = MetricsRegistry::new();
        let a = r.counter("serve.queries");
        let b = r.counter("serve.queries");
        a.add(3);
        assert_eq!(b.get(), 3);
        let g1 = r.gauge("depth");
        let g2 = r.gauge("depth");
        g1.set(9);
        assert_eq!(g2.high_water(), 9);
        let h1 = r.histogram("lat");
        let h2 = r.histogram("lat");
        h1.record(100);
        assert_eq!(h2.count(), 1);
    }

    #[test]
    fn text_exposition_is_sorted_and_complete() {
        let r = MetricsRegistry::new();
        r.counter("b.second").incr();
        r.counter("a.first").add(2);
        r.gauge("queue").set(4);
        r.histogram("lat").record(1000);
        let text = r.render_text();
        let a = text.find("a.first counter 2").expect("counter a");
        let b = text.find("b.second counter 1").expect("counter b");
        assert!(a < b, "counters sorted by name");
        assert!(text.contains("queue gauge 4 high_water 4"));
        assert!(text.contains("lat histogram count 1 sum 1000"));
    }

    #[test]
    fn json_exposition_is_balanced() {
        let r = MetricsRegistry::new();
        let json = r.render_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        r.counter("c").incr();
        r.gauge("g").set(1);
        r.histogram("h").record(5);
        let json = r.render_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"c\": 1"));
        assert!(json.contains("\"high_water\": 1"));
        assert!(json.contains("\"count\": 1"));
    }
}
