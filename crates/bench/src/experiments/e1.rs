//! E1 — the unsafe fragmentation trade-off (paper §3 Step 1).
//!
//! Claim under test: *"By processing only a small portion of the data …
//! containing the 95% most interesting terms, I was able to speed up query
//! processing on the FT collection of TREC with at least 60%. The answer
//! quality dropped more than 30% due to the unsafe nature of this
//! technique."*
//!
//! Fragment A holds the 95% rarest observed terms. We report, for the
//! unfragmented baseline and the fragment-A-only strategy: postings volume
//! scanned, batch wall time, MAP against the synthetic qrels, and top-20
//! overlap with the baseline ranking.

use moa_ir::{FragmentSpec, Strategy, SwitchPolicy};

use crate::experiments::fixture::RetrievalFixture;
use crate::harness::{fmt_duration, Scale, Table};

/// Run E1.
pub fn run(scale: Scale) -> Table {
    let f = RetrievalFixture::build(scale);
    let frag = f.fragment(FragmentSpec::TermFraction(0.95));
    let policy = SwitchPolicy::default();

    let full = f.run_strategy(&frag, Strategy::FullScan, policy);
    let a_only = f.run_strategy(&frag, Strategy::AOnly { use_a_index: false }, policy);

    let map_full = f.map(&full);
    let map_a = f.map(&a_only);
    let overlap = f.mean_overlap(&full, &a_only, 20);

    let mut t = Table::new(
        "E1: unsafe fragmentation — speed vs quality (fragment A = 95% rarest terms)",
        &[
            "strategy",
            "postings scanned",
            "batch time",
            "MAP",
            "overlap@20 vs full",
        ],
    );
    t.row(vec![
        "full scan (unoptimized)".into(),
        full.postings_scanned.to_string(),
        fmt_duration(full.elapsed),
        format!("{map_full:.4}"),
        "1.000".into(),
    ]);
    t.row(vec![
        "fragment A only (unsafe)".into(),
        a_only.postings_scanned.to_string(),
        fmt_duration(a_only.elapsed),
        format!("{map_a:.4}"),
        format!("{overlap:.3}"),
    ]);

    let vol_frac = frag.volume_fraction_a();
    let speedup = 100.0 * (1.0 - a_only.elapsed.as_secs_f64() / full.elapsed.as_secs_f64());
    let work_reduction =
        100.0 * (1.0 - a_only.postings_scanned as f64 / full.postings_scanned as f64);
    let quality_drop = if map_full > 0.0 {
        100.0 * (1.0 - map_a / map_full)
    } else {
        0.0
    };
    t.note(format!(
        "fragment A: {:.1}% of observed terms, {:.1}% of postings volume (paper: 95% of terms ≈ 5% of volume on 210k-doc FT; the df ceiling at this scale compresses the head — see E9)",
        100.0 * frag.term_fraction_a(),
        100.0 * vol_frac,
    ));
    t.note(format!(
        "claim 'speed up … with at least 60%': measured speedup {speedup:.1}% wall / {work_reduction:.1}% postings — {}",
        if speedup >= 60.0 || work_reduction >= 60.0 { "HOLDS" } else { "DOES NOT HOLD" }
    ));
    t.note(format!(
        "claim 'quality dropped more than 30%': MAP drop {quality_drop:.1}% — {}",
        if quality_drop > 30.0 {
            "HOLDS"
        } else {
            "WEAKER at this scale"
        }
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_quick_reproduces_claim_shape() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 2);
        // Fragment A scans far less than full.
        let full: f64 = t.rows[0][1].parse().unwrap();
        let aonly: f64 = t.rows[1][1].parse().unwrap();
        assert!(aonly < full * 0.45, "A-only {aonly} vs full {full}");
        // Quality degrades (MAP strictly lower).
        let map_full: f64 = t.rows[0][3].parse().unwrap();
        let map_a: f64 = t.rows[1][3].parse().unwrap();
        assert!(map_a <= map_full);
    }
}
