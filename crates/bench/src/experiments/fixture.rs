//! Shared retrieval fixture for the fragmentation experiments (E1–E3, E10).

use std::sync::Arc;
use std::time::Duration;

use moa_corpus::{
    generate_qrels, generate_queries, Collection, CollectionConfig, Qrels, QrelsConfig, Query,
    QueryConfig,
};
use moa_ir::{
    average_precision, mean_of, overlap_at, FragSearcher, FragmentSpec, FragmentedIndex,
    InvertedIndex, RankingModel, Strategy, SwitchPolicy,
};

use crate::harness::Scale;

/// Ranking depth used for effectiveness metrics.
pub const METRIC_DEPTH: usize = 1_000;

/// A generated collection with queries, qrels, and the shared index.
pub struct RetrievalFixture {
    /// The synthetic collection.
    pub collection: Collection,
    /// The unfragmented inverted index.
    pub index: Arc<InvertedIndex>,
    /// The query workload.
    pub queries: Vec<Query>,
    /// Synthetic relevance judgments.
    pub qrels: Qrels,
    /// The ranking model all runs share.
    pub model: RankingModel,
}

/// Outcome of running a strategy over the whole workload.
pub struct StrategyOutcome {
    /// Per-query document rankings (truncated to [`METRIC_DEPTH`]).
    pub rankings: Vec<(u32, Vec<u32>)>,
    /// Total postings scanned over all queries.
    pub postings_scanned: usize,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
    /// Number of queries for which fragment B was consulted.
    pub used_b: usize,
}

impl RetrievalFixture {
    /// Build the fixture at the given scale (deterministic).
    pub fn build(scale: Scale) -> RetrievalFixture {
        let config = match scale {
            Scale::Quick => CollectionConfig::small(),
            Scale::Full => CollectionConfig::ft_scale(),
        };
        let collection = Collection::generate(config).expect("valid preset");
        let queries = generate_queries(
            &collection,
            &QueryConfig {
                num_queries: match scale {
                    Scale::Quick => 30,
                    Scale::Full => 50,
                },
                ..QueryConfig::default()
            },
        )
        .expect("valid workload config");
        let qrels =
            generate_qrels(&collection, &queries, &QrelsConfig::topical()).expect("valid qrels");
        let index = Arc::new(InvertedIndex::from_collection(&collection));
        RetrievalFixture {
            collection,
            index,
            queries,
            qrels,
            model: RankingModel::default(),
        }
    }

    /// Fragment the fixture's index.
    pub fn fragment(&self, spec: FragmentSpec) -> Arc<FragmentedIndex> {
        Arc::new(FragmentedIndex::build(Arc::clone(&self.index), spec).expect("non-empty index"))
    }

    /// Run the whole workload under one strategy, measuring work and time.
    pub fn run_strategy(
        &self,
        frag: &Arc<FragmentedIndex>,
        strategy: Strategy,
        policy: SwitchPolicy,
    ) -> StrategyOutcome {
        let mut searcher = FragSearcher::new(Arc::clone(frag), self.model, policy);
        let t0 = std::time::Instant::now();
        let mut rankings = Vec::with_capacity(self.queries.len());
        let mut scanned = 0usize;
        let mut used_b = 0usize;
        for q in &self.queries {
            let rep = searcher
                .search(&q.terms, METRIC_DEPTH, strategy)
                .expect("valid query terms");
            scanned += rep.postings_scanned;
            if rep.used_b {
                used_b += 1;
            }
            rankings.push((q.id, rep.top.iter().map(|&(d, _)| d).collect()));
        }
        StrategyOutcome {
            rankings,
            postings_scanned: scanned,
            elapsed: t0.elapsed(),
            used_b,
        }
    }

    /// Mean average precision of an outcome against the qrels (queries with
    /// no judged-relevant documents are skipped, TREC-style).
    pub fn map(&self, outcome: &StrategyOutcome) -> f64 {
        mean_of(outcome.rankings.iter().map(|(qid, ranking)| {
            let rel = self.qrels.relevant(*qid);
            if rel.is_empty() {
                None
            } else {
                average_precision(ranking, rel)
            }
        }))
        .unwrap_or(0.0)
    }

    /// Mean overlap@k of an outcome against a reference outcome.
    pub fn mean_overlap(
        &self,
        reference: &StrategyOutcome,
        other: &StrategyOutcome,
        k: usize,
    ) -> f64 {
        mean_of(
            reference
                .rankings
                .iter()
                .zip(&other.rankings)
                .map(|((qa, ra), (qb, rb))| {
                    assert_eq!(qa, qb);
                    overlap_at(ra, rb, k)
                }),
        )
        .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic_and_consistent() {
        let f1 = RetrievalFixture::build(Scale::Quick);
        let f2 = RetrievalFixture::build(Scale::Quick);
        assert_eq!(f1.queries, f2.queries);
        assert_eq!(f1.collection.num_postings(), f2.collection.num_postings());
        assert!(!f1.queries.is_empty());
    }

    #[test]
    fn full_scan_is_reference_quality() {
        let f = RetrievalFixture::build(Scale::Quick);
        let frag = f.fragment(FragmentSpec::TermFraction(0.95));
        let full = f.run_strategy(&frag, Strategy::FullScan, SwitchPolicy::default());
        let a_only = f.run_strategy(
            &frag,
            Strategy::AOnly { use_a_index: false },
            SwitchPolicy::default(),
        );
        // A-only scans strictly less and can never beat full-scan overlap
        // with itself.
        assert!(a_only.postings_scanned < full.postings_scanned);
        let self_overlap = f.mean_overlap(&full, &full, 20);
        assert!((self_overlap - 1.0).abs() < 1e-9);
        let degraded = f.mean_overlap(&full, &a_only, 20);
        assert!(degraded <= 1.0);
    }
}
