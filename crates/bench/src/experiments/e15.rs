//! E15 — the cost-driven physical planner vs best-in-hindsight.
//!
//! The paper's Step 3 proposes one *centralized* cost model that picks the
//! execution strategy. This experiment measures how well the
//! `moa_core::planner` does exactly that: per seeded query it prices every
//! physical alternative, executes the winner, **and** executes every other
//! exact alternative to establish the best-in-hindsight strategy by
//! postings scanned. The planner's pick is a *match* when its measured
//! work equals the hindsight optimum; the regression column shows how much
//! work the planner's choices cost over an oracle that always knew best.
//!
//! Executions feed their measured [`ExecReport`] counters back into the
//! planner (calibration), so the match rate reflects the closed loop the
//! architecture ships with.
//!
//! Besides the rendered table, the run emits `BENCH_planner.json` and
//! *enforces* the acceptance gate: ≥ 80% match rate per query mix and
//! ≤ 20% postings-scanned regression vs best-in-hindsight — a CI failure
//! otherwise.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use moa_core::Planner;
use moa_corpus::{generate_queries, Collection, CollectionConfig, DfBias, Query, QueryConfig};
use moa_ir::{
    EngineSet, ExecReport, FragmentSpec, FragmentedIndex, InvertedIndex, PhysicalPlan,
    RankingModel, SwitchPolicy,
};

use crate::harness::{Scale, Table};

/// Ranking depth (the paper's first-screen regime, where strategies differ
/// most).
const TOP_N: usize = 10;

/// Acceptance gate: minimum fraction of queries whose planner pick matches
/// the best-in-hindsight postings-scanned.
const MIN_MATCH_RATE: f64 = 0.8;

/// Acceptance gate: maximum total postings-scanned regression of the
/// planner's picks vs best-in-hindsight.
const MAX_REGRESSION: f64 = 0.2;

/// Outcome of one query mix.
pub struct MixResult {
    /// Query-mix label.
    pub mix: &'static str,
    /// Queries measured.
    pub queries: usize,
    /// Queries where the pick's measured postings equal the hindsight
    /// optimum.
    pub matches: usize,
    /// Total postings scanned by the planner's picks.
    pub chosen_postings: usize,
    /// Total postings scanned by the per-query best-in-hindsight plans.
    pub best_postings: usize,
    /// Histogram of chosen operators.
    pub picks: BTreeMap<&'static str, usize>,
    /// Total wall time spent executing the planner's picks.
    pub chosen_wall: Duration,
    /// Total execution wall time per strategy over the whole mix (every
    /// exact, feasible alternative runs for the hindsight oracle, so the
    /// bench trajectory tracks latency alongside the postings counters).
    pub strategy_wall: BTreeMap<&'static str, Duration>,
    /// The calibrated pruned-DAAT weight after the mix's workload.
    pub calibrated_prune: f64,
}

impl MixResult {
    /// Fraction of queries whose pick matched best-in-hindsight.
    pub fn match_rate(&self) -> f64 {
        self.matches as f64 / self.queries.max(1) as f64
    }

    /// Relative extra work of the picks vs best-in-hindsight (0.0 = none).
    pub fn regression(&self) -> f64 {
        self.chosen_postings as f64 / self.best_postings.max(1) as f64 - 1.0
    }
}

fn query_mixes() -> Vec<(&'static str, DfBias)> {
    vec![
        ("topical", DfBias::Topical { high_df_mix: 0.5 }),
        ("trec_like", DfBias::TrecLike { high_df_mix: 0.5 }),
        ("frequent_only", DfBias::FrequentOnly),
    ]
}

/// Run the measurement matrix over every query mix.
pub fn measure(scale: Scale) -> Vec<MixResult> {
    let config = match scale {
        Scale::Quick => CollectionConfig::small(),
        Scale::Full => CollectionConfig::ft_scale(),
    };
    let collection = Collection::generate(config).expect("valid preset");
    let index = Arc::new(InvertedIndex::from_collection(&collection));
    let mut frag = FragmentedIndex::build(Arc::clone(&index), FragmentSpec::TermFraction(0.95))
        .expect("non-empty collection");
    frag.fragment_a_mut()
        .build_sparse_index(1024)
        .expect("sorted");
    frag.fragment_b_mut()
        .build_sparse_index(1024)
        .expect("sorted");
    let frag = Arc::new(frag);
    let model = RankingModel::default();
    let policy = SwitchPolicy::default();
    let num_queries = match scale {
        Scale::Quick => 30,
        Scale::Full => 50,
    };

    let mut results = Vec::new();
    for (mix_label, bias) in query_mixes() {
        let queries: Vec<Query> = generate_queries(
            &collection,
            &QueryConfig {
                num_queries,
                bias,
                seed: 0xE15,
                ..QueryConfig::default()
            },
        )
        .expect("valid workload config");

        let mut planner = Planner::default();
        let mut engines = EngineSet::new(Arc::clone(&frag), model, policy);
        // Warm the engine set's lazily built ScoreBounds tables (shared
        // by the pruned-DAAT and fragmented paths) before any timed
        // window: the one-time build must not be billed to whichever
        // strategy happens to run first.
        let _ = engines
            .execute(PhysicalPlan::PrunedDaat, &queries[0].terms, TOP_N)
            .expect("valid query");
        let mut matches = 0usize;
        let mut chosen_postings = 0usize;
        let mut best_postings = 0usize;
        let mut picks: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut chosen_wall = Duration::ZERO;
        let mut strategy_wall: BTreeMap<&'static str, Duration> = BTreeMap::new();

        for q in &queries {
            let decision = planner
                .plan(&q.terms, TOP_N, &frag, model, policy)
                .expect("valid query");

            // Execute every exact, feasible alternative: the hindsight
            // oracle. All of them must return the identical top-N — the
            // planner may only ever trade work, never answers.
            let mut measured: Vec<(PhysicalPlan, ExecReport)> = Vec::new();
            for alt in &decision.alternatives {
                if alt.exact && alt.feasible {
                    let t0 = Instant::now();
                    let rep = engines
                        .execute(alt.plan, &q.terms, TOP_N)
                        .expect("valid query");
                    let wall = t0.elapsed();
                    *strategy_wall
                        .entry(alt.plan.name())
                        .or_insert(Duration::ZERO) += wall;
                    if alt.plan == decision.chosen {
                        chosen_wall += wall;
                    }
                    measured.push((alt.plan, rep));
                }
            }
            for w in measured.windows(2) {
                assert_eq!(
                    w[0].1.top,
                    w[1].1.top,
                    "{mix_label}: exact plans disagree ({} vs {}) on {:?}",
                    w[0].0.name(),
                    w[1].0.name(),
                    q.terms
                );
            }

            let chosen = measured
                .iter()
                .find(|(p, _)| *p == decision.chosen)
                .expect("chosen plan is exact and feasible in exact mode");
            let best = measured
                .iter()
                .map(|(_, r)| r.postings_scanned)
                .min()
                .expect("at least one exact plan");
            chosen_postings += chosen.1.postings_scanned;
            best_postings += best;
            if chosen.1.postings_scanned == best {
                matches += 1;
            }
            *picks.entry(decision.chosen.name()).or_insert(0) += 1;

            // Close the loop: calibrate from the executed pick.
            planner.observe(decision.chosen, &decision.profile, &chosen.1);
        }

        results.push(MixResult {
            mix: mix_label,
            queries: queries.len(),
            matches,
            chosen_postings,
            best_postings,
            picks,
            chosen_wall,
            strategy_wall,
            calibrated_prune: planner.model.weights.daat_prune,
        });
    }
    results
}

/// Render the results as machine-readable JSON.
pub fn to_json(scale: Scale, results: &[MixResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"e15\",");
    let _ = writeln!(out, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(out, "  \"top_n\": {TOP_N},");
    let _ = writeln!(out, "  \"mixes\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let picks: Vec<String> = r
            .picks
            .iter()
            .map(|(name, count)| format!("\"{name}\": {count}"))
            .collect();
        let walls: Vec<String> = r
            .strategy_wall
            .iter()
            .map(|(name, wall)| format!("\"{name}\": {}", wall.as_micros()))
            .collect();
        let _ = writeln!(
            out,
            "    {{\"mix\": \"{}\", \"queries\": {}, \"matches\": {}, \
             \"match_rate\": {:.3}, \"chosen_postings\": {}, \"best_postings\": {}, \
             \"regression\": {:.4}, \"calibrated_prune\": {:.4}, \
             \"chosen_wall_us\": {}, \"strategy_wall_us\": {{{}}}, \
             \"picks\": {{{}}}}}{comma}",
            r.mix,
            r.queries,
            r.matches,
            r.match_rate(),
            r.chosen_postings,
            r.best_postings,
            r.regression(),
            r.calibrated_prune,
            r.chosen_wall.as_micros(),
            walls.join(", "),
            picks.join(", "),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run E15, emit `BENCH_planner.json`, and enforce the acceptance gate.
pub fn run(scale: Scale) -> Table {
    let results = measure(scale);

    let json = to_json(scale, &results);
    let json_path =
        std::env::var("MOA_BENCH_PLANNER_JSON").unwrap_or_else(|_| "BENCH_planner.json".to_owned());
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("e15: could not write {json_path}: {e}");
    }

    let mut t = Table::new(
        "E15: cost-driven planner pick vs best-in-hindsight (postings scanned)",
        &[
            "query mix",
            "queries",
            "match rate",
            "postings (planner)",
            "postings (hindsight)",
            "regression",
            "wall (planner)",
            "picks",
        ],
    );
    for r in &results {
        let picks: Vec<String> = r
            .picks
            .iter()
            .map(|(name, count)| format!("{name}x{count}"))
            .collect();
        t.row(vec![
            r.mix.into(),
            r.queries.to_string(),
            format!("{:.0}%", r.match_rate() * 100.0),
            r.chosen_postings.to_string(),
            r.best_postings.to_string(),
            format!("{:+.1}%", r.regression() * 100.0),
            crate::harness::fmt_duration(r.chosen_wall),
            picks.join(" "),
        ]);
    }
    t.note(format!(
        "gate: match rate >= {:.0}% and regression <= {:.0}% per mix (enforced: the run fails otherwise)",
        MIN_MATCH_RATE * 100.0,
        MAX_REGRESSION * 100.0
    ));
    t.note("every exact alternative executed per query; all verified to return the identical top-N before work is compared");
    t.note("per-strategy execution wall time recorded alongside the postings counters (strategy_wall_us in the JSON)");
    t.note(format!("machine-readable copy written to {json_path}"));

    // The acceptance gate doubles as the CI regression check.
    for r in &results {
        assert!(
            r.match_rate() >= MIN_MATCH_RATE,
            "e15 gate: {} match rate {:.2} below {MIN_MATCH_RATE}",
            r.mix,
            r.match_rate()
        );
        assert!(
            r.regression() <= MAX_REGRESSION,
            "e15 gate: {} regression {:.2} above {MAX_REGRESSION}",
            r.mix,
            r.regression()
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_planner_matches_best_in_hindsight() {
        let results = measure(Scale::Quick);
        assert_eq!(results.len(), 3, "three query mixes");
        for r in &results {
            assert!(
                r.match_rate() >= MIN_MATCH_RATE,
                "{}: match rate {:.2} below the {MIN_MATCH_RATE} acceptance bar",
                r.mix,
                r.match_rate()
            );
            assert!(
                r.regression() <= MAX_REGRESSION,
                "{}: planner regressed {:.1}% postings-scanned vs best-in-hindsight",
                r.mix,
                r.regression() * 100.0
            );
            assert!(r.chosen_postings >= r.best_postings);
            assert!(!r.picks.is_empty());
        }
    }

    #[test]
    fn e15_json_is_well_formed() {
        let results = measure(Scale::Quick);
        let json = to_json(Scale::Quick, &results);
        assert!(json.contains("\"experiment\": \"e15\""));
        assert_eq!(json.matches("{\"mix\"").count(), results.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
