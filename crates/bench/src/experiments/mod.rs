//! Experiment implementations E1–E10.
//!
//! | id  | paper anchor                                                | module |
//! |-----|-------------------------------------------------------------|--------|
//! | E1  | §3 Step 1: 5%-fragment speedup ≥60%, quality drop >30%      | [`e1`] |
//! | E2  | §3 Step 1: early check + switch restores quality            | [`e2`] |
//! | E3  | §3 Step 1: non-dense index on the large fragment            | [`e3`] |
//! | E4  | §3 Step 2, Example 1: inter-object rewrite                  | [`e4`] |
//! | E5  | §2: FA/TA/NRA bound administration vs naive                 | [`e5`] |
//! | E6  | §2 \[CK98\]: STOP AFTER policies and braking distance         | [`e6`] |
//! | E7  | §2 \[DR99\]: probabilistic top-N confidence sweep             | [`e7`] |
//! | E8  | §3 Step 3: cost-model accuracy and plan choice              | [`e8`] |
//! | E9  | §1/§3: Zipf premise and fragment geometry                   | [`e9`] |
//! | E10 | §3 Step 1 design space: fragment volume sweep               | [`e10`]|
//! | E11 | ablation: switch-policy threshold sweep                     | [`e11`]|
//! | E12 | ablation: ranking-model sensitivity                         | [`e12`]|
//! | E13 | §3 Step 1: set-based vs element-at-a-time architectures     | [`e13`]|
//! | E14 | §2/§3: bounds-pruned DAAT (MaxScore) vs exhaustive merge    | [`e14`]|
//! | E15 | §3 Step 3: cost-driven planner vs best-in-hindsight         | [`e15`]|
//! | E16 | serving: sharded scaling + cross-shard threshold propagation| [`e16`]|
//! | E17 | storage: block-compressed postings — decode + wall time     | [`e17`]|
//! | E18 | serving: sustained-load throughput/latency, pool vs scoped  | [`e18`]|
//! | E19 | serving: overload shedding, deadlines, worker fault storm   | [`e19`]|
//! | E20 | observability: telemetry overhead, instrumented vs not      | [`e20`]|
//! | E21 | serving: cross-batch result cache + plan memo under Zipf    | [`e21`]|

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e17;
pub mod e18;
pub mod e19;
pub mod e2;
pub mod e20;
pub mod e21;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;
pub mod fixture;

use crate::harness::{Scale, Table};

/// Run one experiment by id ("e1" … "e20"), or all of them.
pub fn run(id: &str, scale: Scale) -> Vec<Table> {
    match id {
        "e1" => vec![e1::run(scale)],
        "e2" => vec![e2::run(scale)],
        "e3" => vec![e3::run(scale)],
        "e4" => vec![e4::run(scale)],
        "e5" => vec![e5::run(scale)],
        "e6" => vec![e6::run(scale)],
        "e7" => vec![e7::run(scale)],
        "e8" => vec![e8::run(scale)],
        "e9" => vec![e9::run(scale)],
        "e10" => vec![e10::run(scale)],
        "e11" => vec![e11::run(scale)],
        "e12" => vec![e12::run(scale)],
        "e13" => vec![e13::run(scale)],
        "e14" => vec![e14::run(scale)],
        "e15" => vec![e15::run(scale)],
        "e16" => vec![e16::run(scale)],
        "e17" => vec![e17::run(scale)],
        "e18" => vec![e18::run(scale)],
        "e19" => vec![e19::run(scale)],
        "e20" => vec![e20::run(scale)],
        "e21" => vec![e21::run(scale)],
        "all" => {
            let ids = [
                "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
                "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e21",
            ];
            ids.iter().flat_map(|i| run(i, scale)).collect()
        }
        other => vec![{
            let mut t = Table::new("unknown experiment", &["id"]);
            t.row(vec![other.to_owned()]);
            t.note("known ids: e1..e21, all");
            t
        }],
    }
}
