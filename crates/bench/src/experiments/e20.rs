//! E20 — telemetry overhead: instrumented vs uninstrumented serving.
//!
//! Observability is only free if measured to be. The pool's registry
//! counters and latency histograms are always live; what
//! `ServeConfig::telemetry` adds per query is the trace capture — a
//! `QueryTrace` written into the worker's preallocated ring — plus a
//! slow-log offer (a comparison against the current worst-K floor, with
//! entry construction deferred until a query actually beats it). All of
//! it is designed to stay off the allocator on the steady-state path
//! (pinned by `alloc_telemetry.rs` / `alloc_steady_state.rs`); this
//! experiment prices it end to end.
//!
//! The same open-loop Zipf replay harness as E18 (arrivals due at
//! `i / offered_qps` regardless of server progress, admission batches
//! capped at [`MAX_BATCH`], offered load calibrated to [`OVERLOAD`] ×
//! measured single-thread capacity) drives two otherwise identical pool
//! sessions at every shard count: telemetry **on** (traces + slow log
//! captured) and telemetry **off** (registry metrics only). Each cell
//! reports its best replay of [`REPLAYS`].
//!
//! Gates (enforced here and by CI's E20 smoke):
//!
//! * **overhead** — instrumented throughput ≥ [`OVERHEAD_BOUND`] × the
//!   uninstrumented figure at every shard count;
//! * **transparency** — answers with telemetry on are bit-identical to
//!   answers with telemetry off, query by query;
//! * **capture** — the instrumented session actually retained traces,
//!   its slow log stayed within its configured bound and drains
//!   worst-first, and the registry's lifecycle counters reconcile with
//!   the driven stream.
//!
//! The committed figures live in `BENCH_obs.json`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use moa_corpus::{
    generate_query_stream, Collection, CollectionConfig, DfBias, QueryConfig, StreamConfig,
};
use moa_ir::InvertedIndex;
use moa_serve::{BatchQuery, ServeConfig, ServeSession};

use crate::harness::{fmt_duration, Percentiles, Scale, Table};

/// Ranking depth (matches the E18 serving posture).
const TOP_N: usize = 100;

/// Shard counts swept: the single-worker pool and the parallel
/// configuration the serving experiments center on.
const SHARD_COUNTS: [usize; 2] = [2, 4];

/// Admission batch cap (same knob, same honesty argument as E18).
const MAX_BATCH: usize = 32;

/// Offered load as a multiple of measured single-thread capacity — above
/// 1 so both sessions face real queueing and the trace ring sees
/// steady-state pressure, not idle trickle.
const OVERLOAD: f64 = 1.5;

/// Replays per cell; the best replay is reported.
const REPLAYS: usize = 5;

/// The overhead gate: instrumented qps must stay at or above this
/// fraction of the uninstrumented figure. The bound is deliberately
/// loose for shared-host noise — steady-state capture is a ring-slot
/// write and a slow-log floor comparison, nowhere near 15% of a query.
pub const OVERHEAD_BOUND: f64 = 0.85;

/// One telemetry mode × shard count measurement (its best replay).
pub struct ObsResult {
    /// Shard count.
    pub shards: usize,
    /// Whether trace/slow-log capture was enabled.
    pub telemetry: bool,
    /// Offered arrival rate (queries/sec).
    pub offered_qps: f64,
    /// Achieved completion rate (queries/sec).
    pub achieved_qps: f64,
    /// Arrival-to-merge latency percentiles.
    pub latency: Percentiles,
    /// Queries in the stream.
    pub queries: usize,
    /// Query traces retained in the rings after the final replay
    /// (0 with telemetry off).
    pub traces: usize,
    /// Slow-log entries retained after the final replay (0 with
    /// telemetry off).
    pub slow: usize,
}

/// What one replay of the stream measured.
struct Replay {
    achieved_qps: f64,
    latency: Percentiles,
}

/// Drive one open-loop replay against a pool session, pipelined exactly
/// as E18 drives its pool runtime: admit the next batch before
/// collecting the previous.
fn drive(session: &mut ServeSession, stream: &[BatchQuery], offered_qps: f64) -> Replay {
    let t0 = Instant::now();
    let arrival = |i: usize| t0 + Duration::from_secs_f64(i as f64 / offered_qps);
    let mut latencies: Vec<Duration> = Vec::with_capacity(stream.len());
    let mut in_flight = None;
    let mut last_done = t0;
    let mut next = 0usize;
    while next < stream.len() {
        while Instant::now() < arrival(next) {
            std::hint::spin_loop();
        }
        let now = Instant::now();
        let mut end = next + 1;
        while end < stream.len() && end - next < MAX_BATCH && arrival(end) <= now {
            end += 1;
        }
        let pending = session
            .enqueue(&stream[next..end])
            .expect("blocking admission never sheds");
        if let Some((prev, from, to)) = in_flight.take() {
            let _ = session.collect(prev);
            let done = Instant::now();
            for i in from..to {
                latencies.push(done.saturating_duration_since(arrival(i)));
            }
            last_done = done;
        }
        in_flight = Some((pending, next, end));
        next = end;
    }
    if let Some((prev, from, to)) = in_flight.take() {
        let _ = session.collect(prev);
        let done = Instant::now();
        for i in from..to {
            latencies.push(done.saturating_duration_since(arrival(i)));
        }
        last_done = done;
    }
    let elapsed = last_done.saturating_duration_since(t0);
    Replay {
        achieved_qps: stream.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: Percentiles::of(&mut latencies).expect("non-empty stream"),
    }
}

fn stream_config(scale: Scale) -> StreamConfig {
    let (pool_size, length) = match scale {
        Scale::Quick => (30, 240),
        Scale::Full => (40, 480),
    };
    StreamConfig {
        pool: QueryConfig {
            num_queries: pool_size,
            bias: DfBias::FrequentOnly,
            seed: 0xE20,
            ..QueryConfig::default()
        },
        length,
        exponent: 1.0,
        seed: 0x0B5,
    }
}

fn session(index: &Arc<InvertedIndex>, shards: usize, telemetry: bool) -> ServeSession {
    let config = ServeConfig {
        telemetry,
        ..ServeConfig::planned(shards)
    };
    ServeSession::new(Arc::clone(index), config).expect("collection shards cleanly")
}

/// The transparency oracle: the same query stream through an
/// instrumented and an uninstrumented session yields bit-identical
/// rankings, query by query. Panics on the first divergence.
pub fn assert_identical_answers(index: &Arc<InvertedIndex>, stream: &[BatchQuery], shards: usize) {
    let mut on = session(index, shards, true);
    let mut off = session(index, shards, false);
    for chunk in stream.chunks(MAX_BATCH) {
        let ron = on.submit_many(chunk).expect("admission never sheds");
        let roff = off.submit_many(chunk).expect("admission never sheds");
        for (i, (a, b)) in ron.responses.iter().zip(&roff.responses).enumerate() {
            let (a, b) = (a.as_ref().expect("in-vocab"), b.as_ref().expect("in-vocab"));
            assert_eq!(
                a.top, b.top,
                "telemetry changed the answer for query {i} at {shards} shard(s)"
            );
        }
    }
}

/// Sanity-check the instrumented session's captured telemetry after a
/// driven stream: bounded worst-first slow log, retained traces, and
/// registry counters that reconcile with what was driven.
fn check_capture(session: &ServeSession, config_slow: usize) -> (usize, usize) {
    let traces = session.traces();
    assert!(
        !traces.is_empty(),
        "instrumented session retained no traces"
    );
    for t in &traces {
        assert!(t.wall_ns > 0, "trace without a wall clock");
        assert!(!t.spans().is_empty(), "trace without spans");
    }
    let slow = session.drain_slow_queries();
    assert!(
        slow.len() <= config_slow,
        "slow log exceeded its bound: {} > {config_slow}",
        slow.len()
    );
    assert!(
        slow.windows(2).all(|w| w[0].wall >= w[1].wall),
        "slow log must drain worst-first"
    );
    let text = session.metrics_text();
    for needle in [
        "serve.batches",
        "serve.queries_admitted",
        "serve.shard_queries",
        "serve.query_ns",
        "serve.queue_wait_ns",
    ] {
        assert!(text.contains(needle), "registry missing {needle}:\n{text}");
    }
    (traces.len(), slow.len())
}

/// Run the overhead sweep: calibrate offered load once, then measure
/// telemetry off and on at every shard count under the identical stream
/// and arrival schedule.
pub fn measure(scale: Scale) -> Vec<ObsResult> {
    let config = match scale {
        Scale::Quick => CollectionConfig::small(),
        Scale::Full => CollectionConfig::ft_scale(),
    };
    let collection = Collection::generate(config).expect("valid preset");
    let index = Arc::new(InvertedIndex::from_collection(&collection));
    let stream: Vec<BatchQuery> = generate_query_stream(&collection, &stream_config(scale))
        .expect("valid stream config")
        .into_iter()
        .map(|q| BatchQuery {
            terms: q.terms,
            n: TOP_N,
        })
        .collect();

    // Calibration: uninstrumented single-worker capacity on the batched
    // sequential path, after a warm-up pass. Both telemetry modes face
    // the same offered rate so the figures are comparable.
    let mut calib = session(&index, 1, false);
    for chunk in stream.chunks(MAX_BATCH) {
        let _ = calib.submit_many_sequential(chunk);
    }
    let t0 = Instant::now();
    for chunk in stream.chunks(MAX_BATCH) {
        let _ = calib.submit_many_sequential(chunk);
    }
    let capacity = stream.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    let offered_qps = OVERLOAD * capacity;

    let mut results = Vec::new();
    for &shards in &SHARD_COUNTS {
        for telemetry in [false, true] {
            let mut s = session(&index, shards, telemetry);
            let slow_cap = s.config().slow_log;
            let _ = drive(&mut s, &stream, offered_qps); // warm-up
            let mut best: Option<Replay> = None;
            for _ in 0..REPLAYS {
                let replay = drive(&mut s, &stream, offered_qps);
                if best
                    .as_ref()
                    .is_none_or(|b| replay.achieved_qps > b.achieved_qps)
                {
                    best = Some(replay);
                }
            }
            let best = best.expect("at least one replay");
            let (traces, slow) = if telemetry {
                check_capture(&s, slow_cap)
            } else {
                assert!(s.traces().is_empty(), "telemetry off must capture nothing");
                assert!(s.drain_slow_queries().is_empty());
                (0, 0)
            };
            results.push(ObsResult {
                shards,
                telemetry,
                offered_qps,
                achieved_qps: best.achieved_qps,
                latency: best.latency,
                queries: stream.len(),
                traces,
                slow,
            });
        }
    }
    // The transparency oracle at the largest swept shard count.
    assert_identical_answers(&index, &stream[..stream.len().min(64)], SHARD_COUNTS[1]);
    results
}

fn find(results: &[ObsResult], shards: usize, telemetry: bool) -> &ObsResult {
    results
        .iter()
        .find(|r| r.shards == shards && r.telemetry == telemetry)
        .expect("every mode × shard count is measured")
}

/// Render the results as machine-readable JSON.
pub fn to_json(scale: Scale, results: &[ObsResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"e20\",");
    let _ = writeln!(out, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(out, "  \"top_n\": {TOP_N},");
    let _ = writeln!(out, "  \"max_batch\": {MAX_BATCH},");
    let _ = writeln!(out, "  \"overload\": {OVERLOAD},");
    let _ = writeln!(out, "  \"replays\": {REPLAYS},");
    let _ = writeln!(out, "  \"overhead_bound\": {OVERHEAD_BOUND},");
    let _ = writeln!(
        out,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    );
    let _ = writeln!(out, "  \"configs\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let off = find(results, r.shards, false);
        let _ = writeln!(
            out,
            "    {{\"shards\": {}, \"telemetry\": {}, \"queries\": {}, \
             \"offered_qps\": {:.0}, \"achieved_qps\": {:.0}, \
             \"qps_vs_uninstrumented\": {:.3}, \"traces\": {}, \"slow\": {}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}{comma}",
            r.shards,
            r.telemetry,
            r.queries,
            r.offered_qps,
            r.achieved_qps,
            r.achieved_qps / off.achieved_qps.max(1e-9),
            r.traces,
            r.slow,
            r.latency.p50.as_micros(),
            r.latency.p95.as_micros(),
            r.latency.p99.as_micros(),
            r.latency.max.as_micros(),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run E20, emit `BENCH_obs.json`, and enforce the overhead gate.
pub fn run(scale: Scale) -> Table {
    let results = measure(scale);

    let json = to_json(scale, &results);
    let json_path =
        std::env::var("MOA_BENCH_OBS_JSON").unwrap_or_else(|_| "BENCH_obs.json".to_owned());
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("e20: could not write {json_path}: {e}");
    }

    let mut t = Table::new(
        "E20: telemetry overhead (instrumented vs uninstrumented pool)",
        &[
            "shards",
            "telemetry",
            "offered",
            "achieved",
            "vs off",
            "traces",
            "slow",
            "p50",
            "p95",
            "p99",
        ],
    );
    for r in &results {
        let off = find(&results, r.shards, false);
        t.row(vec![
            r.shards.to_string(),
            if r.telemetry { "on" } else { "off" }.to_string(),
            format!("{:.0}/s", r.offered_qps),
            format!("{:.0}/s", r.achieved_qps),
            format!("{:.2}x", r.achieved_qps / off.achieved_qps.max(1e-9)),
            r.traces.to_string(),
            r.slow.to_string(),
            fmt_duration(r.latency.p50),
            fmt_duration(r.latency.p95),
            fmt_duration(r.latency.p99),
        ]);
    }
    let first = results.first().expect("non-empty sweep");
    t.note(format!(
        "open-loop Zipf stream of {} arrivals, top-{TOP_N}, admission batches capped at \
         {MAX_BATCH}; offered load = {OVERLOAD} x measured single-worker capacity; best of \
         {REPLAYS} replays per cell",
        first.queries
    ));
    t.note(
        "'telemetry on' captures a per-query trace into the worker's preallocated ring and \
         offers it to the worst-K slow log; registry counters/histograms are live in both modes",
    );
    t.note(
        "answers are bit-identical with telemetry on and off (oracle enforced each run); \
         steady-state capture performs zero heap allocations (alloc_telemetry tests)",
    );
    t.note(format!(
        "gate (enforced): instrumented qps >= {OVERHEAD_BOUND} x uninstrumented at every \
         shard count"
    ));
    t.note(format!("machine-readable copy written to {json_path}"));

    for &shards in &SHARD_COUNTS {
        let on = find(&results, shards, true);
        let off = find(&results, shards, false);
        assert!(
            on.achieved_qps >= OVERHEAD_BOUND * off.achieved_qps,
            "e20 gate: instrumented qps {:.0} below {OVERHEAD_BOUND} x uninstrumented {:.0} \
             at {shards} shard(s)",
            on.achieved_qps,
            off.achieved_qps
        );
        assert!(on.traces > 0, "instrumented run retained no traces");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e20_sweep_shape_and_capture() {
        let results = measure(Scale::Quick);
        assert_eq!(results.len(), SHARD_COUNTS.len() * 2);
        for r in &results {
            assert!(r.achieved_qps > 0.0);
            assert!(r.latency.p50 <= r.latency.p95);
            assert!(r.latency.p99 <= r.latency.max);
            assert_eq!(r.queries, results[0].queries);
            if r.telemetry {
                assert!(r.traces > 0, "no traces at {} shard(s)", r.shards);
            } else {
                assert_eq!(r.traces, 0);
                assert_eq!(r.slow, 0);
            }
        }
    }

    #[test]
    fn e20_json_is_well_formed() {
        let results = measure(Scale::Quick);
        let json = to_json(Scale::Quick, &results);
        assert!(json.contains("\"experiment\": \"e20\""));
        assert_eq!(json.matches("{\"shards\"").count(), results.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
