//! E12 (ablation) — ranking-model sensitivity of the fragmentation result.
//!
//! The Step 1 argument rests on rare terms dominating document scores. All
//! three shipped models (TF-IDF, Hiemstra LM, BM25) have that property, so
//! the unsafe strategy's speed/quality trade-off should be model-robust —
//! this ablation verifies the claim shape is not an artifact of one
//! weighting formula.

use moa_ir::{FragmentSpec, RankingModel, Strategy, SwitchPolicy};

use crate::experiments::fixture::RetrievalFixture;
use crate::harness::{Scale, Table};

/// Run E12.
pub fn run(scale: Scale) -> Table {
    let mut f = RetrievalFixture::build(scale);
    let frag = f.fragment(FragmentSpec::TermFraction(0.95));
    let policy = SwitchPolicy::default();

    let mut t = Table::new(
        "E12 (ablation): fragmentation trade-off across ranking models",
        &[
            "model",
            "MAP full",
            "MAP A-only",
            "quality drop",
            "MAP switch",
            "work saved (A-only)",
        ],
    );

    let models = [
        ("TF-IDF", RankingModel::TfIdf),
        (
            "Hiemstra LM (0.15)",
            RankingModel::HiemstraLm { lambda: 0.15 },
        ),
        ("BM25 (1.2, 0.75)", RankingModel::Bm25 { k1: 1.2, b: 0.75 }),
    ];

    for (label, model) in models {
        f.model = model;
        let full = f.run_strategy(&frag, Strategy::FullScan, policy);
        let a_only = f.run_strategy(&frag, Strategy::AOnly { use_a_index: false }, policy);
        let switch = f.run_strategy(&frag, Strategy::Switch { use_b_index: false }, policy);
        let map_full = f.map(&full);
        let map_a = f.map(&a_only);
        let map_switch = f.map(&switch);
        let drop = if map_full > 0.0 {
            100.0 * (1.0 - map_a / map_full)
        } else {
            0.0
        };
        let saved =
            100.0 * (1.0 - a_only.postings_scanned as f64 / full.postings_scanned.max(1) as f64);
        t.row(vec![
            label.into(),
            format!("{map_full:.4}"),
            format!("{map_a:.4}"),
            format!("{drop:.1}%"),
            format!("{map_switch:.4}"),
            format!("{saved:.1}%"),
        ]);
    }

    t.note("the speed/quality trade-off (large drop for A-only, recovery by switch) holds under every model — the effect is structural, not a weighting artifact");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_all_models_show_the_tradeoff() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let map_full: f64 = row[1].parse().unwrap();
            let map_a: f64 = row[2].parse().unwrap();
            let map_switch: f64 = row[4].parse().unwrap();
            assert!(map_a < map_full, "{}: A-only not degraded", row[0]);
            assert!(
                map_switch >= map_a,
                "{}: switch did not recover quality",
                row[0]
            );
            let saved: f64 = row[5].trim_end_matches('%').parse().unwrap();
            assert!(saved > 40.0, "{}: work saved only {saved}%", row[0]);
        }
    }
}
