//! E17 — block-compressed posting storage: decode throughput, footprint,
//! and the pruned-vs-exhaustive wall-time ledger on the new layout.
//!
//! The block layout (`moa_ir::blocks`) exists for one reason: BENCH_daat
//! showed the MaxScore kernel cutting postings scanned 2–3x while wall
//! time barely moved — the constant factor per posting (flat-array
//! pointer chasing, block-max side tables, per-query allocations)
//! dominated. This experiment pins the storage side of the fix with
//! numbers that CI tracks from this PR on:
//!
//! * **decode throughput** — ns/posting for bulk streaming
//!   ([`moa_ir::BlockPostingList::for_each`]) and for a cursor walk
//!   (doc prefix-sum + lazy point-unpacked tfs): the price every scan
//!   pays for compression,
//! * **footprint** — bytes/posting of headers + packed payload vs the
//!   flat layout's 8,
//! * **the E14 matrix on the new layout** — seed-naive vs exhaustive vs
//!   pruned wall times per (mix × model), with the `prune_overhead_ratio`
//!   gate: pruning must not cost more wall time than it saves on the
//!   trec_like mixes.
//!
//! The run writes `BENCH_blocks.json`; if a committed copy already
//! exists, its decode throughput is read *first* and the fresh
//! measurement is gated against it (≤ [`DECODE_REGRESSION_FACTOR`]×) —
//! the scan-throughput smoke CI runs on every push.

use std::fmt::Write as _;
use std::time::Duration;

use moa_corpus::{Collection, CollectionConfig};
use moa_ir::InvertedIndex;

use crate::experiments::e14::{self, CaseResult};
use crate::harness::{time_best_interleaved, Scale, Table};

/// Maximum allowed slowdown of bulk decode throughput vs the committed
/// `BENCH_blocks.json` (CI hosts vary; 2.5x flags a real regression, not
/// scheduler noise).
pub const DECODE_REGRESSION_FACTOR: f64 = 2.5;

/// Footprint gate: the packed layout must stay clearly under the flat
/// layout's 8 bytes/posting on the benchmark collection. The bound is
/// not tighter because the Zipf vocabulary's long tail of df ≤ 2 terms
/// pays a whole 20-byte block header per micro-run — long runs pack at
/// well under 2 bytes/posting, but the tail's header overhead dominates
/// the collection-wide average on a 20k-term vocabulary.
pub const BYTES_PER_POSTING_GATE: f64 = 6.0;

/// Wall-time floor on the bandwidth-bound mixes (trec_like and
/// frequent_only): the pruned kernel on *compressed* storage must stay
/// within 15% of the seed's flat-array naive merge even in the worst
/// (model × mix) cell (measured worst on the reference host: 0.92x)...
pub const WORST_SPEEDUP_FLOOR: f64 = 0.85;

/// ...and beat it by ≥ 20% in the best cell.
pub const BEST_SPEEDUP_FLOOR: f64 = 1.2;

/// Decode-side measurements.
pub struct DecodeResult {
    /// Total postings decoded per pass.
    pub postings: usize,
    /// Bulk streaming decode (docs + tfs) per posting.
    pub bulk_ns: f64,
    /// Cursor walk (doc decode + lazy tf point-unpack) per posting.
    pub cursor_ns: f64,
    /// Block storage footprint per posting (headers + payload).
    pub bytes_per_posting: f64,
}

/// Measure decode throughput and footprint over the benchmark collection.
pub fn measure_decode(scale: Scale) -> DecodeResult {
    let config = match scale {
        Scale::Quick => CollectionConfig::small(),
        Scale::Full => CollectionConfig::ft_scale(),
    };
    let collection = Collection::generate(config).expect("valid preset");
    let index = InvertedIndex::from_collection(&collection);
    let postings = index.num_postings();
    let terms = index.terms_by_df_asc();

    let mut bulk = || {
        let mut acc = 0u64;
        for &t in &terms {
            index
                .for_each_posting(t, |d, f| acc += u64::from(d) ^ u64::from(f))
                .expect("term in range");
        }
        std::hint::black_box(acc);
    };
    let mut cursor_walk = || {
        let mut acc = 0u64;
        for &t in &terms {
            let mut c = index.cursor(t).expect("term in range");
            while let Some(d) = c.doc() {
                acc += u64::from(d) ^ u64::from(c.tf());
                c.advance();
            }
        }
        std::hint::black_box(acc);
    };
    let walls = time_best_interleaved(9, &mut [&mut bulk, &mut cursor_walk]);
    let per = |w: Duration| w.as_nanos() as f64 / postings.max(1) as f64;
    DecodeResult {
        postings,
        bulk_ns: per(walls[0]),
        cursor_ns: per(walls[1]),
        bytes_per_posting: index.blocks().storage_bytes() as f64 / postings.max(1) as f64,
    }
}

/// Render the combined measurements as machine-readable JSON.
pub fn to_json(scale: Scale, decode: &DecodeResult, cases: &[CaseResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"e17\",");
    let _ = writeln!(out, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(out, "  \"postings\": {},", decode.postings);
    let _ = writeln!(out, "  \"decode_ns_per_posting\": {:.3},", decode.bulk_ns);
    let _ = writeln!(out, "  \"cursor_ns_per_posting\": {:.3},", decode.cursor_ns);
    let _ = writeln!(
        out,
        "  \"bytes_per_posting\": {:.3},",
        decode.bytes_per_posting
    );
    let _ = writeln!(out, "  \"flat_bytes_per_posting\": 8.0,");
    let _ = writeln!(out, "  \"cases\": [");
    for (i, r) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"mix\": \"{}\", \"model\": \"{}\", \"scan_reduction\": {:.3}, \
             \"speedup_vs_naive\": {:.3}, \"prune_overhead_ratio\": {:.3}}}{comma}",
            r.mix,
            r.model,
            r.scan_reduction(),
            r.time_speedup_vs_naive(),
            r.prune_overhead_ratio(),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract `"decode_ns_per_posting": <float>` from a committed JSON copy
/// (no JSON dependency in the workspace; the field is written by
/// [`to_json`] on one line).
pub fn parse_decode_ns(json: &str) -> Option<f64> {
    let key = "\"decode_ns_per_posting\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Run E17: measure, gate against the committed snapshot, rewrite
/// `BENCH_blocks.json`, and enforce the layout's acceptance gates.
pub fn run(scale: Scale) -> Table {
    let json_path =
        std::env::var("MOA_BENCH_BLOCKS_JSON").unwrap_or_else(|_| "BENCH_blocks.json".to_owned());
    // Read the committed reference BEFORE overwriting it.
    let committed_ns = std::fs::read_to_string(&json_path)
        .ok()
        .as_deref()
        .and_then(parse_decode_ns);

    let decode = measure_decode(scale);
    let cases = e14::measure(scale);

    // Gate 1 — scan-throughput regression vs the committed snapshot,
    // asserted BEFORE the file is rewritten: a failing run must not
    // replace the reference it just failed against (the ratchet would
    // otherwise reset itself to the regressed figure on the next run).
    if let Some(reference) = committed_ns {
        assert!(
            decode.bulk_ns <= reference * DECODE_REGRESSION_FACTOR,
            "decode throughput regressed: {:.2} ns/posting vs committed {reference:.2} \
             (ceiling {DECODE_REGRESSION_FACTOR}x); BENCH_blocks.json left untouched",
            decode.bulk_ns
        );
    }

    let json = to_json(scale, &decode, &cases);
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("e17: could not write {json_path}: {e}");
    }

    // Gate 2 — footprint.
    assert!(
        decode.bytes_per_posting <= BYTES_PER_POSTING_GATE,
        "block storage at {:.2} bytes/posting exceeds the {BYTES_PER_POSTING_GATE} gate",
        decode.bytes_per_posting
    );
    // Gate 3 — pruning must not cost wall time on trec_like (the e14
    // anomaly this layout fixed), enforced by e14's shared gate on this
    // run's own measurement.
    let ratio_ceiling = e14::assert_prune_overhead_gate(&cases, scale);
    // Gate 4 — wall time vs the seed's flat naive merge on the
    // bandwidth-bound mixes (enforced at the committed-benchmark scale
    // only; Full-scale pruning effectiveness is tracked, not gated —
    // see PRUNE_OVERHEAD_GATE_FULL's rationale).
    if scale == Scale::Quick {
        let band: Vec<&CaseResult> = cases
            .iter()
            .filter(|r| r.mix == "trec_like" || r.mix == "frequent_only")
            .collect();
        let worst = band
            .iter()
            .map(|r| r.time_speedup_vs_naive())
            .fold(f64::INFINITY, f64::min);
        let best = band
            .iter()
            .map(|r| r.time_speedup_vs_naive())
            .fold(0.0f64, f64::max);
        assert!(
            worst >= WORST_SPEEDUP_FLOOR,
            "worst bandwidth-mix speedup {worst:.2}x below the {WORST_SPEEDUP_FLOOR} floor"
        );
        assert!(
            best >= BEST_SPEEDUP_FLOOR,
            "best bandwidth-mix speedup {best:.2}x below the {BEST_SPEEDUP_FLOOR} floor"
        );
    }

    let mut t = Table::new(
        "E17: block-compressed posting storage — decode throughput and query wall time",
        &["measure", "value"],
    );
    t.row(vec![
        "postings decoded per pass".into(),
        decode.postings.to_string(),
    ]);
    t.row(vec![
        "bulk decode (for_each)".into(),
        format!("{:.2} ns/posting", decode.bulk_ns),
    ]);
    t.row(vec![
        "cursor walk (lazy tf)".into(),
        format!("{:.2} ns/posting", decode.cursor_ns),
    ]);
    t.row(vec![
        "storage footprint".into(),
        format!("{:.2} bytes/posting (flat: 8.00)", decode.bytes_per_posting),
    ]);
    for r in &cases {
        t.row(vec![
            format!("{} / {}", r.mix, r.model),
            format!(
                "speedup vs naive {:.2}x, pruned/exhaustive {:.3}, scan reduction {:.2}x",
                r.time_speedup_vs_naive(),
                r.prune_overhead_ratio(),
                r.scan_reduction()
            ),
        ]);
    }
    match committed_ns {
        Some(reference) => {
            t.note(format!(
                "scan-throughput smoke: {:.2} ns/posting vs committed {reference:.2} (gate {DECODE_REGRESSION_FACTOR}x)",
                decode.bulk_ns
            ));
        }
        None => {
            t.note("no committed BENCH_blocks.json found: regression gate skipped (first run seeds it)");
        }
    }
    t.note(format!(
        "gates enforced: footprint <= {BYTES_PER_POSTING_GATE} B/posting; trec_like pruned/exhaustive <= {ratio_ceiling}; bandwidth-mix speedup vs seed naive in [{WORST_SPEEDUP_FLOOR}, inf) worst / [{BEST_SPEEDUP_FLOOR}, inf) best"
    ));
    t.note(format!("machine-readable copy written to {json_path}"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_ir::ExecReport;
    use std::time::Duration;

    fn case(mix: &'static str, naive: u64, ex: u64, pr: u64) -> CaseResult {
        CaseResult {
            mix,
            model: "tfidf",
            exhaustive: ExecReport {
                postings_scanned: 1000,
                ..ExecReport::default()
            },
            pruned: ExecReport {
                postings_scanned: 400,
                ..ExecReport::default()
            },
            wall_naive: Duration::from_nanos(naive),
            wall_exhaustive: Duration::from_nanos(ex),
            wall_pruned: Duration::from_nanos(pr),
        }
    }

    #[test]
    fn json_shape_and_decode_ns_roundtrip() {
        let decode = DecodeResult {
            postings: 123_456,
            bulk_ns: 3.25,
            cursor_ns: 4.5,
            bytes_per_posting: 2.4,
        };
        let cases = vec![
            case("trec_like", 300, 200, 180),
            case("topical", 300, 200, 220),
        ];
        let json = to_json(Scale::Quick, &decode, &cases);
        assert!(json.contains("\"experiment\": \"e17\""));
        assert_eq!(json.matches("{\"mix\"").count(), 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The committed-snapshot gate reads back exactly what was written.
        assert_eq!(parse_decode_ns(&json), Some(3.25));
        assert_eq!(parse_decode_ns("no such field"), None);
    }

    #[test]
    fn ratio_and_speedup_derivations() {
        let r = case("trec_like", 300, 200, 180);
        assert!((r.prune_overhead_ratio() - 0.9).abs() < 1e-9);
        assert!((r.time_speedup_vs_naive() - 300.0 / 180.0).abs() < 1e-9);
        assert!((r.scan_reduction() - 2.5).abs() < 1e-9);
    }
}
