//! E17 — block-compressed posting storage: decode throughput, footprint,
//! and the pruned-vs-exhaustive wall-time ledger on the new layout.
//!
//! The block layout (`moa_ir::blocks`) exists for one reason: BENCH_daat
//! showed the MaxScore kernel cutting postings scanned 2–3x while wall
//! time barely moved — the constant factor per posting (flat-array
//! pointer chasing, block-max side tables, per-query allocations)
//! dominated. This experiment pins the storage side of the fix with
//! numbers that CI tracks:
//!
//! * **decode throughput** — ns/posting for bulk streaming
//!   ([`moa_ir::BlockPostingList::for_each`], now a fused word-parallel
//!   delta + prefix-sum kernel) and for a cursor walk (fused doc decode
//!   + mini-block lazy tfs): the price every scan pays for compression,
//! * **footprint** — bytes/posting of headers + packed payload + the
//!   16-byte per-block bound records (quantized mini-block nibbles
//!   included) vs the flat layout's 8,
//! * **the E14 matrix on the new layout** — seed-naive vs exhaustive vs
//!   pruned wall times per (mix × model), with the `prune_overhead_ratio`
//!   gate: pruning must not cost more wall time than it saves on the
//!   trec_like mixes.
//!
//! `BENCH_blocks.json` holds **both** scales: a `"quick"` and a `"full"`
//! section, each written by a run at that scale while the other section
//! is preserved verbatim. CI runs Quick on every push and additionally
//! re-asserts the *committed* Full section's speedup floors, so the
//! committed FT-scale claim (best bandwidth-mix ≥
//! [`FULL_BEST_SPEEDUP_FLOOR`]x the seed's naive merge) cannot silently
//! rot while only Quick runs.

use std::fmt::Write as _;
use std::time::Duration;

use moa_corpus::{Collection, CollectionConfig};
use moa_ir::{BlockBound, InvertedIndex};

use crate::experiments::e14::{self, CaseResult};
use crate::harness::{time_best_interleaved, Scale, Table};

/// Maximum allowed slowdown of bulk decode throughput vs the committed
/// `BENCH_blocks.json` (CI hosts vary; 2.5x flags a real regression, not
/// scheduler noise).
pub const DECODE_REGRESSION_FACTOR: f64 = 2.5;

/// Footprint gate at FT scale, side tables included: headers + packed
/// payload + the 16-byte per-block [`BlockBound`] records (block max,
/// last doc, and the eight 4-bit mini-block maxima riding in the former
/// padding) must stay under 4.6 bytes/posting. Long runs amortize the
/// fixed per-run overhead, so this is the scale where the compression
/// claim is meaningful — and it is re-asserted from the committed
/// `"full"` section on every Quick CI run.
pub const BYTES_PER_POSTING_GATE_FULL: f64 = 4.6;

/// Footprint gate at Quick scale. The small collection's Zipf
/// vocabulary is mostly df ≤ 2 micro-runs, each paying a whole block
/// header + 16-byte bound record, so the collection-wide average sits
/// far above the FT-scale figure; the gate only catches gross layout
/// regressions here.
pub const BYTES_PER_POSTING_GATE_QUICK: f64 = 6.5;

/// Cursor-vs-bulk ceiling: the cursor walk (fused doc decode +
/// mini-block lazy tfs) must stay within 1.5x of the bulk streaming
/// decode per posting. The seed's point-unpacking cursor sat at ~2.5x;
/// the word-parallel kernels close the gap, and this gate keeps it
/// closed.
pub const CURSOR_VS_BULK_CEILING: f64 = 1.5;

/// Wall-time floor on the bandwidth-bound mixes (trec_like and
/// frequent_only) at Quick scale: the pruned kernel on *compressed*
/// storage must stay within 15% of the seed's flat-array naive merge
/// even in the worst (model × mix) cell...
pub const WORST_SPEEDUP_FLOOR: f64 = 0.85;

/// ...and beat it by ≥ 20% in the best cell at Quick scale.
pub const BEST_SPEEDUP_FLOOR: f64 = 1.2;

/// Full-scale floors, asserted on a Full run's fresh measurement AND on
/// the committed `"full"` section during every Quick CI run: the best
/// bandwidth-mix cell must beat the seed naive merge by ≥ 1.5x...
pub const FULL_BEST_SPEEDUP_FLOOR: f64 = 1.5;

/// ...and the worst cell must not fall below 0.95x of it.
pub const FULL_WORST_SPEEDUP_FLOOR: f64 = 0.95;

/// Decode-side measurements.
pub struct DecodeResult {
    /// Total postings decoded per pass.
    pub postings: usize,
    /// Bulk streaming decode (docs + tfs) per posting.
    pub bulk_ns: f64,
    /// Cursor walk (fused doc decode + mini-block lazy tfs) per posting.
    pub cursor_ns: f64,
    /// Storage footprint per posting: headers + payload + per-block
    /// bound records (mini-block nibbles included).
    pub bytes_per_posting: f64,
}

/// Measure decode throughput and footprint over the benchmark collection.
pub fn measure_decode(scale: Scale) -> DecodeResult {
    let config = match scale {
        Scale::Quick => CollectionConfig::small(),
        Scale::Full => CollectionConfig::ft_scale(),
    };
    let collection = Collection::generate(config).expect("valid preset");
    let index = InvertedIndex::from_collection(&collection);
    let postings = index.num_postings();
    let terms = index.terms_by_df_asc();

    let mut bulk = || {
        let mut acc = 0u64;
        for &t in &terms {
            index
                .for_each_posting(t, |d, f| acc += u64::from(d) ^ u64::from(f))
                .expect("term in range");
        }
        std::hint::black_box(acc);
    };
    // The cursor walk reuses one decode buffer across terms, exactly as
    // the DAAT kernel's query scratch does — the per-posting figure must
    // price the decode kernels, not a per-term 1 KiB buffer allocation
    // the query engines never pay.
    let mut walk_buf = moa_ir::CursorBuf::new();
    let mut cursor_walk = || {
        let mut acc = 0u64;
        for &t in &terms {
            let view = index.blocks().view(t);
            let mut pos = view.start(&mut walk_buf);
            while let Some(d) = view.doc_at(&pos, &walk_buf) {
                acc += u64::from(d) ^ u64::from(view.tf_at(&mut pos, &mut walk_buf));
                view.advance(&mut pos, &mut walk_buf);
            }
        }
        std::hint::black_box(acc);
    };
    let walls = time_best_interleaved(9, &mut [&mut bulk, &mut cursor_walk]);
    let per = |w: Duration| w.as_nanos() as f64 / postings.max(1) as f64;
    let bound_bytes = index.blocks().num_blocks() * std::mem::size_of::<BlockBound>();
    DecodeResult {
        postings,
        bulk_ns: per(walls[0]),
        cursor_ns: per(walls[1]),
        bytes_per_posting: (index.blocks().storage_bytes() + bound_bytes) as f64
            / postings.max(1) as f64,
    }
}

/// Render one scale's measurements as a JSON object (no trailing
/// newline) — the `"quick"` / `"full"` section body of
/// `BENCH_blocks.json`.
pub fn section_json(decode: &DecodeResult, cases: &[CaseResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "    \"postings\": {},", decode.postings);
    let _ = writeln!(out, "    \"decode_ns_per_posting\": {:.3},", decode.bulk_ns);
    let _ = writeln!(
        out,
        "    \"cursor_ns_per_posting\": {:.3},",
        decode.cursor_ns
    );
    let _ = writeln!(
        out,
        "    \"bytes_per_posting\": {:.3},",
        decode.bytes_per_posting
    );
    let _ = writeln!(out, "    \"flat_bytes_per_posting\": 8.0,");
    let _ = writeln!(out, "    \"cases\": [");
    for (i, r) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"mix\": \"{}\", \"model\": \"{}\", \"scan_reduction\": {:.3}, \
             \"speedup_vs_naive\": {:.3}, \"prune_overhead_ratio\": {:.3}}}{comma}",
            r.mix,
            r.model,
            r.scan_reduction(),
            r.time_speedup_vs_naive(),
            r.prune_overhead_ratio(),
        );
    }
    out.push_str("    ]\n  }");
    out
}

/// Assemble the combined two-section document from section bodies
/// (either may be `None`, rendered as JSON `null`).
pub fn combined_json(quick: Option<&str>, full: Option<&str>) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e17\",\n");
    let _ = writeln!(out, "  \"quick\": {},", quick.unwrap_or("null"));
    let _ = writeln!(out, "  \"full\": {}", full.unwrap_or("null"));
    out.push_str("}\n");
    out
}

/// Extract the balanced-brace object following `"<key>":` from a
/// committed combined document. Returns `None` for a missing key or a
/// `null` section.
pub fn section_of<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\":");
    let at = json.find(&marker)? + marker.len();
    let rest = json[at..].trim_start();
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extract `"decode_ns_per_posting": <float>` from a section (no JSON
/// dependency in the workspace; the field is written on one line).
pub fn parse_decode_ns(json: &str) -> Option<f64> {
    parse_f64_field(json, "decode_ns_per_posting")
}

fn parse_f64_field(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let at = json.find(&key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pull every bandwidth-bound case's `speedup_vs_naive` out of a
/// section: one case per line, written by [`section_json`].
pub fn parse_bandwidth_speedups(section: &str) -> Vec<f64> {
    section
        .lines()
        .filter(|l| {
            l.contains("\"mix\": \"trec_like\"") || l.contains("\"mix\": \"frequent_only\"")
        })
        .filter_map(|l| parse_f64_field(l, "speedup_vs_naive"))
        .collect()
}

fn assert_speedup_floors(cases: &[CaseResult], worst_floor: f64, best_floor: f64, label: &str) {
    let band: Vec<f64> = cases
        .iter()
        .filter(|r| r.mix == "trec_like" || r.mix == "frequent_only")
        .map(|r| r.time_speedup_vs_naive())
        .collect();
    let worst = band.iter().copied().fold(f64::INFINITY, f64::min);
    let best = band.iter().copied().fold(0.0f64, f64::max);
    assert!(
        worst >= worst_floor,
        "{label}: worst bandwidth-mix speedup {worst:.2}x below the {worst_floor} floor"
    );
    assert!(
        best >= best_floor,
        "{label}: best bandwidth-mix speedup {best:.2}x below the {best_floor} floor"
    );
}

/// Run E17: measure, gate against the committed snapshot, rewrite this
/// scale's section of `BENCH_blocks.json` (preserving the other
/// section), and enforce the layout's acceptance gates.
pub fn run(scale: Scale) -> Table {
    let json_path =
        std::env::var("MOA_BENCH_BLOCKS_JSON").unwrap_or_else(|_| "BENCH_blocks.json".to_owned());
    // Read the committed reference BEFORE overwriting it.
    let committed = std::fs::read_to_string(&json_path).ok();
    let my_key = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let committed_mine = committed.as_deref().and_then(|j| section_of(j, my_key));
    let committed_ns = committed_mine.and_then(parse_decode_ns);

    let decode = measure_decode(scale);
    let cases = e14::measure(scale);

    // Gate 1 — scan-throughput regression vs the committed snapshot,
    // asserted BEFORE the file is rewritten: a failing run must not
    // replace the reference it just failed against (the ratchet would
    // otherwise reset itself to the regressed figure on the next run).
    if let Some(reference) = committed_ns {
        assert!(
            decode.bulk_ns <= reference * DECODE_REGRESSION_FACTOR,
            "decode throughput regressed: {:.2} ns/posting vs committed {reference:.2} \
             (ceiling {DECODE_REGRESSION_FACTOR}x); BENCH_blocks.json left untouched",
            decode.bulk_ns
        );
    }

    // Rewrite this scale's section, preserving the other verbatim.
    let mine = section_json(&decode, &cases);
    let other_key = if my_key == "quick" { "full" } else { "quick" };
    let other = committed.as_deref().and_then(|j| section_of(j, other_key));
    let json = match scale {
        Scale::Quick => combined_json(Some(&mine), other),
        Scale::Full => combined_json(other, Some(&mine)),
    };
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("e17: could not write {json_path}: {e}");
    }

    // Gate 2 — footprint, side tables (mini-block nibbles) included, at
    // this scale's bound.
    let bytes_gate = match scale {
        Scale::Quick => BYTES_PER_POSTING_GATE_QUICK,
        Scale::Full => BYTES_PER_POSTING_GATE_FULL,
    };
    assert!(
        decode.bytes_per_posting <= bytes_gate,
        "block storage at {:.2} bytes/posting exceeds the {bytes_gate} gate",
        decode.bytes_per_posting
    );
    // Gate 3 — the cursor walk must stay close to the bulk decode: the
    // word-parallel kernels + mini-block tf lookahead closed the gap
    // the seed's per-posting point unpacks left.
    assert!(
        decode.cursor_ns <= decode.bulk_ns * CURSOR_VS_BULK_CEILING,
        "cursor walk at {:.2} ns/posting exceeds {CURSOR_VS_BULK_CEILING}x the bulk \
         decode ({:.2} ns/posting)",
        decode.cursor_ns,
        decode.bulk_ns
    );
    // Gate 4 — pruning must not cost wall time on trec_like (the e14
    // anomaly this layout fixed), enforced by e14's shared gate on this
    // run's own measurement.
    let ratio_ceiling = e14::assert_prune_overhead_gate(&cases, scale);
    // Gate 5 — wall time vs the seed's flat naive merge on the
    // bandwidth-bound mixes, at this scale's floors.
    match scale {
        Scale::Quick => {
            assert_speedup_floors(&cases, WORST_SPEEDUP_FLOOR, BEST_SPEEDUP_FLOOR, "quick");
            // Gate 5b — the *committed* Full section must keep meeting
            // its floors on every Quick CI run: the FT-scale claim is
            // re-checked even when only Quick is re-measured.
            if let Some(full) = committed.as_deref().and_then(|j| section_of(j, "full")) {
                let speedups = parse_bandwidth_speedups(full);
                assert!(
                    !speedups.is_empty(),
                    "committed full section has no bandwidth-mix cases"
                );
                let worst = speedups.iter().copied().fold(f64::INFINITY, f64::min);
                let best = speedups.iter().copied().fold(0.0f64, f64::max);
                assert!(
                    best >= FULL_BEST_SPEEDUP_FLOOR,
                    "committed Full best speedup {best:.2}x below the \
                     {FULL_BEST_SPEEDUP_FLOOR} floor"
                );
                assert!(
                    worst >= FULL_WORST_SPEEDUP_FLOOR,
                    "committed Full worst speedup {worst:.2}x below the \
                     {FULL_WORST_SPEEDUP_FLOOR} floor"
                );
                if let Some(bytes) = parse_f64_field(full, "bytes_per_posting") {
                    assert!(
                        bytes <= BYTES_PER_POSTING_GATE_FULL,
                        "committed Full footprint {bytes:.2} B/posting exceeds the \
                         {BYTES_PER_POSTING_GATE_FULL} gate"
                    );
                }
            }
        }
        Scale::Full => {
            assert_speedup_floors(
                &cases,
                FULL_WORST_SPEEDUP_FLOOR,
                FULL_BEST_SPEEDUP_FLOOR,
                "full",
            );
        }
    }

    let mut t = Table::new(
        "E17: block-compressed posting storage — decode throughput and query wall time",
        &["measure", "value"],
    );
    t.row(vec![
        "postings decoded per pass".into(),
        decode.postings.to_string(),
    ]);
    t.row(vec![
        "bulk decode (for_each)".into(),
        format!("{:.2} ns/posting", decode.bulk_ns),
    ]);
    t.row(vec![
        "cursor walk (mini-block lazy tf)".into(),
        format!(
            "{:.2} ns/posting ({:.2}x bulk)",
            decode.cursor_ns,
            decode.cursor_ns / decode.bulk_ns.max(f64::MIN_POSITIVE)
        ),
    ]);
    t.row(vec![
        "storage footprint (incl. bound nibbles)".into(),
        format!("{:.2} bytes/posting (flat: 8.00)", decode.bytes_per_posting),
    ]);
    for r in &cases {
        t.row(vec![
            format!("{} / {}", r.mix, r.model),
            format!(
                "speedup vs naive {:.2}x, pruned/exhaustive {:.3}, scan reduction {:.2}x",
                r.time_speedup_vs_naive(),
                r.prune_overhead_ratio(),
                r.scan_reduction()
            ),
        ]);
    }
    match committed_ns {
        Some(reference) => {
            t.note(format!(
                "scan-throughput smoke: {:.2} ns/posting vs committed {reference:.2} (gate {DECODE_REGRESSION_FACTOR}x)",
                decode.bulk_ns
            ));
        }
        None => {
            t.note(
                "no committed section for this scale: regression gate skipped (first run seeds it)",
            );
        }
    }
    t.note(format!(
        "gates enforced: footprint <= {bytes_gate} B/posting at this scale (nibbles included; \
         full gate {BYTES_PER_POSTING_GATE_FULL}); cursor <= {CURSOR_VS_BULK_CEILING}x bulk; \
         trec_like pruned/exhaustive <= {ratio_ceiling}; speedup floors quick \
         [{WORST_SPEEDUP_FLOOR}, {BEST_SPEEDUP_FLOOR}] / full \
         [{FULL_WORST_SPEEDUP_FLOOR}, {FULL_BEST_SPEEDUP_FLOOR}] (worst, best)"
    ));
    t.note(format!(
        "machine-readable copy written to {json_path} ({my_key} section; other preserved)"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_ir::ExecReport;
    use std::time::Duration;

    fn case(mix: &'static str, naive: u64, ex: u64, pr: u64) -> CaseResult {
        CaseResult {
            mix,
            model: "tfidf",
            exhaustive: ExecReport {
                postings_scanned: 1000,
                ..ExecReport::default()
            },
            pruned: ExecReport {
                postings_scanned: 400,
                ..ExecReport::default()
            },
            wall_naive: Duration::from_nanos(naive),
            wall_exhaustive: Duration::from_nanos(ex),
            wall_pruned: Duration::from_nanos(pr),
        }
    }

    fn decode() -> DecodeResult {
        DecodeResult {
            postings: 123_456,
            bulk_ns: 3.25,
            cursor_ns: 4.5,
            bytes_per_posting: 2.4,
        }
    }

    #[test]
    fn json_shape_and_decode_ns_roundtrip() {
        let cases = vec![
            case("trec_like", 300, 200, 180),
            case("topical", 300, 200, 220),
        ];
        let quick = section_json(&decode(), &cases);
        let json = combined_json(Some(&quick), None);
        assert!(json.contains("\"experiment\": \"e17\""));
        assert!(json.contains("\"full\": null"));
        assert_eq!(json.matches("{\"mix\"").count(), 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The committed-snapshot gate reads back exactly what was
        // written, from the right section.
        let sect = section_of(&json, "quick").expect("quick section present");
        assert_eq!(parse_decode_ns(sect), Some(3.25));
        assert!(section_of(&json, "full").is_none());
        assert_eq!(parse_decode_ns("no such field"), None);
    }

    #[test]
    fn sections_are_independent_and_preserved() {
        let q_cases = vec![case("trec_like", 300, 200, 180)];
        let f_cases = vec![
            case("trec_like", 450, 280, 260),
            case("frequent_only", 400, 300, 290),
        ];
        let quick = section_json(&decode(), &q_cases);
        let full = section_json(
            &DecodeResult {
                postings: 9_999_999,
                bulk_ns: 4.0,
                cursor_ns: 5.0,
                bytes_per_posting: 3.0,
            },
            &f_cases,
        );
        let json = combined_json(Some(&quick), Some(&full));
        let got_full = section_of(&json, "full").expect("full section present");
        assert_eq!(parse_decode_ns(got_full), Some(4.0));
        // A Quick re-run preserves the full section byte for byte.
        let rewritten = combined_json(section_of(&json, "quick"), Some(got_full));
        assert_eq!(section_of(&rewritten, "full"), Some(&full[..]));
        // The Full floors read the committed speedups per case.
        let speedups = parse_bandwidth_speedups(got_full);
        assert_eq!(speedups.len(), 2);
        assert!((speedups[0] - 450.0 / 260.0).abs() < 2e-3);
        assert!((speedups[1] - 400.0 / 290.0).abs() < 2e-3);
    }

    #[test]
    fn ratio_and_speedup_derivations() {
        let r = case("trec_like", 300, 200, 180);
        assert!((r.prune_overhead_ratio() - 0.9).abs() < 1e-9);
        assert!((r.time_speedup_vs_naive() - 300.0 / 180.0).abs() < 1e-9);
        assert!((r.scan_reduction() - 2.5).abs() < 1e-9);
    }
}
