//! E4 — the inter-object rewrite of the paper's Example 1 (§3 Step 2).
//!
//! `BAG.select(LIST.projecttobag(l), lo, hi)` is run as three plans over
//! sorted integer lists of increasing size:
//!
//! 1. *naive* — no optimization (what "current optimizer technology,
//!    including the E-ADT system of PREDATOR" produces, per the paper),
//! 2. *inter-object* — the select pushed below the projection,
//! 3. *inter + order-aware* — additionally, the pushed-down select becomes a
//!    binary search because the list's ordering is provable.
//!
//! Reported: abstract work units (elements touched) and wall time.

use moa_core::{Env, Expr, OptimizerConfig, Session, Value};

use crate::harness::{fmt_duration, time_median, Scale, Table};

fn example1_expr(n: i64, lo: i64, hi: i64) -> Expr {
    Expr::bag_select(
        Expr::projecttobag(Expr::constant(Value::int_list(0..n))),
        Value::Int(lo),
        Value::Int(hi),
    )
}

/// Run E4.
pub fn run(scale: Scale) -> Table {
    let sizes: &[i64] = match scale {
        Scale::Quick => &[1_000, 10_000],
        Scale::Full => &[10_000, 100_000, 1_000_000],
    };

    let mut t = Table::new(
        "E4: Example 1 — select(projecttobag(l), lo, hi) under three optimizer levels",
        &["list size", "plan", "work units", "time", "result card"],
    );

    for &n in sizes {
        // 1% selectivity window in the middle of the list.
        let lo = n / 2;
        let hi = n / 2 + n / 100;
        let expr = example1_expr(n, lo, hi);

        let mut naive_session = Session::new();
        naive_session.set_optimizer_config(OptimizerConfig::disabled());
        let mut inter_session = Session::new();
        inter_session.set_optimizer_config(OptimizerConfig {
            logical: true,
            inter_object: true,
            intra_object: false,
            max_passes: 8,
        });
        let full_session = Session::new(); // all layers

        for (label, session) in [
            ("naive", &naive_session),
            ("inter-object", &inter_session),
            ("inter+order-aware", &full_session),
        ] {
            let report = session.run(&expr, &Env::new()).expect("valid plan");
            let timed = time_median(3, || {
                let _ = session.run(&expr, &Env::new()).expect("valid plan");
            });
            t.row(vec![
                n.to_string(),
                label.into(),
                report.work.to_string(),
                fmt_duration(timed),
                report.value.cardinality().to_string(),
            ]);
        }
    }

    t.note("claim (Example 1): the rewritten expression 'produces exactly the same answer but can be executed more efficient'");
    t.note("claim (Example 1): 'evaluated even more efficiently when the system is aware of the ordering'");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_each_level_is_no_worse() {
        let t = run(Scale::Quick);
        // Rows come in triples per size: naive, inter, inter+order.
        for chunk in t.rows.chunks(3) {
            let naive: f64 = chunk[0][2].parse().unwrap();
            let inter: f64 = chunk[1][2].parse().unwrap();
            let order: f64 = chunk[2][2].parse().unwrap();
            assert!(inter < naive, "inter {inter} !< naive {naive}");
            assert!(order < inter, "order {order} !< inter {inter}");
            // Identical result cardinalities.
            assert_eq!(chunk[0][4], chunk[1][4]);
            assert_eq!(chunk[1][4], chunk[2][4]);
        }
    }
}
