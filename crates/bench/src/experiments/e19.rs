//! E19 — resilience under overload and injected faults.
//!
//! E18 established that the worker pool wins on throughput; this
//! experiment establishes that it *degrades safely*. The same open-loop
//! Zipf stream is driven at multiples of the calibrated single-thread
//! capacity against a pool with every overload defense armed, plus a
//! controlled fault storm:
//!
//! * **shedding** ([`moa_serve::AdmissionPolicy::Shed`], bounded queues):
//!   at 1.5× and 3× capacity, a saturated pool refuses batches with
//!   typed [`moa_serve::ServeError::Shed`] instead of queueing without
//!   limit. Measured: shed rate, achieved completions, tail latency of
//!   what *was* served, and the queue high-water mark;
//! * **deadlines** ([`moa_serve::ServeConfig::deadline`]): a per-query
//!   budget shorter than the queueing delay at 3× overload degrades
//!   queries to `Ok`-but-`partial` responses — exact prefixes with
//!   honest counters — rather than errors;
//! * **fault storm**: an armed poison term panics one shard's worker
//!   inside its per-query guard (only the poisoned position may fail),
//!   then [`CRASHES`] worker crashes on rotating shards kill threads
//!   outside the guard mid-stream. The pool respawns each worker over
//!   its retained shard and keeps serving.
//!
//! Gates (enforced here and by CI's E19 smoke): the queue high-water
//! mark never exceeds the configured bound; the 3× drive actually sheds;
//! every non-shed, non-partial response is **bit-identical** to the
//! unsharded differential oracle — under overload and after every fault;
//! the deadline drive produces partials and zero errors; respawns equal
//! crashes injected and the post-storm pool answers the oracle exactly.
//! The committed figures live in `BENCH_resilience.json`.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use moa_corpus::{
    generate_query_stream, Collection, CollectionConfig, DfBias, QueryConfig, StreamConfig,
};
use moa_ir::InvertedIndex;
use moa_serve::{
    silence_worker_panics, AdmissionPolicy, BatchQuery, PendingBatch, ServeConfig, ServeMode,
    ServeSession, ShardedEngine, WorkerFault,
};

use crate::harness::{fmt_duration, Percentiles, Scale, Table};

/// Ranking depth.
const TOP_N: usize = 10;

/// Shard count for every resilience drive (the pool posture E18 showed
/// scaling; resilience is about the runtime, not the shard sweep).
const SHARDS: usize = 4;

/// Admission batch cap (matches E18's front-end backpressure knob).
const MAX_BATCH: usize = 32;

/// Per-worker queue bound for the shedding drives: small enough that an
/// overloaded stream visibly saturates it.
const QUEUE_DEPTH: usize = 4;

/// Offered-load multiples of calibrated capacity for the shedding
/// drives; the highest must shed (gated).
const OVERLOADS: [f64; 2] = [1.5, 3.0];

/// Offered-load multiple for the deadline drive: deep saturation, so
/// worker-queue wait reliably exceeds the budget.
const DEADLINE_OVERLOAD: f64 = 3.0;

/// Deadline budget as a fraction of one admission batch's service time:
/// under saturation a batch waits at least one full batch behind its
/// predecessor, so budgets below 1.0 reliably expire queued queries
/// while the stream's head still completes in full.
const DEADLINE_BUDGET_BATCHES: f64 = 0.5;

/// Worker crashes injected by the fault storm, on rotating shards.
const CRASHES: usize = 3;

/// One shedding drive at one offered-load multiple.
pub struct OverloadResult {
    /// Offered load as a multiple of calibrated capacity.
    pub multiplier: f64,
    /// Offered arrival rate (queries/sec).
    pub offered_qps: f64,
    /// Completion rate of served queries (queries/sec).
    pub achieved_qps: f64,
    /// Queries in the stream.
    pub queries: usize,
    /// Queries answered `Ok`.
    pub completed: usize,
    /// Queries refused at admission (typed `Shed`, nothing executed).
    pub shed: usize,
    /// Queries that failed in flight (must be 0: no faults are armed).
    pub failed: usize,
    /// Served responses that diverged from the oracle (must be 0).
    pub mismatches: usize,
    /// Arrival-to-merge latency of served queries.
    pub latency: Percentiles,
    /// Highest queue depth any worker saw.
    pub high_water: usize,
    /// The configured per-worker bound.
    pub bound: usize,
}

/// The deadline-budget drive.
pub struct DeadlineResult {
    /// The per-query budget.
    pub budget: Duration,
    /// Queries in the stream.
    pub queries: usize,
    /// Queries answered `Ok` (full or partial).
    pub completed: usize,
    /// `Ok` responses marked partial (budget expired; exact prefix).
    pub partial: usize,
    /// Queries that failed (must be 0: deadlines degrade, never error).
    pub failed: usize,
    /// Non-partial responses that diverged from the oracle (must be 0).
    pub mismatches: usize,
}

/// The fault storm.
pub struct FaultResult {
    /// Positions failed by the armed poison term (typed, shard-attributed).
    pub poison_failed: usize,
    /// Whether the disarmed replay of the poisoned batch matched the
    /// oracle in full.
    pub poison_recovered: bool,
    /// Worker crashes injected.
    pub crashes: usize,
    /// Workers respawned over their retained shards.
    pub respawns: usize,
    /// Queries lost to dead workers mid-storm (their positions failed
    /// typed; the count is scheduling-dependent and not gated).
    pub storm_failed: usize,
    /// Respawn durations (dead-worker detection to replacement serving).
    pub recoveries: Vec<Duration>,
    /// Whether the post-storm pool answered a clean stream pass
    /// bit-identically to the oracle.
    pub post_storm_ok: bool,
}

/// Everything E19 measures.
pub struct ResilienceReport {
    /// Calibrated single-thread capacity (queries/sec).
    pub capacity_qps: f64,
    /// The shedding drives, one per [`OVERLOADS`] multiple.
    pub overload: Vec<OverloadResult>,
    /// The deadline drive.
    pub deadline: DeadlineResult,
    /// The fault storm.
    pub faults: FaultResult,
}

/// The differential oracle: every distinct stream query answered by an
/// unsharded engine on the deterministic sequential schedule.
type Oracle = HashMap<(Vec<u32>, usize), Vec<(u32, f64)>>;

fn build_oracle(index: &Arc<InvertedIndex>, stream: &[BatchQuery]) -> Oracle {
    let config = ServeConfig::planned(1);
    let mut engine = ShardedEngine::build(
        Arc::clone(index),
        config.shard_spec,
        config.frag_spec,
        config.model,
        config.policy,
        config.sparse_block,
    )
    .expect("collection shards cleanly");
    let mut distinct: Vec<BatchQuery> = Vec::new();
    let mut oracle: Oracle = HashMap::new();
    for q in stream {
        if let std::collections::hash_map::Entry::Vacant(e) = oracle.entry((q.terms.clone(), q.n)) {
            e.insert(Vec::new());
            distinct.push(q.clone());
        }
    }
    for chunk in distinct.chunks(MAX_BATCH) {
        let responses = engine
            .execute_batch_sequential(chunk, ServeMode::Planned, true)
            .expect("in-vocabulary stream");
        for (q, r) in chunk.iter().zip(responses) {
            oracle.insert((q.terms.clone(), q.n), r.top);
        }
    }
    oracle
}

/// Whether a served response matches the oracle bit for bit.
fn matches_oracle(oracle: &Oracle, q: &BatchQuery, top: &[(u32, f64)]) -> bool {
    let want = &oracle[&(q.terms.clone(), q.n)];
    top.len() == want.len()
        && top
            .iter()
            .zip(want.iter())
            .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits())
}

/// What one open-loop drive against a degradable session observed.
struct Drive {
    completed: usize,
    shed: usize,
    failed: usize,
    partial: usize,
    mismatches: usize,
    achieved_qps: f64,
    latency: Percentiles,
}

/// Uncollected tickets the driver holds before it must merge the
/// oldest. Deeper than the worker queue bound, so under `Shed` policy
/// admission — not the driver's merging — is what saturates first (the
/// oldest ticket is long served by the time the cap forces a collect,
/// and the driver keeps up with the arrival schedule).
const IN_FLIGHT_BATCHES: usize = 2 * QUEUE_DEPTH;

/// Drive `stream` open-loop at `offered_qps`, holding up to
/// [`IN_FLIGHT_BATCHES`] uncollected tickets (E18's one-deep pipeline
/// would itself backpressure the stream and never fill a bounded
/// queue), tolerating shed admissions and per-position failures.
/// Latency is arrival-to-merge for queries that were served.
fn drive(
    session: &mut ServeSession,
    stream: &[BatchQuery],
    offered_qps: f64,
    oracle: &Oracle,
) -> Drive {
    let t0 = Instant::now();
    let arrival = |i: usize| t0 + Duration::from_secs_f64(i as f64 / offered_qps);
    let mut out = Drive {
        completed: 0,
        shed: 0,
        failed: 0,
        partial: 0,
        mismatches: 0,
        achieved_qps: 0.0,
        latency: Percentiles::default(),
    };
    let mut latencies: Vec<Duration> = Vec::with_capacity(stream.len());
    let mut last_done = t0;
    let mut in_flight: std::collections::VecDeque<(PendingBatch, usize, usize)> =
        std::collections::VecDeque::with_capacity(IN_FLIGHT_BATCHES);
    let settle = |session: &mut ServeSession,
                  pending: (PendingBatch, usize, usize),
                  out: &mut Drive,
                  latencies: &mut Vec<Duration>| {
        let (pending, from, to) = pending;
        let report = session.collect(pending);
        let done = Instant::now();
        for (i, r) in (from..to).zip(report.responses.iter()) {
            match r {
                Ok(resp) => {
                    out.completed += 1;
                    latencies.push(done.saturating_duration_since(arrival(i)));
                    if resp.partial {
                        out.partial += 1;
                    } else if !matches_oracle(oracle, &stream[i], &resp.top) {
                        out.mismatches += 1;
                    }
                }
                Err(_) => out.failed += 1,
            }
        }
        done
    };
    let mut next = 0usize;
    while next < stream.len() {
        while Instant::now() < arrival(next) {
            std::hint::spin_loop();
        }
        let now = Instant::now();
        let mut end = next + 1;
        while end < stream.len() && end - next < MAX_BATCH && arrival(end) <= now {
            end += 1;
        }
        match session.enqueue(&stream[next..end]) {
            Ok(pending) => {
                in_flight.push_back((pending, next, end));
                if in_flight.len() > IN_FLIGHT_BATCHES {
                    let oldest = in_flight.pop_front().expect("non-empty");
                    last_done = settle(session, oldest, &mut out, &mut latencies);
                }
            }
            Err(e) => {
                debug_assert!(e.is_shed(), "admission can only refuse by shedding: {e}");
                out.shed += end - next;
            }
        }
        next = end;
    }
    while let Some(oldest) = in_flight.pop_front() {
        last_done = settle(session, oldest, &mut out, &mut latencies);
    }
    let elapsed = last_done.saturating_duration_since(t0);
    out.achieved_qps = out.completed as f64 / elapsed.as_secs_f64().max(1e-9);
    out.latency = Percentiles::of(&mut latencies).unwrap_or_default();
    out
}

fn stream_config(scale: Scale) -> StreamConfig {
    let (pool_size, length) = match scale {
        Scale::Quick => (30, 240),
        Scale::Full => (40, 480),
    };
    StreamConfig {
        pool: QueryConfig {
            num_queries: pool_size,
            bias: DfBias::FrequentOnly,
            seed: 0xE19,
            ..QueryConfig::default()
        },
        length,
        exponent: 1.0,
        seed: 0x57E5,
    }
}

fn session(index: &Arc<InvertedIndex>, config: ServeConfig) -> ServeSession {
    ServeSession::new(Arc::clone(index), config).expect("collection shards cleanly")
}

/// One closed-loop pass over the stream before a timed drive: settles
/// planner calibration and lazily built bound tables, so the drive
/// measures steady-state overload behavior rather than cold-start cost.
/// Small sequential chunks keep every warm-up query inside any deadline
/// budget (partial queries are excluded from planner calibration).
fn warm(svc: &mut ServeSession, stream: &[BatchQuery]) {
    for chunk in stream.chunks(4) {
        let _ = svc.submit_many_sequential(chunk);
    }
}

/// The poison fixture: an in-vocabulary term no stream query carries, so
/// arming it cannot collaterally fail clean traffic.
fn poison_term(collection: &Collection, stream: &[BatchQuery]) -> u32 {
    let used: std::collections::HashSet<u32> = stream
        .iter()
        .flat_map(|q| q.terms.iter().copied())
        .collect();
    (0..collection.df().len() as u32)
        .find(|t| collection.df()[*t as usize] > 0 && !used.contains(t))
        .expect("the vocabulary exceeds the query pool")
}

/// The fault storm: poison one shard, then crash workers on rotating
/// shards mid-stream, and prove the pool comes back exact every time.
fn fault_storm(
    index: &Arc<InvertedIndex>,
    collection: &Collection,
    stream: &[BatchQuery],
    oracle: &Oracle,
) -> FaultResult {
    silence_worker_panics();
    let mut svc = session(index, ServeConfig::planned(SHARDS));
    warm(&mut svc, stream);
    let chunks: Vec<&[BatchQuery]> = stream.chunks(MAX_BATCH).collect();

    // Poison: only the poisoned position may fail, typed and attributed
    // to the armed shard; disarming restores exactness.
    let poison = poison_term(collection, stream);
    let mut poisoned_batch = chunks[0].to_vec();
    let poisoned_pos = poisoned_batch.len() / 2;
    poisoned_batch.insert(
        poisoned_pos,
        BatchQuery {
            terms: vec![poison],
            n: TOP_N,
        },
    );
    svc.pool_mut()
        .inject_fault(1, WorkerFault::PoisonTerm(poison));
    let report = svc
        .submit_many(&poisoned_batch)
        .expect("blocking admission never sheds");
    let mut poison_failed = 0usize;
    let mut poison_clean = true;
    for (i, r) in report.responses.iter().enumerate() {
        match r {
            Err(e) if i == poisoned_pos => {
                assert!(e.is_shard_failed(), "poison must fail typed: {e}");
                poison_failed += 1;
            }
            Err(e) => panic!("clean position {i} failed under poison: {e}"),
            Ok(resp) => {
                poison_clean &= matches_oracle(oracle, &poisoned_batch[i], &resp.top);
            }
        }
    }
    svc.pool_mut().inject_fault(1, WorkerFault::ClearPoison);
    let disarmed = svc
        .submit_many(&poisoned_batch)
        .expect("blocking admission never sheds");
    // The once-poisoned position has no oracle entry (the poison term is
    // deliberately outside the stream); serving it at all proves the
    // disarm. Every other position must be exact again.
    let poison_recovered = poison_clean
        && disarmed.responses.iter().enumerate().all(|(i, r)| {
            r.as_ref().is_ok_and(|resp| {
                i == poisoned_pos || matches_oracle(oracle, &poisoned_batch[i], &resp.top)
            })
        });

    // Crash storm: kill a rotating worker before each of the first
    // CRASHES chunks. Whether the chunk's column is lost or the crash is
    // healed first is scheduling — the gates are that every worker comes
    // back and answers stay exact.
    let mut storm_failed = 0usize;
    for (k, chunk) in chunks.iter().enumerate() {
        if k < CRASHES {
            svc.pool_mut().inject_fault(k % SHARDS, WorkerFault::Crash);
        }
        let report = svc
            .submit_many(chunk)
            .expect("blocking admission never sheds");
        for (q, r) in chunk.iter().zip(report.responses.iter()) {
            match r {
                Ok(resp) => {
                    assert!(
                        matches_oracle(oracle, q, &resp.top),
                        "mid-storm response diverged from the oracle"
                    );
                }
                Err(e) => {
                    assert!(e.is_shard_failed(), "storm failures must be typed: {e}");
                    storm_failed += 1;
                }
            }
        }
    }
    // Every crash is observed by now: the post-storm passes force a heal
    // of any worker whose death the storm itself never had to notice.
    svc.pool_mut().heal();
    let post_storm_ok = chunks.iter().all(|chunk| {
        let report = svc
            .submit_many(chunk)
            .expect("blocking admission never sheds");
        chunk.iter().zip(report.responses.iter()).all(|(q, r)| {
            r.as_ref()
                .is_ok_and(|resp| matches_oracle(oracle, q, &resp.top))
        })
    });
    let respawns = svc.pool_mut().respawns();
    let recoveries = svc.pool_mut().recoveries().to_vec();
    let outcome = svc.shutdown();
    assert_eq!(
        outcome.panics.len(),
        CRASHES,
        "every injected crash leaves exactly one panic in the log"
    );
    FaultResult {
        poison_failed,
        poison_recovered,
        crashes: CRASHES,
        respawns,
        storm_failed,
        recoveries,
        post_storm_ok,
    }
}

/// Run the resilience sweep: calibrate capacity, then the shedding
/// drives, the deadline drive, and the fault storm — all against the
/// same stream and oracle.
pub fn measure(scale: Scale) -> ResilienceReport {
    let config = match scale {
        Scale::Quick => CollectionConfig::small(),
        Scale::Full => CollectionConfig::ft_scale(),
    };
    let collection = Collection::generate(config).expect("valid preset");
    let index = Arc::new(InvertedIndex::from_collection(&collection));
    let stream: Vec<BatchQuery> = generate_query_stream(&collection, &stream_config(scale))
        .expect("valid stream config")
        .into_iter()
        .map(|q| BatchQuery {
            terms: q.terms,
            n: TOP_N,
        })
        .collect();
    let oracle = build_oracle(&index, &stream);

    // Calibration: warmed single-thread capacity, as E18.
    let calib_config = ServeConfig::planned(1);
    let mut calib = ShardedEngine::build(
        Arc::clone(&index),
        calib_config.shard_spec,
        calib_config.frag_spec,
        calib_config.model,
        calib_config.policy,
        calib_config.sparse_block,
    )
    .expect("collection shards cleanly");
    for chunk in stream.chunks(MAX_BATCH) {
        let _ = calib
            .execute_batch_sequential(chunk, ServeMode::Planned, true)
            .expect("in-vocabulary stream");
    }
    let t0 = Instant::now();
    for chunk in stream.chunks(MAX_BATCH) {
        let _ = calib
            .execute_batch_sequential(chunk, ServeMode::Planned, true)
            .expect("in-vocabulary stream");
    }
    let capacity_qps = stream.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    // Shedding drives: bounded queues, refuse-don't-queue.
    let mut overload = Vec::new();
    for &multiplier in &OVERLOADS {
        let mut svc = session(
            &index,
            ServeConfig {
                queue_depth: QUEUE_DEPTH,
                admission: AdmissionPolicy::Shed,
                ..ServeConfig::planned(SHARDS)
            },
        );
        warm(&mut svc, &stream);
        let offered_qps = multiplier * capacity_qps;
        let d = drive(&mut svc, &stream, offered_qps, &oracle);
        overload.push(OverloadResult {
            multiplier,
            offered_qps,
            achieved_qps: d.achieved_qps,
            queries: stream.len(),
            completed: d.completed,
            shed: d.shed,
            failed: d.failed,
            mismatches: d.mismatches,
            latency: d.latency,
            high_water: svc.pool().queue_high_water(),
            bound: svc.pool().queue_bound(),
        });
    }

    // Deadline drive: blocking admission, budget below one batch's
    // service time, deep overload — queued queries degrade to partial.
    let budget = Duration::from_secs_f64(DEADLINE_BUDGET_BATCHES * MAX_BATCH as f64 / capacity_qps);
    let mut svc = session(
        &index,
        ServeConfig {
            deadline: Some(budget),
            ..ServeConfig::planned(SHARDS)
        },
    );
    warm(&mut svc, &stream);
    let d = drive(&mut svc, &stream, DEADLINE_OVERLOAD * capacity_qps, &oracle);
    let deadline = DeadlineResult {
        budget,
        queries: stream.len(),
        completed: d.completed,
        partial: d.partial,
        failed: d.failed,
        mismatches: d.mismatches,
    };

    let faults = fault_storm(&index, &collection, &stream, &oracle);

    ResilienceReport {
        capacity_qps,
        overload,
        deadline,
        faults,
    }
}

/// Render the report as machine-readable JSON.
pub fn to_json(scale: Scale, r: &ResilienceReport) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"e19\",");
    let _ = writeln!(out, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(out, "  \"top_n\": {TOP_N},");
    let _ = writeln!(out, "  \"shards\": {SHARDS},");
    let _ = writeln!(out, "  \"max_batch\": {MAX_BATCH},");
    let _ = writeln!(out, "  \"queue_depth\": {QUEUE_DEPTH},");
    let _ = writeln!(out, "  \"capacity_qps\": {:.0},", r.capacity_qps);
    let _ = writeln!(out, "  \"overload\": [");
    for (i, o) in r.overload.iter().enumerate() {
        let comma = if i + 1 < r.overload.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"multiplier\": {}, \"offered_qps\": {:.0}, \"achieved_qps\": {:.0}, \
             \"queries\": {}, \"completed\": {}, \"shed\": {}, \"shed_pct\": {:.1}, \
             \"failed\": {}, \"mismatches\": {}, \"p50_us\": {}, \"p99_us\": {}, \
             \"high_water\": {}, \"bound\": {}}}{comma}",
            o.multiplier,
            o.offered_qps,
            o.achieved_qps,
            o.queries,
            o.completed,
            o.shed,
            100.0 * o.shed as f64 / o.queries.max(1) as f64,
            o.failed,
            o.mismatches,
            o.latency.p50.as_micros(),
            o.latency.p99.as_micros(),
            o.high_water,
            o.bound,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"deadline\": {{\"budget_us\": {}, \"queries\": {}, \"completed\": {}, \
         \"partial\": {}, \"partial_pct\": {:.1}, \"failed\": {}, \"mismatches\": {}}},",
        r.deadline.budget.as_micros(),
        r.deadline.queries,
        r.deadline.completed,
        r.deadline.partial,
        100.0 * r.deadline.partial as f64 / r.deadline.queries.max(1) as f64,
        r.deadline.failed,
        r.deadline.mismatches,
    );
    let recovery_max = r
        .faults
        .recoveries
        .iter()
        .max()
        .copied()
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "  \"faults\": {{\"poison_failed\": {}, \"poison_recovered\": {}, \"crashes\": {}, \
         \"respawns\": {}, \"storm_failed\": {}, \"recovery_max_us\": {}, \
         \"post_storm_ok\": {}}}",
        r.faults.poison_failed,
        r.faults.poison_recovered,
        r.faults.crashes,
        r.faults.respawns,
        r.faults.storm_failed,
        recovery_max.as_micros(),
        r.faults.post_storm_ok,
    );
    out.push_str("}\n");
    out
}

/// Enforce every resilience gate on a measured report.
pub fn enforce_gates(r: &ResilienceReport) {
    for o in &r.overload {
        assert!(
            o.high_water <= o.bound,
            "e19 gate: queue high-water {} exceeded bound {} at {}x",
            o.high_water,
            o.bound,
            o.multiplier
        );
        assert_eq!(
            o.failed, 0,
            "e19 gate: {} in-flight failures with no faults armed at {}x",
            o.failed, o.multiplier
        );
        assert_eq!(
            o.mismatches, 0,
            "e19 gate: {} served responses diverged from the oracle at {}x",
            o.mismatches, o.multiplier
        );
        assert_eq!(
            o.completed + o.shed,
            o.queries,
            "e19 gate: every arrival is either served or shed at {}x",
            o.multiplier
        );
    }
    let worst = r.overload.last().expect("non-empty overload sweep");
    assert!(
        worst.shed > 0,
        "e19 gate: {}x capacity against bound-{} queues never shed",
        worst.multiplier,
        worst.bound
    );
    assert_eq!(
        r.deadline.failed, 0,
        "e19 gate: deadlines must degrade, never error"
    );
    assert_eq!(
        r.deadline.mismatches, 0,
        "e19 gate: full-budget responses diverged from the oracle"
    );
    assert!(
        r.deadline.partial > 0,
        "e19 gate: a {:?} budget at {DEADLINE_OVERLOAD}x capacity never expired",
        r.deadline.budget
    );
    assert_eq!(
        r.deadline.completed, r.deadline.queries,
        "e19 gate: blocking admission serves every arrival"
    );
    assert_eq!(
        r.faults.poison_failed, 1,
        "e19 gate: exactly the poisoned position fails"
    );
    assert!(
        r.faults.poison_recovered,
        "e19 gate: disarmed pool is exact"
    );
    assert_eq!(
        r.faults.respawns, r.faults.crashes,
        "e19 gate: one respawn per injected crash"
    );
    assert_eq!(
        r.faults.recoveries.len(),
        r.faults.crashes,
        "e19 gate: every respawn records its recovery time"
    );
    assert!(
        r.faults.post_storm_ok,
        "e19 gate: the post-storm pool diverged from the oracle"
    );
}

/// Run E19, emit `BENCH_resilience.json`, and enforce the gates.
pub fn run(scale: Scale) -> Table {
    let report = measure(scale);

    let json = to_json(scale, &report);
    let json_path = std::env::var("MOA_BENCH_RESILIENCE_JSON")
        .unwrap_or_else(|_| "BENCH_resilience.json".to_owned());
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("e19: could not write {json_path}: {e}");
    }

    let mut t = Table::new(
        "E19: resilience under overload and injected faults",
        &[
            "drive", "offered", "served", "shed", "partial", "failed", "p99", "note",
        ],
    );
    for o in &report.overload {
        t.row(vec![
            format!("shed {}x", o.multiplier),
            format!("{:.0}/s", o.offered_qps),
            o.completed.to_string(),
            format!(
                "{} ({:.0}%)",
                o.shed,
                100.0 * o.shed as f64 / o.queries.max(1) as f64
            ),
            "0".to_string(),
            o.failed.to_string(),
            fmt_duration(o.latency.p99),
            format!("queue high-water {}/{}", o.high_water, o.bound),
        ]);
    }
    t.row(vec![
        format!("deadline {DEADLINE_OVERLOAD}x"),
        format!("{:.0}/s", DEADLINE_OVERLOAD * report.capacity_qps),
        report.deadline.completed.to_string(),
        "0".to_string(),
        format!(
            "{} ({:.0}%)",
            report.deadline.partial,
            100.0 * report.deadline.partial as f64 / report.deadline.queries.max(1) as f64
        ),
        report.deadline.failed.to_string(),
        "-".to_string(),
        format!("budget {}", fmt_duration(report.deadline.budget)),
    ]);
    let recovery_max = report
        .faults
        .recoveries
        .iter()
        .max()
        .copied()
        .unwrap_or_default();
    t.row(vec![
        "fault storm".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!(
            "{}+{}",
            report.faults.poison_failed, report.faults.storm_failed
        ),
        "-".to_string(),
        format!(
            "{} crashes, {} respawns, worst recovery {}",
            report.faults.crashes,
            report.faults.respawns,
            fmt_duration(recovery_max)
        ),
    ]);
    t.note(format!(
        "open-loop Zipf stream of {} arrivals at multiples of the calibrated {:.0} q/s \
         single-thread capacity; {SHARDS} shards, admission batches capped at {MAX_BATCH}",
        report.deadline.queries, report.capacity_qps
    ));
    t.note(format!(
        "shed drives run bound-{QUEUE_DEPTH} worker queues under AdmissionPolicy::Shed: a full \
         queue refuses the batch (typed, retriable, nothing executed) instead of queueing it"
    ));
    t.note(
        "the deadline drive budgets each query below one batch service time: expired queries \
         return Ok marked partial (exact prefix, honest counters), never an error",
    );
    t.note(
        "fault storm: a poisoned query panics its worker inside the per-query guard (only that \
         position fails), then crashes kill rotating workers outside it; each respawns over its \
         retained shard",
    );
    t.note(
        "gates (enforced): high-water <= bound; the 3x drive sheds; every non-shed non-partial \
         response bit-identical to the unsharded oracle; deadline drive errors nothing; one \
         respawn per crash; post-storm pool exact",
    );
    t.note(format!("machine-readable copy written to {json_path}"));

    enforce_gates(&report);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e19_gates_hold_at_quick_scale() {
        let report = measure(Scale::Quick);
        enforce_gates(&report);
        // Shape beyond the gates: both multiples measured and recovery
        // times recorded. (Shed *counts* across multiples are not
        // compared: on a contended host the milder drive can shed more.)
        assert_eq!(report.overload.len(), OVERLOADS.len());
        assert!(report.capacity_qps > 0.0);
        for o in &report.overload {
            assert!(o.achieved_qps > 0.0);
            assert!(o.latency.p50 <= o.latency.p99);
        }
        let json = to_json(Scale::Quick, &report);
        assert!(json.contains("\"experiment\": \"e19\""));
        assert!(json.contains("\"deadline\""));
        assert!(json.contains("\"faults\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
