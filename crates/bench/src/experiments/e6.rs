//! E6 — STOP AFTER placement policies (Carey & Kossmann, §2 \[CK98\]).
//!
//! A `STOP AFTER n` above a filtering predicate: the conservative policy
//! filters everything then stops; the aggressive policy stops early and
//! restarts when the cardinality estimate was optimistic. The "braking
//! distance" is the work done beyond the theoretical minimum.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use moa_topn::{aggressive, conservative, scan_stop};

use crate::harness::{Scale, Table};

/// Run E6.
pub fn run(scale: Scale) -> Table {
    let n_rows = match scale {
        Scale::Quick => 20_000usize,
        Scale::Full => 200_000,
    };
    let n = 20usize;
    let mut rng = StdRng::seed_from_u64(0x0E6);
    let input: Vec<(u32, f64)> = (0..n_rows as u32).map(|i| (i, rng.gen::<f64>())).collect();

    let mut t = Table::new(
        "E6: STOP AFTER policies — braking distance (top-20 above a predicate)",
        &[
            "true pass rate",
            "estimate",
            "policy",
            "tuples processed",
            "restarts",
            "results",
        ],
    );

    for &(true_rate, modulo) in &[(0.5f64, 2u32), (0.1, 10), (0.01, 100)] {
        let pred = move |obj: u32| obj.is_multiple_of(modulo);
        // Conservative baseline.
        let cons = conservative(&input, n, pred);
        t.row(vec![
            format!("{true_rate}"),
            "-".into(),
            "conservative".into(),
            cons.tuples_processed.to_string(),
            cons.restarts.to_string(),
            cons.items.len().to_string(),
        ]);
        // Aggressive with an accurate and an optimistic estimate.
        for (est_label, est) in [
            ("accurate", true_rate),
            ("optimistic 10x", true_rate * 10.0),
        ] {
            let aggr = aggressive(&input, n, est.min(1.0), 1.5, pred);
            assert_eq!(aggr.items, cons.items, "policies disagree");
            t.row(vec![
                format!("{true_rate}"),
                est_label.into(),
                "aggressive".into(),
                aggr.tuples_processed.to_string(),
                aggr.restarts.to_string(),
                aggr.items.len().to_string(),
            ]);
        }
    }

    // Scan-stop reference: already-sorted input needs exactly n pulls.
    let mut sorted = input.clone();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
    let ss = scan_stop(&sorted, n);
    t.note(format!(
        "scan-stop on pre-sorted input processes exactly n = {} tuples (the braking-distance minimum)",
        ss.tuples_processed
    ));
    t.note("claim [CK98]: aggressive placement with a good estimate processes a small multiple of n; optimistic estimates cause restarts");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_aggressive_with_good_estimate_beats_conservative() {
        let t = run(Scale::Quick);
        // Rows per rate: conservative, accurate, optimistic.
        for chunk in t.rows.chunks(3) {
            let rate: f64 = chunk[0][0].parse().unwrap();
            let cons: usize = chunk[0][3].parse().unwrap();
            let accurate: usize = chunk[1][3].parse().unwrap();
            // The theoretical minimum is ~n/rate tuples; aggressive should
            // stay within a small multiple of it and well below the
            // conservative full pass.
            assert!(
                accurate < cons,
                "aggressive {accurate} not < conservative {cons}"
            );
            let minimum = (20.0 / rate).ceil();
            assert!(
                (accurate as f64) <= minimum * 4.0,
                "aggressive {accurate} far above braking minimum {minimum} at rate {rate}"
            );
        }
    }

    #[test]
    fn e6_optimistic_estimates_restart() {
        let t = run(Scale::Quick);
        let any_restarts = t
            .rows
            .iter()
            .filter(|r| r[1] == "optimistic 10x")
            .any(|r| r[4].parse::<usize>().unwrap() >= 1);
        assert!(any_restarts, "expected at least one restart row");
    }
}
