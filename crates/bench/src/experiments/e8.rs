//! E8 — cost model accuracy and plan choice (§3 Step 3).
//!
//! The centralized cost model predicts the same abstract unit the executor
//! counts. Over a suite of plans spanning every extension we report
//! predicted vs measured work and the rank correlation between them, plus
//! whether cost-based choice picks the measured-cheaper plan on
//! Example-1-style pairs.

use moa_core::{Env, Expr, OptimizerConfig, Session, Value};

use crate::harness::{Scale, Table};

fn plan_suite(scale: Scale) -> Vec<(&'static str, Expr)> {
    let n: i64 = match scale {
        Scale::Quick => 10_000,
        Scale::Full => 100_000,
    };
    let sorted = || Expr::constant(Value::int_list(0..n));
    let mut plans = vec![
        (
            "select scan 10%",
            Expr::list_select(sorted(), Value::Int(0), Value::Int(n / 10)),
        ),
        (
            "select_ordered 10%",
            Expr::apply(
                moa_core::ExtensionId::List,
                "select_ordered",
                vec![
                    sorted(),
                    Expr::Const(Value::Int(0)),
                    Expr::Const(Value::Int(n / 10)),
                ],
            ),
        ),
        ("projecttobag", Expr::projecttobag(sorted())),
        ("topn 10", Expr::list_topn(sorted(), 10)),
        ("firstn 10", Expr::list_firstn(sorted(), 10)),
        ("sum", Expr::list_sum(sorted())),
        ("length", Expr::list_length(sorted())),
        (
            "bag count of projection",
            Expr::bag_count(Expr::projecttobag(sorted())),
        ),
        (
            "set select of projection",
            Expr::set_select(
                Expr::projecttoset(Expr::projecttobag(sorted())),
                Value::Int(10),
                Value::Int(500),
            ),
        ),
    ];
    // A nested pipeline.
    plans.push((
        "select+topn pipeline",
        Expr::list_topn(
            Expr::list_select(sorted(), Value::Int(0), Value::Int(n / 2)),
            25,
        ),
    ));
    plans
}

/// Spearman rank correlation between two equally long samples.
fn spearman(a: &[f64], b: &[f64]) -> f64 {
    fn ranks(v: &[f64]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
        let mut r = vec![0.0; v.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank as f64;
        }
        r
    }
    let (ra, rb) = (ranks(a), ranks(b));
    let n = a.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut num = 0.0;
    let (mut da, mut db) = (0.0, 0.0);
    for i in 0..a.len() {
        num += (ra[i] - mean) * (rb[i] - mean);
        da += (ra[i] - mean).powi(2);
        db += (rb[i] - mean).powi(2);
    }
    if da == 0.0 || db == 0.0 {
        return 0.0;
    }
    num / (da * db).sqrt()
}

/// Run E8.
pub fn run(scale: Scale) -> Table {
    let mut session = Session::new();
    // Evaluate plans exactly as written (no rewriting), so the estimate is
    // compared against the plan it describes.
    session.set_optimizer_config(OptimizerConfig::disabled());

    let mut t = Table::new(
        "E8: cost model — predicted vs measured work",
        &["plan", "predicted", "measured", "ratio"],
    );

    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    for (label, expr) in plan_suite(scale) {
        let est = session.estimate(&expr).expect("estimable plan");
        let rep = session.run(&expr, &Env::new()).expect("valid plan");
        let ratio = est.cost / (rep.work.max(1) as f64);
        predicted.push(est.cost);
        measured.push(rep.work as f64);
        t.row(vec![
            label.into(),
            format!("{:.0}", est.cost),
            rep.work.to_string(),
            format!("{ratio:.2}"),
        ]);
    }

    let rho = spearman(&predicted, &measured);
    t.note(format!(
        "Spearman rank correlation predicted vs measured: {rho:.3} — {}",
        if rho > 0.8 {
            "HIGH (plan ordering is predicted reliably)"
        } else {
            "LOW"
        }
    ));

    // Plan-choice check on Example-1 pairs at three sizes.
    let mut correct = 0usize;
    let mut total = 0usize;
    for n in [1_000i64, 10_000, 50_000] {
        let naive = Expr::bag_select(
            Expr::projecttobag(Expr::constant(Value::int_list(0..n))),
            Value::Int(n / 4),
            Value::Int(n / 2),
        );
        let (rewritten, _) = Session::new().optimize(&naive);
        let est_naive = session.estimate(&naive).unwrap().cost;
        let est_rewritten = session.estimate(&rewritten).unwrap().cost;
        let work_naive = session.run(&naive, &Env::new()).unwrap().work;
        let work_rewritten = session.run(&rewritten, &Env::new()).unwrap().work;
        total += 1;
        if (est_rewritten < est_naive) == (work_rewritten < work_naive) {
            correct += 1;
        }
    }
    t.note(format!(
        "plan choice on Example-1 pairs matches the measured winner in {correct}/{total} cases"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_correlation_is_high() {
        let t = run(Scale::Quick);
        let note = t.notes.iter().find(|n| n.contains("Spearman")).unwrap();
        assert!(note.contains("HIGH"), "{note}");
    }

    #[test]
    fn e8_plan_choice_is_perfect_on_example1() {
        let t = run(Scale::Quick);
        let note = t.notes.iter().find(|n| n.contains("plan choice")).unwrap();
        assert!(note.contains("3/3"), "{note}");
    }

    #[test]
    fn spearman_sanity() {
        assert!((spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-9);
        assert!((spearman(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]) + 1.0).abs() < 1e-9);
    }
}
