//! E10 — the fragment design space: volume-budget sweep (§3 Step 1).
//!
//! Sweeps the fragment-A volume budget from 2% to 100% and reports, for the
//! unsafe A-only strategy, scanned volume, time, MAP, and overlap with the
//! full ranking. Speed falls and quality rises monotonically with the
//! budget; the knee of the quality curve shows how much ranking signal the
//! rare terms carry — the design insight behind the paper's Step 1.

use moa_ir::{FragmentSpec, Strategy, SwitchPolicy};

use crate::experiments::fixture::RetrievalFixture;
use crate::harness::{fmt_duration, Scale, Table};

/// Run E10.
pub fn run(scale: Scale) -> Table {
    let f = RetrievalFixture::build(scale);
    let policy = SwitchPolicy::default();

    // Reference: full scan on any fragmentation (identical results).
    let frag_ref = f.fragment(FragmentSpec::VolumeFraction(0.5));
    let full = f.run_strategy(&frag_ref, Strategy::FullScan, policy);
    let map_full = f.map(&full);

    let mut t = Table::new(
        "E10: fragment volume-budget sweep — A-only strategy",
        &[
            "A volume budget",
            "actual A volume",
            "A term share",
            "postings scanned",
            "batch time",
            "MAP",
            "overlap@20",
        ],
    );

    for &budget in &[0.02f64, 0.05, 0.10, 0.20, 0.35, 0.50, 0.75, 1.00] {
        let frag = f.fragment(FragmentSpec::VolumeFraction(budget));
        let out = f.run_strategy(&frag, Strategy::AOnly { use_a_index: false }, policy);
        t.row(vec![
            format!("{:.0}%", budget * 100.0),
            format!("{:.1}%", frag.volume_fraction_a() * 100.0),
            format!("{:.1}%", frag.term_fraction_a() * 100.0),
            out.postings_scanned.to_string(),
            fmt_duration(out.elapsed),
            format!("{:.4}", f.map(&out)),
            format!("{:.3}", f.mean_overlap(&full, &out, 20)),
        ]);
    }

    t.note(format!("full-scan reference MAP: {map_full:.4}"));
    t.note("shape: scanned volume rises with the budget; quality (MAP, overlap) rises monotonically toward the full-scan reference");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn e10_volume_and_quality_monotone() {
        let t = run(Scale::Quick);
        let mut prev_volume = -1.0f64;
        let mut first_overlap = None;
        let mut last_overlap = 0.0;
        for row in &t.rows {
            let vol = pct(&row[1]);
            assert!(vol + 1e-9 >= prev_volume, "volume not monotone");
            prev_volume = vol;
            let overlap: f64 = row[6].parse().unwrap();
            first_overlap.get_or_insert(overlap);
            last_overlap = overlap;
        }
        assert!(last_overlap >= first_overlap.unwrap());
        // The 100% budget equals the full reference.
        assert!((last_overlap - 1.0).abs() < 1e-9);
    }
}
