//! E7 — probabilistic top-N (Donjerkovic & Ramakrishnan, §2 \[DR99\]).
//!
//! The histogram-derived cutoff is swept over confidence levels. Low
//! confidence gives an aggressive (high) cutoff — few survivors, cheap sort,
//! but restarts when the estimate misses; high confidence rarely restarts
//! but over-admits survivors. With a restart penalty, expected total cost
//! has an interior minimum — the original paper's central figure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use moa_storage::EquiWidthHistogram;
use moa_topn::prob_topn;

use crate::harness::{Scale, Table};

/// Run E7.
pub fn run(scale: Scale) -> Table {
    let n_rows = match scale {
        Scale::Quick => 20_000usize,
        Scale::Full => 200_000,
    };
    let n = 50usize;
    let trials = 20usize;

    let mut t = Table::new(
        "E7: probabilistic top-N — confidence sweep (histogram from a 1% sample)",
        &[
            "confidence",
            "avg survivors",
            "restart rate",
            "avg tuples scanned",
            "correct",
        ],
    );

    let mut rng = StdRng::seed_from_u64(0x0E7);
    for &conf in &[0.5f64, 0.7, 0.9, 0.99, 0.999] {
        let mut survivors_sum = 0usize;
        let mut restarts = 0usize;
        let mut scanned_sum = 0usize;
        let mut all_correct = true;
        for _ in 0..trials {
            // Fresh data per trial; the histogram sees only a 1% sample, so
            // its cutoff estimate carries sampling error (as in a real
            // catalog). The sample histogram is scaled to population size
            // (each sampled value stands for 100 rows), as an optimizer's
            // statistics module would.
            let input: Vec<(u32, f64)> = (0..n_rows as u32)
                .map(|i| (i, rng.gen::<f64>().powi(2) * 1000.0))
                .collect();
            let sample: Vec<f64> = input
                .iter()
                .filter(|&&(i, _)| i % 100 == 0)
                .flat_map(|&(_, s)| std::iter::repeat_n(s, 100))
                .collect();
            let hist = EquiWidthHistogram::build(&sample, 50).expect("non-empty sample");
            let r = prob_topn(&input, n, &hist, conf).expect("valid confidence");
            survivors_sum += r.first_pass_survivors;
            restarts += r.restarts.min(1);
            scanned_sum += r.tuples_scanned;
            let naive = moa_topn::topn(input.clone(), n);
            all_correct &= r.items == naive;
        }
        t.row(vec![
            format!("{conf}"),
            (survivors_sum / trials).to_string(),
            format!("{:.2}", restarts as f64 / trials as f64),
            (scanned_sum / trials).to_string(),
            if all_correct {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }

    t.note("claim [DR99]: results are always exact; lower confidence admits fewer survivors but risks restarts — expected cost trades the two");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_all_configurations_are_correct() {
        let t = run(Scale::Quick);
        assert!(t.rows.iter().all(|r| r[4] == "yes"));
    }

    #[test]
    fn e7_higher_confidence_admits_more_survivors() {
        let t = run(Scale::Quick);
        let first: usize = t.rows.first().unwrap()[1].parse().unwrap();
        let last: usize = t.rows.last().unwrap()[1].parse().unwrap();
        assert!(last >= first, "survivors {first} -> {last} not increasing");
    }

    #[test]
    fn e7_higher_confidence_restarts_less() {
        let t = run(Scale::Quick);
        let first: f64 = t.rows.first().unwrap()[2].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[2].parse().unwrap();
        assert!(last <= first + 1e-9);
    }
}
