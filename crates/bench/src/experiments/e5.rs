//! E5 — bound-administration top-N algorithms vs the naive baseline (§2).
//!
//! The paper imports from Fagin's line of work the idea of "maintaining the
//! proper upper and lower bound administration … ending the processing as
//! soon as it is certain that the required top N answers have been
//! computed". FA, TA and NRA are compared against the full-scan baseline on
//! multi-feature workloads of varying list correlation.

use moa_corpus::{Correlation, FeatureConfig, FeatureLists};
use moa_topn::{fagin_topn, nra_topn, ta_topn, Agg, InMemoryLists};

use crate::harness::{Scale, Table};

fn to_lists(fl: &FeatureLists) -> InMemoryLists {
    let grades: Vec<Vec<f64>> = (0..fl.num_lists())
        .map(|i| {
            (0..fl.num_objects() as u32)
                .map(|o| fl.grade(i, o))
                .collect()
        })
        .collect();
    InMemoryLists::from_grades(grades)
}

/// Run E5.
pub fn run(scale: Scale) -> Table {
    let n_obj = match scale {
        Scale::Quick => 10_000,
        Scale::Full => 100_000,
    };
    let m = 3usize;

    let mut t = Table::new(
        "E5: FA / TA / NRA early termination vs naive full scan (m=3 lists, sum aggregation)",
        &[
            "correlation",
            "N",
            "naive accesses",
            "FA sorted+random",
            "TA sorted+random",
            "NRA sorted",
        ],
    );

    let correlations = [
        ("independent", Correlation::Independent),
        ("correlated(0.8)", Correlation::Correlated(0.8)),
        ("anti(0.8)", Correlation::AntiCorrelated(0.8)),
    ];
    let ns: &[usize] = &[1, 10, 100];

    for (label, corr) in correlations {
        let fl = FeatureLists::generate(&FeatureConfig {
            num_objects: n_obj,
            num_lists: m,
            correlation: corr,
            seed: 0x0E5,
        })
        .expect("valid feature config");
        let lists = to_lists(&fl);
        for &n in ns {
            let naive = n_obj * m; // full scan touches every grade once
            let fa = fagin_topn(&lists, n, &Agg::Sum);
            let ta = ta_topn(&lists, n, &Agg::Sum);
            let nra = nra_topn(&lists, n, &Agg::Sum);
            // Correctness cross-check against the oracle on every cell.
            let oracle = lists.topk_oracle(n, &Agg::Sum);
            assert_eq!(fa.items, oracle, "FA wrong for {label} N={n}");
            assert_eq!(ta.items, oracle, "TA wrong for {label} N={n}");
            let mut nra_ids: Vec<u32> = nra.items.iter().map(|&(o, _)| o).collect();
            let mut oracle_ids: Vec<u32> = oracle.iter().map(|&(o, _)| o).collect();
            nra_ids.sort_unstable();
            oracle_ids.sort_unstable();
            assert_eq!(nra_ids, oracle_ids, "NRA wrong set for {label} N={n}");

            t.row(vec![
                label.into(),
                n.to_string(),
                naive.to_string(),
                format!("{}+{}", fa.stats.sorted_accesses, fa.stats.random_accesses),
                format!("{}+{}", ta.stats.sorted_accesses, ta.stats.random_accesses),
                nra.stats.sorted_accesses.to_string(),
            ]);
        }
    }

    t.note("claim: bound administration allows 'ending the processing as soon as it is certain' — FA/TA/NRA access counts are far below the naive scan for small N");
    t.note(
        "TA halts no later than FA (instance optimality); anti-correlated lists are the worst case",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_total(cell: &str) -> usize {
        cell.split('+').map(|p| p.parse::<usize>().unwrap()).sum()
    }

    #[test]
    fn e5_early_termination_beats_naive() {
        let t = run(Scale::Quick);
        for row in &t.rows {
            let n: usize = row[1].parse().unwrap();
            let naive: usize = row[2].parse().unwrap();
            let ta = parse_total(&row[4]);
            // Anti-correlated lists are the documented worst case for
            // bound administration; the ≪-naive claim applies to the
            // independent and correlated regimes.
            if n <= 10 && !row[0].starts_with("anti") {
                assert!(
                    ta < naive / 2,
                    "TA {ta} not ≪ naive {naive} for N={n} ({})",
                    row[0]
                );
            }
            // Even in the worst case TA never exceeds the naive scan plus
            // its random-access completions.
            assert!(ta <= naive * 2, "TA {ta} pathological for {}", row[0]);
        }
    }

    #[test]
    fn e5_anticorrelation_costs_more() {
        let t = run(Scale::Quick);
        // Compare TA accesses for N=10 between correlated and anti rows.
        let ta_at = |corr: &str| -> usize {
            t.rows
                .iter()
                .find(|r| r[0] == corr && r[1] == "10")
                .map(|r| parse_total(&r[4]))
                .unwrap()
        };
        assert!(ta_at("anti(0.8)") > ta_at("correlated(0.8)"));
    }
}
