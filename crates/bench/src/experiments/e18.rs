//! E18 — sustained-load serving: worker pool vs scoped threads vs
//! sequential.
//!
//! The serving question E16 cannot answer: not "how fast is one batch"
//! but "how many queries per second does each runtime sustain, and what
//! latency do queries see, under a realistic arrival process?" An
//! open-loop load generator replays a Zipf-popularity query stream (hot
//! queries repeat per their rank, via `moa_corpus::generate_query_stream`)
//! against three runtimes at every shard count:
//!
//! * **pool** — the persistent shard worker pool behind
//!   `ServeSession::enqueue`/`collect`, driven pipelined: the next
//!   admission batch is enqueued *before* the previous batch is merged,
//!   so merge and bookkeeping overlap shard service. The pool's
//!   admission queue also **coalesces** duplicate in-batch queries
//!   (identical terms and n execute once, the answer fans out — see
//!   `moa_serve::ShardPool::submit`), which under a Zipf stream is its
//!   dominant structural advantage: the hotter the traffic and the
//!   deeper the backlog, the larger the admitted batches and the more
//!   work coalescing removes. Backpressure makes the pool *faster*,
//! * **scoped** — the retired scoped-thread-per-batch path
//!   (`ShardedEngine::execute_batch`): P thread spawns + joins per
//!   admitted batch, kept measurable as the regression baseline,
//! * **sequential** — every admitted batch served on the driver thread
//!   (`ShardedEngine::execute_batch_sequential`): the single-core floor
//!   any parallel runtime must beat to justify itself.
//!
//! The generator is *open-loop*: arrival `i` is due at `i / offered_qps`
//! regardless of how the server is coping — the discipline that exposes
//! queueing (a closed loop would politely slow down and hide it).
//! Arrivals due at the same poll are admitted as one batch, capped at
//! [`MAX_BATCH`]: the cap is the backpressure knob a real front end has,
//! and it keeps unbounded admission batches from amortizing the scoped
//! path's spawn cost into invisibility. Offered load is calibrated to
//! [`OVERLOAD`] × the measured single-thread capacity, so the sequential
//! baseline always saturates and the parallel runtimes have queues to
//! eat. Per-query latency is admission-to-merge (arrival timestamp to
//! the completion of the batch that carried the query), summarized by
//! nearest-rank p50/p95/p99/max; each runtime reports its best replay
//! (highest achieved throughput) of [`REPLAYS`].
//!
//! Gates (enforced here and by CI's E18 smoke): at **every** shard
//! count, pool throughput ≥ the sequential baseline and ≥ the scoped
//! path, and pool p99 latency no worse than the scoped path's (with
//! tolerance for shared-host noise). The committed figures live in
//! `BENCH_throughput.json`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use moa_corpus::{
    generate_query_stream, Collection, CollectionConfig, DfBias, QueryConfig, StreamConfig,
};
use moa_ir::InvertedIndex;
use moa_serve::{BatchQuery, PendingBatch, ServeConfig, ServeMode, ServeSession, ShardedEngine};

use crate::harness::{fmt_duration, Percentiles, Scale, Table};

/// Ranking depth (matches E16's serving posture).
const TOP_N: usize = 100;

/// Shard counts swept: the unsharded engine plus the sharded
/// configurations where the scoped-thread path measured its 0.44–0.76×
/// regression.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Admission batch cap: arrivals due at the same poll are admitted
/// together, at most this many. The front end's backpressure knob — and
/// the honesty knob of the scoped-vs-pool comparison (unbounded batches
/// would amortize the scoped path's per-batch spawn cost toward zero at
/// exactly the loads where it hurts).
const MAX_BATCH: usize = 32;

/// Offered load as a multiple of measured single-thread capacity. Above
/// 1 so the sequential baseline saturates (its achieved throughput is
/// its capacity) and the parallel runtimes face real queueing.
const OVERLOAD: f64 = 1.75;

/// Replays per runtime × shard count; the best replay (highest achieved
/// throughput) is reported — minimum-noise statistic on a shared host.
const REPLAYS: usize = 5;

/// Identifies one measured serving runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Runtime {
    /// Persistent worker pool, pipelined enqueue/collect.
    Pool,
    /// Scoped thread per shard per batch (the retired serving path).
    Scoped,
    /// All shards on the driver thread.
    Sequential,
}

impl Runtime {
    fn name(self) -> &'static str {
        match self {
            Runtime::Pool => "pool",
            Runtime::Scoped => "scoped",
            Runtime::Sequential => "sequential",
        }
    }
}

/// One runtime × shard count measurement (its best replay).
pub struct ThroughputResult {
    /// Shard count.
    pub shards: usize,
    /// The runtime measured.
    pub runtime: Runtime,
    /// Offered arrival rate (queries/sec).
    pub offered_qps: f64,
    /// Achieved completion rate (queries/sec).
    pub achieved_qps: f64,
    /// Arrival-to-merge latency percentiles.
    pub latency: Percentiles,
    /// Queries in the stream.
    pub queries: usize,
    /// Distinct `(terms, n)` keys in the stream — the cross-batch repeat
    /// structure a result cache (E21) can exploit: `1 - distinct/total`
    /// of all arrivals are repeats of an earlier key.
    pub distinct_keys: usize,
    /// Queries answered by admission coalescing during the best replay
    /// (pool only; the per-position baselines always execute everything).
    pub coalesced: usize,
    /// Whether the runtime fell measurably behind the offered rate
    /// (achieved < 95% of offered): its achieved figure is then its
    /// capacity, not an artifact of the arrival schedule.
    pub saturated: bool,
}

/// What one replay of the stream measured.
struct Replay {
    achieved_qps: f64,
    latency: Percentiles,
}

/// A batch in flight on some runtime.
enum Pending {
    /// Pool admission: redeemable later, workers already serving.
    Pool(PendingBatch),
    /// Synchronous runtimes finished before admission returned; the
    /// completion instant was captured then.
    Done(Instant),
}

/// One serving runtime wired for the driver. Sessions/engines persist
/// across replays, so calibration and lazily built structures stay warm.
enum Server<'a> {
    Pool(&'a mut ServeSession),
    Scoped(&'a mut ShardedEngine),
    Sequential(&'a mut ShardedEngine),
}

impl Server<'_> {
    /// Lifetime coalesced-query counter (0 on the per-position runtimes);
    /// replay deltas attribute coalescing to the replay that earned it.
    fn coalesced_total(&self) -> usize {
        match self {
            Server::Pool(s) => s.stats().queries_coalesced,
            Server::Scoped(_) | Server::Sequential(_) => 0,
        }
    }

    fn admit(&mut self, batch: &[BatchQuery]) -> Pending {
        match self {
            Server::Pool(s) => {
                Pending::Pool(s.enqueue(batch).expect("blocking admission never sheds"))
            }
            Server::Scoped(e) => {
                e.execute_batch(batch, ServeMode::Planned, true)
                    .expect("in-vocabulary stream");
                Pending::Done(Instant::now())
            }
            Server::Sequential(e) => {
                e.execute_batch_sequential(batch, ServeMode::Planned, true)
                    .expect("in-vocabulary stream");
                Pending::Done(Instant::now())
            }
        }
    }

    fn finish(&mut self, pending: Pending) -> Instant {
        match pending {
            Pending::Done(at) => at,
            Pending::Pool(p) => {
                let Server::Pool(s) = self else {
                    unreachable!("pool tickets only come from the pool server");
                };
                let _ = s.collect(p);
                Instant::now()
            }
        }
    }
}

/// Drive one open-loop replay of `stream` at `offered_qps` against
/// `server`. At most one batch is left in flight: the driver admits the
/// next batch, *then* collects the previous — on the pool that overlaps
/// merge/bookkeeping with shard service; on the synchronous runtimes
/// collection is free (the work happened at admission).
fn drive(server: &mut Server<'_>, stream: &[BatchQuery], offered_qps: f64) -> Replay {
    let t0 = Instant::now();
    let arrival = |i: usize| t0 + Duration::from_secs_f64(i as f64 / offered_qps);
    let mut latencies: Vec<Duration> = Vec::with_capacity(stream.len());
    let mut in_flight: Option<(Pending, usize, usize)> = None;
    let mut last_done = t0;
    let settle = |done: Instant, from: usize, to: usize, lat: &mut Vec<Duration>| {
        for i in from..to {
            lat.push(done.saturating_duration_since(arrival(i)));
        }
        done
    };
    let mut next = 0usize;
    while next < stream.len() {
        // Open loop: spin until the next arrival is due, whether or not
        // the server has caught up.
        while Instant::now() < arrival(next) {
            std::hint::spin_loop();
        }
        let now = Instant::now();
        let mut end = next + 1;
        while end < stream.len() && end - next < MAX_BATCH && arrival(end) <= now {
            end += 1;
        }
        let pending = server.admit(&stream[next..end]);
        if let Some((prev, from, to)) = in_flight.take() {
            let done = server.finish(prev);
            last_done = settle(done, from, to, &mut latencies);
        }
        in_flight = Some((pending, next, end));
        next = end;
    }
    if let Some((prev, from, to)) = in_flight.take() {
        let done = server.finish(prev);
        last_done = settle(done, from, to, &mut latencies);
    }
    let elapsed = last_done.saturating_duration_since(t0);
    Replay {
        achieved_qps: stream.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: Percentiles::of(&mut latencies).expect("non-empty stream"),
    }
}

/// Distinct `(terms, n)` keys in a stream — the denominator of the
/// cross-batch repeat rate (`1 - distinct/total`). Shared with E21,
/// whose result cache turns exactly those repeats into O(1) hits.
pub(crate) fn distinct_key_count(stream: &[BatchQuery]) -> usize {
    let mut keys: std::collections::HashSet<(&[u32], usize)> = std::collections::HashSet::new();
    for q in stream {
        keys.insert((q.terms.as_slice(), q.n));
    }
    keys.len()
}

fn stream_config(scale: Scale) -> StreamConfig {
    let (pool_size, length) = match scale {
        Scale::Quick => (30, 240),
        Scale::Full => (40, 480),
    };
    StreamConfig {
        pool: QueryConfig {
            num_queries: pool_size,
            bias: DfBias::FrequentOnly,
            seed: 0xE18,
            ..QueryConfig::default()
        },
        length,
        exponent: 1.0,
        seed: 0x57E4,
    }
}

fn build_engine(index: &Arc<InvertedIndex>, shards: usize) -> ShardedEngine {
    let config = ServeConfig::planned(shards);
    ShardedEngine::build(
        Arc::clone(index),
        config.shard_spec,
        config.frag_spec,
        config.model,
        config.policy,
        config.sparse_block,
    )
    .expect("collection shards cleanly")
}

/// Run the sustained-load sweep: calibrate offered load off the
/// single-thread capacity, then measure every runtime at every shard
/// count under the identical stream and arrival schedule.
pub fn measure(scale: Scale) -> Vec<ThroughputResult> {
    let config = match scale {
        Scale::Quick => CollectionConfig::small(),
        Scale::Full => CollectionConfig::ft_scale(),
    };
    let collection = Collection::generate(config).expect("valid preset");
    let index = Arc::new(InvertedIndex::from_collection(&collection));
    let stream: Vec<BatchQuery> = generate_query_stream(&collection, &stream_config(scale))
        .expect("valid stream config")
        .into_iter()
        .map(|q| BatchQuery {
            terms: q.terms,
            n: TOP_N,
        })
        .collect();
    let distinct_keys = distinct_key_count(&stream);

    // Calibration: single-thread capacity on a warmed 1-shard engine,
    // serving the stream in admission-sized chunks. The offered rate —
    // shared by every configuration so the figures are comparable — is
    // OVERLOAD × this.
    let mut calib = build_engine(&index, 1);
    for chunk in stream.chunks(MAX_BATCH) {
        let _ = calib
            .execute_batch_sequential(chunk, ServeMode::Planned, true)
            .expect("in-vocabulary stream");
    }
    let t0 = Instant::now();
    for chunk in stream.chunks(MAX_BATCH) {
        let _ = calib
            .execute_batch_sequential(chunk, ServeMode::Planned, true)
            .expect("in-vocabulary stream");
    }
    let capacity = stream.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    let offered_qps = OVERLOAD * capacity;

    let mut results = Vec::new();
    for &shards in &SHARD_COUNTS {
        for runtime in [Runtime::Sequential, Runtime::Scoped, Runtime::Pool] {
            // Fresh state per runtime; one warm-up replay settles planner
            // calibration and lazily built bound tables before timing.
            let mut session;
            let mut engine;
            let mut server = match runtime {
                Runtime::Pool => {
                    session = ServeSession::new(Arc::clone(&index), ServeConfig::planned(shards))
                        .expect("collection shards cleanly");
                    Server::Pool(&mut session)
                }
                Runtime::Scoped => {
                    engine = build_engine(&index, shards);
                    Server::Scoped(&mut engine)
                }
                Runtime::Sequential => {
                    engine = build_engine(&index, shards);
                    Server::Sequential(&mut engine)
                }
            };
            let _ = drive(&mut server, &stream, offered_qps); // warm-up
            let mut best: Option<(Replay, usize)> = None;
            for _ in 0..REPLAYS {
                let before = server.coalesced_total();
                let replay = drive(&mut server, &stream, offered_qps);
                let coalesced = server.coalesced_total() - before;
                if best
                    .as_ref()
                    .is_none_or(|(b, _)| replay.achieved_qps > b.achieved_qps)
                {
                    best = Some((replay, coalesced));
                }
            }
            let (best, coalesced) = best.expect("at least one replay");
            results.push(ThroughputResult {
                shards,
                runtime,
                offered_qps,
                achieved_qps: best.achieved_qps,
                latency: best.latency,
                queries: stream.len(),
                distinct_keys,
                coalesced,
                saturated: best.achieved_qps < 0.95 * offered_qps,
            });
        }
    }
    results
}

fn find(results: &[ThroughputResult], shards: usize, runtime: Runtime) -> &ThroughputResult {
    results
        .iter()
        .find(|r| r.shards == shards && r.runtime == runtime)
        .expect("every runtime × shard count is measured")
}

/// Render the results as machine-readable JSON.
pub fn to_json(scale: Scale, results: &[ThroughputResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"e18\",");
    let _ = writeln!(out, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(out, "  \"top_n\": {TOP_N},");
    let _ = writeln!(out, "  \"max_batch\": {MAX_BATCH},");
    let _ = writeln!(out, "  \"overload\": {OVERLOAD},");
    let _ = writeln!(out, "  \"replays\": {REPLAYS},");
    let _ = writeln!(
        out,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    );
    if let Some(first) = results.first() {
        let _ = writeln!(out, "  \"queries\": {},", first.queries);
        let _ = writeln!(out, "  \"distinct_keys\": {},", first.distinct_keys);
        let _ = writeln!(
            out,
            "  \"repeat_rate\": {:.3},",
            1.0 - first.distinct_keys as f64 / first.queries.max(1) as f64
        );
    }
    let _ = writeln!(out, "  \"configs\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let seq = find(results, r.shards, Runtime::Sequential);
        let _ = writeln!(
            out,
            "    {{\"shards\": {}, \"runtime\": \"{}\", \"queries\": {}, \
             \"offered_qps\": {:.0}, \"achieved_qps\": {:.0}, \
             \"qps_vs_sequential\": {:.3}, \"coalesced_pct\": {:.1}, \
             \"p50_us\": {}, \"p95_us\": {}, \
             \"p99_us\": {}, \"max_us\": {}, \"saturated\": {}}}{comma}",
            r.shards,
            r.runtime.name(),
            r.queries,
            r.offered_qps,
            r.achieved_qps,
            r.achieved_qps / seq.achieved_qps.max(1e-9),
            100.0 * r.coalesced as f64 / r.queries.max(1) as f64,
            r.latency.p50.as_micros(),
            r.latency.p95.as_micros(),
            r.latency.p99.as_micros(),
            r.latency.max.as_micros(),
            r.saturated,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run E18, emit `BENCH_throughput.json`, and enforce the gates.
pub fn run(scale: Scale) -> Table {
    let results = measure(scale);

    let json = to_json(scale, &results);
    let json_path = std::env::var("MOA_BENCH_THROUGHPUT_JSON")
        .unwrap_or_else(|_| "BENCH_throughput.json".to_owned());
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("e18: could not write {json_path}: {e}");
    }

    let mut t = Table::new(
        "E18: sustained-load serving (pool vs scoped vs sequential)",
        &[
            "shards", "runtime", "offered", "achieved", "vs seq", "coal", "p50", "p95", "p99",
            "sat",
        ],
    );
    for r in &results {
        let seq = find(&results, r.shards, Runtime::Sequential);
        t.row(vec![
            r.shards.to_string(),
            r.runtime.name().to_string(),
            format!("{:.0}/s", r.offered_qps),
            format!("{:.0}/s", r.achieved_qps),
            format!("{:.2}x", r.achieved_qps / seq.achieved_qps.max(1e-9)),
            format!(
                "{:.0}%",
                100.0 * r.coalesced as f64 / r.queries.max(1) as f64
            ),
            fmt_duration(r.latency.p50),
            fmt_duration(r.latency.p95),
            fmt_duration(r.latency.p99),
            if r.saturated { "yes" } else { "no" }.to_string(),
        ]);
    }
    let first = results.first().expect("non-empty sweep");
    t.note(format!(
        "open-loop Zipf stream of {} arrivals, top-{TOP_N}, admission batches capped at \
         {MAX_BATCH}; offered load = {OVERLOAD} x measured single-thread capacity; best of \
         {REPLAYS} replays per cell",
        first.queries
    ));
    t.note(format!(
        "stream repeat structure: {} distinct (terms, n) keys over {} arrivals — a \
         cross-batch repeat rate of {:.0}% (what E21's result cache amortizes)",
        first.distinct_keys,
        first.queries,
        100.0 * (1.0 - first.distinct_keys as f64 / first.queries.max(1) as f64)
    ));
    t.note(
        "latency is arrival-to-merge (queueing included; the open loop keeps arriving on \
         schedule when the server falls behind — 'sat' marks runtimes that did)",
    );
    t.note(
        "'coal' = queries answered by the pool's admission coalescing (duplicate in-batch \
         Zipf repeats execute once, answers bit-identical — pinned by the pool_oracle test); \
         the per-position baselines execute every arrival individually",
    );
    t.note(
        "gate (enforced): pool achieved qps >= sequential and >= scoped at every shard count; \
         pool p99 <= 1.5 x scoped p99",
    );
    t.note(format!("machine-readable copy written to {json_path}"));

    for &shards in &SHARD_COUNTS {
        let pool = find(&results, shards, Runtime::Pool);
        let seq = find(&results, shards, Runtime::Sequential);
        let scoped = find(&results, shards, Runtime::Scoped);
        assert!(
            pool.achieved_qps >= seq.achieved_qps,
            "e18 gate: pool qps {:.0} below sequential {:.0} at {shards} shard(s)",
            pool.achieved_qps,
            seq.achieved_qps
        );
        assert!(
            pool.achieved_qps >= scoped.achieved_qps,
            "e18 gate: pool qps {:.0} below scoped {:.0} at {shards} shard(s)",
            pool.achieved_qps,
            scoped.achieved_qps
        );
        // Latency tripwire, with headroom for shared-host noise: the
        // pool must never buy throughput with a categorically worse
        // tail than the path it replaced.
        assert!(
            pool.latency.p99 <= scoped.latency.p99.mul_f64(1.5),
            "e18 gate: pool p99 {:?} above 1.5 x scoped p99 {:?} at {shards} shard(s)",
            pool.latency.p99,
            scoped.latency.p99
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_sweep_shape_and_sanity() {
        let results = measure(Scale::Quick);
        assert_eq!(results.len(), SHARD_COUNTS.len() * 3);
        for r in &results {
            assert!(r.achieved_qps > 0.0, "{:?} x{}", r.runtime, r.shards);
            assert!(r.offered_qps > 0.0);
            assert!(r.latency.p50 <= r.latency.p95);
            assert!(r.latency.p95 <= r.latency.p99);
            assert!(r.latency.p99 <= r.latency.max);
            assert_eq!(r.queries, results[0].queries);
            // A Zipf stream has genuine cross-batch repeats: strictly
            // fewer distinct keys than arrivals, but more than one.
            assert!(r.distinct_keys > 1 && r.distinct_keys < r.queries);
            // Achieved can exceed offered only by scheduling jitter, not
            // structurally (the open loop bounds admission).
            assert!(r.achieved_qps <= r.offered_qps * 1.25);
        }
        // The sequential baseline runs at OVERLOAD x its own capacity:
        // it must be saturated at every shard count.
        for &shards in &SHARD_COUNTS {
            assert!(
                find(&results, shards, Runtime::Sequential).saturated,
                "sequential runtime kept up with {OVERLOAD}x its capacity at {shards} shard(s)"
            );
        }
        // Coalescing belongs to the pool's admission queue alone, and a
        // Zipf stream under pressure always presents duplicates.
        for r in &results {
            match r.runtime {
                Runtime::Pool => assert!(
                    r.coalesced > 0,
                    "pool saw no duplicate arrivals at {} shard(s)",
                    r.shards
                ),
                Runtime::Scoped | Runtime::Sequential => assert_eq!(r.coalesced, 0),
            }
        }
    }

    #[test]
    fn e18_json_is_well_formed() {
        let results = measure(Scale::Quick);
        let json = to_json(Scale::Quick, &results);
        assert!(json.contains("\"experiment\": \"e18\""));
        assert_eq!(json.matches("{\"shards\"").count(), results.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
