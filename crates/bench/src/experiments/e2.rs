//! E2 — the safe variant: early quality check + fragment switch (§3 Step 1).
//!
//! Claim under test: *"I inserted a check early in the query plan that is
//! able to detect when the answer quality would be better when the other
//! fragment would be used. This allows query processing to switch
//! accordingly in time. This improved the answer quality significantly but
//! lowered the speed also quite a lot."*

use moa_ir::{FragmentSpec, Strategy, SwitchPolicy};

use crate::experiments::fixture::RetrievalFixture;
use crate::harness::{fmt_duration, Scale, Table};

/// Run E2.
pub fn run(scale: Scale) -> Table {
    let f = RetrievalFixture::build(scale);
    let frag = f.fragment(FragmentSpec::TermFraction(0.95));
    let policy = SwitchPolicy::default();

    let full = f.run_strategy(&frag, Strategy::FullScan, policy);
    let a_only = f.run_strategy(&frag, Strategy::AOnly { use_a_index: false }, policy);
    let switch = f.run_strategy(&frag, Strategy::Switch { use_b_index: false }, policy);

    let map_full = f.map(&full);
    let map_a = f.map(&a_only);
    let map_switch = f.map(&switch);

    let mut t = Table::new(
        "E2: safe switching — the early check restores quality",
        &[
            "strategy",
            "postings scanned",
            "batch time",
            "MAP",
            "overlap@20 vs full",
            "queries using B",
        ],
    );
    t.row(vec![
        "full scan".into(),
        full.postings_scanned.to_string(),
        fmt_duration(full.elapsed),
        format!("{map_full:.4}"),
        "1.000".into(),
        format!("{}/{}", f.queries.len(), f.queries.len()),
    ]);
    t.row(vec![
        "fragment A only (unsafe)".into(),
        a_only.postings_scanned.to_string(),
        fmt_duration(a_only.elapsed),
        format!("{map_a:.4}"),
        format!("{:.3}", f.mean_overlap(&full, &a_only, 20)),
        format!("0/{}", f.queries.len()),
    ]);
    t.row(vec![
        "switch (safe)".into(),
        switch.postings_scanned.to_string(),
        fmt_duration(switch.elapsed),
        format!("{map_switch:.4}"),
        format!("{:.3}", f.mean_overlap(&full, &switch, 20)),
        format!("{}/{}", switch.used_b, f.queries.len()),
    ]);

    let recovered = map_full > 0.0 && (map_switch / map_full) > (map_a / map_full);
    t.note(format!(
        "claim 'improved the answer quality significantly': MAP {:.4} (A-only) -> {:.4} (switch) vs {:.4} (full) — {}",
        map_a, map_switch, map_full,
        if recovered { "HOLDS" } else { "DOES NOT HOLD" }
    ));
    let slower_than_a = switch.postings_scanned > a_only.postings_scanned;
    t.note(format!(
        "claim 'but lowered the speed also quite a lot': switch scans {} vs A-only {} — {}",
        switch.postings_scanned,
        a_only.postings_scanned,
        if slower_than_a {
            "HOLDS"
        } else {
            "DOES NOT HOLD"
        }
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_switch_sits_between_extremes() {
        let t = run(Scale::Quick);
        let full: f64 = t.rows[0][1].parse().unwrap();
        let a: f64 = t.rows[1][1].parse().unwrap();
        let sw: f64 = t.rows[2][1].parse().unwrap();
        assert!(a < sw && sw <= full, "a={a} sw={sw} full={full}");
        // Switch quality at least A-only quality.
        let map_a: f64 = t.rows[1][3].parse().unwrap();
        let map_sw: f64 = t.rows[2][3].parse().unwrap();
        assert!(map_sw + 1e-9 >= map_a);
    }
}
