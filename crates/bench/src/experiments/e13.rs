//! E13 — set-based vs element-at-a-time evaluation (§3 Step 1's premise).
//!
//! *"Since databases preferably operate set-based in contrast with the
//! element-at-a-time operation of most IR systems, IR technology and
//! optimization techniques are not directly applicable in a content based
//! retrieval DBMS."* — this experiment measures the architectural gap the
//! sentence describes, and shows that df-fragmentation is what lets the
//! set-based engine approach element-at-a-time work while staying
//! optimizable as a set algebra.
//!
//! All four configurations produce identical rankings; only the work
//! differs.

use moa_ir::{
    DaatSearcher, ExecReport, ExhaustiveDaatOp, FragmentSpec, RetrievalOp, Strategy, SwitchPolicy,
};

use crate::experiments::fixture::{RetrievalFixture, METRIC_DEPTH};
use crate::harness::{fmt_duration, Scale, Table};

/// Run E13.
pub fn run(scale: Scale) -> Table {
    let f = RetrievalFixture::build(scale);
    let frag = f.fragment(FragmentSpec::TermFraction(0.95));
    let policy = SwitchPolicy::default();

    // Element-at-a-time: per-query posting cursors, exhaustive merge —
    // executed through the unified physical operator so the work totals
    // come from the same `ExecReport` counters as every other path.
    // (The bounds-pruned DAAT kernel is measured separately by E14; here
    // the unpruned cursor merge is the architectural reference whose work
    // equals the query terms' posting volume.)
    let mut daat_op = ExhaustiveDaatOp(DaatSearcher::new(&f.index, f.model));
    let t0 = std::time::Instant::now();
    let mut daat_total = ExecReport::default();
    let mut daat_rankings = Vec::new();
    for q in &f.queries {
        let rep = daat_op
            .execute(&q.terms, METRIC_DEPTH)
            .expect("valid query");
        daat_rankings.push((q.id, rep.top.iter().map(|&(d, _)| d).collect::<Vec<u32>>()));
        daat_total.absorb(&rep);
    }
    let daat_scanned = daat_total.postings_scanned;
    let daat_elapsed = t0.elapsed();

    // Set-based configurations.
    let full = f.run_strategy(&frag, Strategy::FullScan, policy);
    let switch = f.run_strategy(&frag, Strategy::Switch { use_b_index: false }, policy);
    let mut frag_indexed = moa_ir::FragmentedIndex::build(
        std::sync::Arc::clone(&f.index),
        FragmentSpec::TermFraction(0.95),
    )
    .expect("non-empty");
    frag_indexed
        .fragment_b_mut()
        .build_sparse_index(1024)
        .expect("sorted");
    let frag_indexed = std::sync::Arc::new(frag_indexed);
    let switch_idx = f.run_strategy(
        &frag_indexed,
        Strategy::Switch { use_b_index: true },
        policy,
    );

    let mut t = Table::new(
        "E13: element-at-a-time (IR engine) vs set-based (BAT) evaluation",
        &["architecture", "postings scanned", "batch time", "MAP"],
    );
    let daat_outcome = crate::experiments::fixture::StrategyOutcome {
        rankings: daat_rankings,
        postings_scanned: daat_scanned,
        elapsed: daat_elapsed,
        used_b: 0,
    };
    t.row(vec![
        "element-at-a-time (cursors)".into(),
        daat_scanned.to_string(),
        fmt_duration(daat_elapsed),
        format!("{:.4}", f.map(&daat_outcome)),
    ]);
    t.row(vec![
        "set-based, unfragmented".into(),
        full.postings_scanned.to_string(),
        fmt_duration(full.elapsed),
        format!("{:.4}", f.map(&full)),
    ]);
    t.row(vec![
        "set-based, fragmented + switch".into(),
        switch.postings_scanned.to_string(),
        fmt_duration(switch.elapsed),
        format!("{:.4}", f.map(&switch)),
    ]);
    t.row(vec![
        "set-based, fragmented + switch + B index".into(),
        switch_idx.postings_scanned.to_string(),
        fmt_duration(switch_idx.elapsed),
        format!("{:.4}", f.map(&switch_idx)),
    ]);

    let gap = full.postings_scanned as f64 / daat_scanned.max(1) as f64;
    let closed = full.postings_scanned as f64 / switch_idx.postings_scanned.max(1) as f64;
    t.note(format!(
        "the architectural gap: unfragmented set-based scans {gap:.0}x the element-at-a-time work"
    ));
    t.note(format!(
        "fragmentation + non-dense index closes it to {:.1}x of element-at-a-time while staying set-based and algebra-optimizable ({closed:.1}x better than unfragmented)",
        switch_idx.postings_scanned as f64 / daat_scanned.max(1) as f64
    ));
    t.note("rankings are identical across all four configurations (same model, same scores)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_architectures_agree_on_quality() {
        let t = run(Scale::Quick);
        let maps: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        // Element-at-a-time, unfragmented set-based, and the safe switch
        // configurations rank (essentially) identically.
        assert!((maps[0] - maps[1]).abs() < 1e-9, "DAAT vs full: {maps:?}");
        assert!(
            (maps[2] - maps[3]).abs() < 1e-9,
            "switch vs indexed: {maps:?}"
        );
    }

    #[test]
    fn e13_fragmentation_closes_the_gap() {
        let t = run(Scale::Quick);
        let daat: f64 = t.rows[0][1].parse().unwrap();
        let full: f64 = t.rows[1][1].parse().unwrap();
        let switch_idx: f64 = t.rows[3][1].parse().unwrap();
        assert!(daat < full, "DAAT {daat} not below full scan {full}");
        assert!(
            switch_idx < full,
            "fragmentation did not reduce set-based work"
        );
    }
}
