//! E21 — cross-batch result caching: amortizing Zipf repeats end to end.
//!
//! E18 showed the pool's admission coalescing folding duplicate queries
//! *within* a batch; the stream's repeats are overwhelmingly
//! **cross-batch** (its `repeat_rate` is far above any single batch's
//! duplicate share). The serving session's [`moa_serve::ResultCache`]
//! turns those into O(1) answer lookups consulted before admission — a
//! hit never occupies a worker slot — and the shard planners memoize
//! plan decisions by df-band signature. This experiment prices both
//! levels under the E18 open-loop replay discipline, in three phases:
//!
//! * **Skew sweep (throughput)** — the same Zipf stream generator at
//!   several popularity exponents, cache **off** vs cache **on**, each
//!   driven open-loop at [`OVERLOAD`] × the measured cache-off capacity.
//!   The cache-off session saturates at its capacity; the cached session
//!   keeps up with the offered rate because hits bypass the workers.
//!   Gate: cached throughput ≥ [`GATE_SPEEDUP`] × uncached at the most
//!   skewed mix, and the cache's byte high-water stays within its
//!   configured bound.
//! * **Miss overhead** — an all-distinct stream with the cache epoch
//!   flash-invalidated before every replay, so every single lookup
//!   misses and inserts: the price of carrying the cache when it never
//!   helps. Gate: uncached wall ≥ cached wall / [`MISS_OVERHEAD_BOUND`]
//!   (the cache may cost at most 5%).
//! * **Invalidate storm (correctness)** — the Zipf stream served with
//!   [`moa_serve::ServeSession::invalidate_epoch`] fired before *every*
//!   batch. Gates: zero cache hits survive the storm (a hit after an
//!   invalidation would be a stale answer by definition) and every
//!   response is **bit-identical** to an unsharded naive set-at-a-time
//!   oracle — the cache may change where answers come from, never what
//!   they are.
//!
//! The committed figures live in `BENCH_cache.json`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use moa_corpus::{
    generate_query_stream, Collection, CollectionConfig, DfBias, QueryConfig, StreamConfig,
};
use moa_ir::{InvertedIndex, PhysicalPlan};
use moa_serve::{BatchQuery, CacheConfig, ServeConfig, ServeMode, ServeSession, ShardedEngine};

use crate::experiments::e18::distinct_key_count;
use crate::harness::{Scale, Table};

/// Ranking depth (matches the E18/E20 serving posture).
const TOP_N: usize = 100;

/// Worker shards: the smallest parallel pool — the cache's win must not
/// depend on a wide machine.
const SHARDS: usize = 2;

/// Admission batch cap (same knob, same honesty argument as E18).
const MAX_BATCH: usize = 32;

/// Offered load as a multiple of the measured *cache-off* capacity:
/// above 1 so the uncached session saturates and the cached session has
/// headroom to demonstrate.
const OVERLOAD: f64 = 1.75;

/// Replays per cell; the best replay is reported.
const REPLAYS: usize = 5;

/// Zipf popularity exponents swept, least to most skewed. The last is
/// the gated mix.
const SKEWS: [f64; 3] = [0.4, 1.0, 1.6];

/// The headline gate: cached throughput over uncached at the most
/// skewed exponent.
pub const GATE_SPEEDUP: f64 = 1.3;

/// The miss-overhead gate: on an all-distinct (zero-hit) stream the
/// cached session's wall time may exceed the uncached session's by at
/// most this factor.
pub const MISS_OVERHEAD_BOUND: f64 = 1.05;

/// One skew-sweep cell (cache off and on, same stream and offered rate).
pub struct SkewResult {
    /// Zipf popularity exponent of the stream.
    pub exponent: f64,
    /// Arrivals in the stream.
    pub queries: usize,
    /// Distinct `(terms, n)` keys — `1 - distinct/total` is the repeat
    /// rate the cache can amortize.
    pub distinct_keys: usize,
    /// Offered arrival rate (queries/sec), shared by both modes.
    pub offered_qps: f64,
    /// Best-replay throughput with the cache disabled.
    pub off_qps: f64,
    /// Best-replay throughput with the cache enabled.
    pub on_qps: f64,
    /// Lifetime cache hits over the cached session's driven replays.
    pub cache_hits: u64,
    /// Hit fraction of all cached-session lookups.
    pub hit_rate: f64,
    /// Plan-memo hits observed by the cached session's shard planners.
    pub plans_memoized: usize,
    /// Cache byte high-water mark (gated ≤ `capacity_bytes`).
    pub bytes_high_water: u64,
    /// The configured cache byte bound.
    pub capacity_bytes: usize,
}

/// Phase B: the all-miss overhead measurement.
pub struct MissOverhead {
    /// Distinct queries served per pass.
    pub queries: usize,
    /// Best (minimum) uncached wall time for one pass.
    pub off_wall: Duration,
    /// Best (minimum) cached wall time for one pass, every lookup a
    /// miss (epoch invalidated before each pass).
    pub on_wall: Duration,
    /// `on_wall / off_wall` — gated ≤ [`MISS_OVERHEAD_BOUND`].
    pub overhead: f64,
}

/// Phase C: the invalidate-storm correctness sweep.
pub struct StormResult {
    /// Batches driven, each preceded by an epoch invalidation.
    pub batches: usize,
    /// Queries checked bit-for-bit against the naive oracle.
    pub queries: usize,
    /// Cache hits observed during the storm — gated to be exactly 0
    /// (any hit after an invalidation is a stale answer).
    pub stale_hits: u64,
    /// Entries the storm inserted (the cache kept working).
    pub insertions: u64,
    /// Lazily reclaimed + capacity-evicted entries.
    pub evictions: u64,
}

fn stream_config(scale: Scale, exponent: f64) -> StreamConfig {
    let (pool_size, length) = match scale {
        Scale::Quick => (30, 240),
        Scale::Full => (40, 480),
    };
    StreamConfig {
        pool: QueryConfig {
            num_queries: pool_size,
            bias: DfBias::FrequentOnly,
            seed: 0xE21,
            ..QueryConfig::default()
        },
        length,
        exponent,
        seed: 0x21AC,
    }
}

fn make_stream(collection: &Collection, scale: Scale, exponent: f64) -> Vec<BatchQuery> {
    generate_query_stream(collection, &stream_config(scale, exponent))
        .expect("valid stream config")
        .into_iter()
        .map(|q| BatchQuery {
            terms: q.terms,
            n: TOP_N,
        })
        .collect()
}

fn session(index: &Arc<InvertedIndex>, cache: Option<CacheConfig>) -> ServeSession {
    let config = ServeConfig {
        cache,
        ..ServeConfig::planned(SHARDS)
    };
    ServeSession::new(Arc::clone(index), config).expect("collection shards cleanly")
}

/// Drive one open-loop replay, pipelined exactly as E18/E20: admit the
/// next batch before collecting the previous. Returns achieved qps.
fn drive(session: &mut ServeSession, stream: &[BatchQuery], offered_qps: f64) -> f64 {
    let t0 = Instant::now();
    let arrival = |i: usize| t0 + Duration::from_secs_f64(i as f64 / offered_qps);
    let mut in_flight = None;
    let mut last_done = t0;
    let mut next = 0usize;
    while next < stream.len() {
        while Instant::now() < arrival(next) {
            std::hint::spin_loop();
        }
        let now = Instant::now();
        let mut end = next + 1;
        while end < stream.len() && end - next < MAX_BATCH && arrival(end) <= now {
            end += 1;
        }
        let pending = session
            .enqueue(&stream[next..end])
            .expect("blocking admission never sheds");
        if let Some(prev) = in_flight.take() {
            let _ = session.collect(prev);
            last_done = Instant::now();
        }
        in_flight = Some(pending);
        next = end;
    }
    if let Some(prev) = in_flight.take() {
        let _ = session.collect(prev);
        last_done = Instant::now();
    }
    let elapsed = last_done.saturating_duration_since(t0);
    stream.len() as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// Best-of-[`REPLAYS`] open-loop throughput. A persistent session keeps
/// the cache warm across replays — the steady state a long-lived server
/// reaches, which is exactly what the sweep is pricing.
fn best_qps(session: &mut ServeSession, stream: &[BatchQuery], offered_qps: f64) -> f64 {
    let mut best = 0f64;
    for _ in 0..REPLAYS {
        best = best.max(drive(session, stream, offered_qps));
    }
    best
}

/// Phase A: the skew sweep.
fn measure_skews(
    collection: &Collection,
    index: &Arc<InvertedIndex>,
    scale: Scale,
) -> Vec<SkewResult> {
    let mut results = Vec::new();
    for &exponent in &SKEWS {
        let stream = make_stream(collection, scale, exponent);
        let distinct_keys = distinct_key_count(&stream);

        // Cache-off capacity: drive flat out (arrivals all due at t0),
        // after a warm-up replay — achieved == capacity by construction.
        let mut off = session(index, None);
        let _ = drive(&mut off, &stream, 1e9);
        let capacity = drive(&mut off, &stream, 1e9);
        let offered_qps = OVERLOAD * capacity;

        let off_qps = best_qps(&mut off, &stream, offered_qps);

        let mut on = session(index, Some(CacheConfig::default()));
        let _ = drive(&mut on, &stream, offered_qps); // warm the cache
        let on_qps = best_qps(&mut on, &stream, offered_qps);

        let cache = on.result_cache().expect("cache configured").stats();
        let plans_memoized = on.stats().plans_memoized;
        results.push(SkewResult {
            exponent,
            queries: stream.len(),
            distinct_keys,
            offered_qps,
            off_qps,
            on_qps,
            cache_hits: cache.hits,
            hit_rate: cache.hits as f64 / (cache.hits + cache.misses).max(1) as f64,
            plans_memoized,
            bytes_high_water: cache.bytes_high_water,
            capacity_bytes: on
                .result_cache()
                .expect("cache configured")
                .capacity_bytes(),
        });
    }
    results
}

/// Phase B: carry the cache through an all-distinct stream where it can
/// never help, and price the pure miss path (lookup + insert) against a
/// session with no cache at all. Closed-loop: wall time for one pass.
fn measure_miss_overhead(
    collection: &Collection,
    index: &Arc<InvertedIndex>,
    scale: Scale,
) -> MissOverhead {
    // Every key distinct: the Zipf pool *is* the stream, deduplicated.
    let pool = stream_config(scale, 1.0).pool;
    let pool = QueryConfig {
        num_queries: match scale {
            Scale::Quick => 120,
            Scale::Full => 240,
        },
        ..pool
    };
    let queries = moa_corpus::generate_queries(collection, &pool).expect("valid workload");
    let mut seen = std::collections::HashSet::new();
    let stream: Vec<BatchQuery> = queries
        .into_iter()
        .filter(|q| seen.insert(q.terms.clone()))
        .map(|q| BatchQuery {
            terms: q.terms,
            n: TOP_N,
        })
        .collect();
    assert!(
        stream.len() > 16,
        "distinct pool collapsed: {}",
        stream.len()
    );

    let pass = |s: &mut ServeSession| -> Duration {
        let t0 = Instant::now();
        for chunk in stream.chunks(MAX_BATCH) {
            let _ = s.submit_many(chunk).expect("blocking admission");
        }
        t0.elapsed()
    };

    let mut off = session(index, None);
    let mut on = session(index, Some(CacheConfig::default()));
    let _ = pass(&mut off); // warm-up
    on.invalidate_epoch();
    let _ = pass(&mut on);
    let mut off_wall = Duration::MAX;
    let mut on_wall = Duration::MAX;
    for _ in 0..REPLAYS {
        off_wall = off_wall.min(pass(&mut off));
        // Flash-invalidate before each pass: every lookup must walk the
        // full miss path (probe, execute, re-insert over the stale slot).
        on.invalidate_epoch();
        on_wall = on_wall.min(pass(&mut on));
    }
    // The discipline held: an all-distinct, always-invalidated stream
    // can never hit.
    assert_eq!(
        on.stats().queries_cache_hit,
        0,
        "phase B must be a pure miss workload"
    );
    MissOverhead {
        queries: stream.len(),
        off_wall,
        on_wall,
        overhead: on_wall.as_secs_f64() / off_wall.as_secs_f64().max(1e-12),
    }
}

/// Phase C: invalidate before every batch and check every answer
/// bit-for-bit against an unsharded naive set-at-a-time oracle.
fn measure_storm(collection: &Collection, index: &Arc<InvertedIndex>, scale: Scale) -> StormResult {
    let stream = make_stream(collection, scale, 1.0);
    // The serving side under storm: exact fixed plan so the unsharded
    // naive oracle is bit-comparable (every exact plan returns the
    // identical top-N — pinned by moa-ir's physical-plan oracle).
    let config = ServeConfig {
        mode: ServeMode::Fixed(PhysicalPlan::PrunedDaat),
        cache: Some(CacheConfig::default()),
        ..ServeConfig::planned(SHARDS)
    };
    let mut svc = ServeSession::new(Arc::clone(index), config).expect("collection shards cleanly");
    let oracle_cfg = ServeConfig::planned(1);
    let mut oracle = ShardedEngine::build(
        Arc::clone(index),
        moa_serve::ShardSpec::Range { shards: 1 },
        oracle_cfg.frag_spec,
        oracle_cfg.model,
        oracle_cfg.policy,
        oracle_cfg.sparse_block,
    )
    .expect("collection shards cleanly");

    let mut batches = 0usize;
    let mut checked = 0usize;
    for chunk in stream.chunks(MAX_BATCH) {
        svc.invalidate_epoch().expect("cache configured");
        let got = svc.submit_many(chunk).expect("blocking admission");
        let want = oracle
            .execute_batch_sequential(chunk, ServeMode::Fixed(PhysicalPlan::SetAtATime), true)
            .expect("in-vocabulary stream");
        for (qi, (g, w)) in got.responses.iter().zip(&want).enumerate() {
            let g = g.as_ref().expect("no faults in play");
            let gb: Vec<(u32, u64)> = g.top.iter().map(|&(d, s)| (d, s.to_bits())).collect();
            let wb: Vec<(u32, u64)> = w.top.iter().map(|&(d, s)| (d, s.to_bits())).collect();
            assert_eq!(
                gb, wb,
                "storm batch {batches} q{qi}: cached serving diverged from the naive oracle"
            );
            checked += 1;
        }
        batches += 1;
    }
    let cache = svc.result_cache().expect("cache configured").stats();
    StormResult {
        batches,
        queries: checked,
        stale_hits: cache.hits,
        insertions: cache.insertions,
        evictions: cache.evictions,
    }
}

/// The full E21 measurement.
pub struct CacheResults {
    /// Phase A rows.
    pub skews: Vec<SkewResult>,
    /// Phase B figure.
    pub miss: MissOverhead,
    /// Phase C figure.
    pub storm: StormResult,
}

/// Run every phase.
pub fn measure(scale: Scale) -> CacheResults {
    let config = match scale {
        Scale::Quick => CollectionConfig::small(),
        Scale::Full => CollectionConfig::ft_scale(),
    };
    let collection = Collection::generate(config).expect("valid preset");
    let index = Arc::new(InvertedIndex::from_collection(&collection));
    CacheResults {
        skews: measure_skews(&collection, &index, scale),
        miss: measure_miss_overhead(&collection, &index, scale),
        storm: measure_storm(&collection, &index, scale),
    }
}

/// Render the results as machine-readable JSON.
pub fn to_json(scale: Scale, r: &CacheResults) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"e21\",");
    let _ = writeln!(out, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(out, "  \"top_n\": {TOP_N},");
    let _ = writeln!(out, "  \"shards\": {SHARDS},");
    let _ = writeln!(out, "  \"max_batch\": {MAX_BATCH},");
    let _ = writeln!(out, "  \"overload\": {OVERLOAD},");
    let _ = writeln!(out, "  \"replays\": {REPLAYS},");
    let _ = writeln!(out, "  \"gate_speedup\": {GATE_SPEEDUP},");
    let _ = writeln!(out, "  \"miss_overhead_bound\": {MISS_OVERHEAD_BOUND},");
    let _ = writeln!(
        out,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    );
    let _ = writeln!(out, "  \"skew_sweep\": [");
    for (i, s) in r.skews.iter().enumerate() {
        let comma = if i + 1 < r.skews.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"exponent\": {}, \"queries\": {}, \"distinct_keys\": {}, \
             \"repeat_rate\": {:.3}, \"offered_qps\": {:.0}, \"off_qps\": {:.0}, \
             \"on_qps\": {:.0}, \"speedup\": {:.3}, \"cache_hits\": {}, \
             \"hit_rate\": {:.3}, \"plans_memoized\": {}, \
             \"bytes_high_water\": {}, \"capacity_bytes\": {}}}{comma}",
            s.exponent,
            s.queries,
            s.distinct_keys,
            1.0 - s.distinct_keys as f64 / s.queries.max(1) as f64,
            s.offered_qps,
            s.off_qps,
            s.on_qps,
            s.on_qps / s.off_qps.max(1e-9),
            s.cache_hits,
            s.hit_rate,
            s.plans_memoized,
            s.bytes_high_water,
            s.capacity_bytes,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"miss_overhead\": {{\"queries\": {}, \"off_wall_us\": {}, \
         \"on_wall_us\": {}, \"overhead\": {:.4}}},",
        r.miss.queries,
        r.miss.off_wall.as_micros(),
        r.miss.on_wall.as_micros(),
        r.miss.overhead,
    );
    let _ = writeln!(
        out,
        "  \"invalidate_storm\": {{\"batches\": {}, \"queries\": {}, \
         \"stale_hits\": {}, \"insertions\": {}, \"evictions\": {}, \
         \"bit_identical\": true}}",
        r.storm.batches, r.storm.queries, r.storm.stale_hits, r.storm.insertions, r.storm.evictions,
    );
    out.push_str("}\n");
    out
}

/// Run E21, emit `BENCH_cache.json`, and enforce the gates.
pub fn run(scale: Scale) -> Table {
    let results = measure(scale);

    let json = to_json(scale, &results);
    let json_path =
        std::env::var("MOA_BENCH_CACHE_JSON").unwrap_or_else(|_| "BENCH_cache.json".to_owned());
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("e21: could not write {json_path}: {e}");
    }

    let mut t = Table::new(
        "E21: cross-batch result cache (off vs on under open-loop Zipf load)",
        &[
            "exponent", "repeat", "offered", "off", "on", "speedup", "hit rate", "memo",
        ],
    );
    for s in &results.skews {
        t.row(vec![
            format!("{:.1}", s.exponent),
            format!(
                "{:.0}%",
                100.0 * (1.0 - s.distinct_keys as f64 / s.queries.max(1) as f64)
            ),
            format!("{:.0}/s", s.offered_qps),
            format!("{:.0}/s", s.off_qps),
            format!("{:.0}/s", s.on_qps),
            format!("{:.2}x", s.on_qps / s.off_qps.max(1e-9)),
            format!("{:.0}%", 100.0 * s.hit_rate),
            s.plans_memoized.to_string(),
        ]);
    }
    let first = results.skews.first().expect("non-empty sweep");
    t.note(format!(
        "open-loop Zipf streams of {} arrivals at {SHARDS} worker shard(s), top-{TOP_N}, \
         offered = {OVERLOAD} x measured cache-off capacity; best of {REPLAYS} replays; a \
         persistent session keeps the cache warm across replays (the long-lived server's \
         steady state)",
        first.queries
    ));
    t.note(format!(
        "miss overhead (all-distinct stream, epoch invalidated before every pass, {} \
         queries): cached {:.0}us vs uncached {:.0}us = {:.3}x (bound {MISS_OVERHEAD_BOUND})",
        results.miss.queries,
        results.miss.on_wall.as_micros(),
        results.miss.off_wall.as_micros(),
        results.miss.overhead,
    ));
    t.note(format!(
        "invalidate storm ({} batches, epoch bumped before each): {} answers bit-identical \
         to the unsharded set-at-a-time oracle, {} stale hits (must be 0), {} insertions",
        results.storm.batches,
        results.storm.queries,
        results.storm.stale_hits,
        results.storm.insertions,
    ));
    t.note(format!(
        "gates (enforced): speedup >= {GATE_SPEEDUP}x at exponent {:.1}; miss overhead <= \
         {MISS_OVERHEAD_BOUND}x; cache bytes high-water <= configured bound; zero stale \
         storm hits",
        SKEWS[SKEWS.len() - 1]
    ));
    t.note(format!("machine-readable copy written to {json_path}"));

    // Gate 1: the headline speedup at the most skewed mix.
    let gated = results.skews.last().expect("non-empty sweep");
    assert!(
        gated.on_qps >= GATE_SPEEDUP * gated.off_qps,
        "e21 gate: cached qps {:.0} below {GATE_SPEEDUP} x uncached {:.0} at exponent {}",
        gated.on_qps,
        gated.off_qps,
        gated.exponent
    );
    // Gate 2: the byte bound held at every skew.
    for s in &results.skews {
        assert!(
            s.bytes_high_water <= s.capacity_bytes as u64,
            "e21 gate: cache high-water {} bytes exceeded the {} bound at exponent {}",
            s.bytes_high_water,
            s.capacity_bytes,
            s.exponent
        );
        assert!(s.cache_hits > 0, "cached session never hit — sweep broken");
    }
    // Gate 3: carrying the cache through a pure-miss workload is nearly
    // free.
    assert!(
        results.miss.overhead <= MISS_OVERHEAD_BOUND,
        "e21 gate: miss overhead {:.3}x above the {MISS_OVERHEAD_BOUND}x bound",
        results.miss.overhead
    );
    // Gate 4: the storm returned zero stale results (bit-identity was
    // asserted per answer inside the measurement).
    assert_eq!(
        results.storm.stale_hits, 0,
        "e21 gate: {} cache hits survived the invalidate storm",
        results.storm.stale_hits
    );
    assert!(results.storm.insertions > 0, "storm cache never inserted");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e21_storm_is_stale_free_and_bit_identical() {
        let config = CollectionConfig::tiny();
        let collection = Collection::generate(config).expect("valid preset");
        let index = Arc::new(InvertedIndex::from_collection(&collection));
        let storm = measure_storm(&collection, &index, Scale::Quick);
        assert_eq!(storm.stale_hits, 0);
        assert!(storm.batches > 1);
        assert!(storm.queries > 0);
        assert!(storm.insertions > 0);
    }

    #[test]
    fn e21_miss_overhead_is_finite_and_pure() {
        let config = CollectionConfig::tiny();
        let collection = Collection::generate(config).expect("valid preset");
        let index = Arc::new(InvertedIndex::from_collection(&collection));
        let miss = measure_miss_overhead(&collection, &index, Scale::Quick);
        assert!(miss.queries > 16);
        assert!(miss.overhead > 0.0 && miss.overhead.is_finite());
    }

    #[test]
    fn e21_json_is_well_formed() {
        // Synthetic results: the JSON renderer is pure.
        let r = CacheResults {
            skews: vec![SkewResult {
                exponent: 1.6,
                queries: 240,
                distinct_keys: 30,
                offered_qps: 1000.0,
                off_qps: 600.0,
                on_qps: 950.0,
                cache_hits: 1000,
                hit_rate: 0.9,
                plans_memoized: 42,
                bytes_high_water: 1 << 16,
                capacity_bytes: 8 << 20,
            }],
            miss: MissOverhead {
                queries: 120,
                off_wall: Duration::from_micros(900),
                on_wall: Duration::from_micros(910),
                overhead: 1.011,
            },
            storm: StormResult {
                batches: 8,
                queries: 240,
                stale_hits: 0,
                insertions: 240,
                evictions: 200,
            },
        };
        let json = to_json(Scale::Quick, &r);
        assert!(json.contains("\"experiment\": \"e21\""));
        assert!(json.contains("\"stale_hits\": 0"));
        assert!(json.contains("\"speedup\": 1.583"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
