//! E14 — bounds-pruned DAAT (MaxScore) vs the exhaustive cursor merge.
//!
//! The paper's whole program is *doing less than the full scan while
//! keeping top-N answers exact*. E13 established the element-at-a-time
//! work baseline; this experiment measures how much of even *that* work
//! the score-upper-bound machinery removes when it drives the hot loop
//! itself: per-term exact contribution bounds partition the query into
//! essential and non-essential cursors, non-essential cursors are only
//! `seek`-ed (galloping skip), and documents whose partial score plus
//! remaining bound cannot enter the heap are abandoned early.
//!
//! Every configuration is checked for bit-exactness against the
//! exhaustive merge before being timed — the speedup is never allowed to
//! cost a single rank.
//!
//! Besides the rendered table, the run emits machine-readable
//! `BENCH_daat.json` (postings scanned, seeks, bound exits, wall time per
//! configuration) so the perf trajectory of the query kernel is tracked
//! from this PR on.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

use moa_corpus::{generate_queries, Collection, CollectionConfig, DfBias, Query, QueryConfig};
use moa_ir::{
    BoundGate, DaatSearcher, ExecReport, ExhaustiveDaatOp, InvertedIndex, PrunedDaatOp,
    QueryScratch, RankingModel, RetrievalOp, ScoreKernel,
};
use moa_topn::TopNHeap;

use crate::harness::{fmt_duration, time_best_interleaved, Scale, Table};

/// Ranking depth: the paper's canonical "first screen of hits" regime,
/// where bounds-pruning has the most room.
const TOP_N: usize = 10;

/// One measured (query mix × ranking model) configuration. Work totals
/// are aggregated [`ExecReport`]s from the unified physical operators —
/// no per-field counter copying.
pub struct CaseResult {
    /// Query-mix label (`topical`, `trec_like`, `frequent_only`).
    pub mix: &'static str,
    /// Ranking-model label (`tfidf`, `hiemstra`, `bm25`).
    pub model: &'static str,
    /// Aggregated unified counters of the exhaustive cursor merge.
    pub exhaustive: ExecReport,
    /// Aggregated unified counters of the pruned kernel.
    pub pruned: ExecReport,
    /// Batch wall time of the seed's merge (per-posting `term_weight`
    /// recomputation — the baseline the query kernel replaced).
    pub wall_naive: std::time::Duration,
    /// Batch wall time of the exhaustive merge on the precomputed kernel.
    pub wall_exhaustive: std::time::Duration,
    /// Batch wall time of the pruned kernel.
    pub wall_pruned: std::time::Duration,
}

impl CaseResult {
    /// Postings-scanned reduction factor (exhaustive / pruned).
    pub fn scan_reduction(&self) -> f64 {
        self.exhaustive.postings_scanned as f64 / self.pruned.postings_scanned.max(1) as f64
    }

    /// Wall-time speedup of the pruned kernel over the seed baseline.
    pub fn time_speedup_vs_naive(&self) -> f64 {
        self.wall_naive.as_secs_f64() / self.wall_pruned.as_secs_f64().max(1e-12)
    }

    /// Pruned wall time over exhaustive wall time. Above 1.0 the bound
    /// machinery costs more than the postings it saves — the anomaly this
    /// PR's block layout exists to fix. Gated ≤ [`PRUNE_OVERHEAD_GATE`]
    /// on the trec_like mixes by [`run`].
    pub fn prune_overhead_ratio(&self) -> f64 {
        self.wall_pruned.as_secs_f64() / self.wall_exhaustive.as_secs_f64().max(1e-12)
    }
}

/// Acceptance gate at Quick scale (the committed-benchmark and CI
/// regime): on the trec_like mixes the pruned kernel may cost at most
/// this fraction of the exhaustive merge's wall time — i.e. pruning must
/// not be slower than not pruning (5% measurement slack). The df-weighted
/// high-band query draw keeps this honest at every scale: "frequent" term
/// slots actually land on long posting runs, which is where the bound
/// machinery either pays for itself or doesn't.
pub const PRUNE_OVERHEAD_GATE: f64 = 1.05;

/// Regression ceiling at Full (FT) scale. Long posting runs used to make
/// the single-level 128-posting block maxima approach the per-term
/// maxima (any 128-posting window of a frequent term tends to contain an
/// outlier), so the candidate gates fired less and the pruned path paid
/// its bound bookkeeping without the matching savings — the old 1.6
/// ceiling only bounded the damage. The 4-bit mini-block refinement
/// closed that gap: the 16-entry maxima stay discriminating on exactly
/// those runs (measured ratios sit at 0.28–0.37 on trec_like), so Full
/// now holds the same must-not-cost-more-than-it-saves line as Quick.
pub const PRUNE_OVERHEAD_GATE_FULL: f64 = 1.05;

/// Flat posting runs, pre-decoded once per configuration so the naive
/// baseline below measures the *seed's* flat-array architecture (its
/// storage never paid a decode) rather than charging it this PR's block
/// decode.
pub type FlatRuns = HashMap<u32, (Vec<u32>, Vec<u32>)>;

/// Decode every distinct query term's run into flat arrays (untimed).
pub fn decode_flat_runs(index: &InvertedIndex, queries: &[Query]) -> FlatRuns {
    let mut runs = FlatRuns::new();
    for q in queries {
        for &t in &q.terms {
            runs.entry(t)
                .or_insert_with(|| index.decode_postings(t).expect("valid term"));
        }
    }
    runs
}

/// The seed's document-at-a-time evaluator, reproduced verbatim in shape:
/// a plain merge over flat posting arrays that re-derives every model
/// constant and the length norm per posting via
/// [`RankingModel::term_weight`]. This is the wall-clock baseline the
/// precomputed-scorer kernel and the pruned path are measured against.
pub fn naive_exhaustive_daat(
    index: &InvertedIndex,
    runs: &FlatRuns,
    model: RankingModel,
    terms: &[u32],
    n: usize,
) -> Vec<(u32, f64)> {
    let stats = index.stats();
    struct Cursor<'p> {
        docs: &'p [u32],
        tfs: &'p [u32],
        pos: usize,
        df: u32,
        cf: u64,
    }
    let mut cursors: Vec<Cursor> = terms
        .iter()
        .map(|&t| {
            let (docs, tfs) = &runs[&t];
            Cursor {
                docs,
                tfs,
                pos: 0,
                df: index.df(t).expect("valid term"),
                cf: index.cf(t).expect("valid term"),
            }
        })
        .collect();
    let mut heap = TopNHeap::new(n);
    loop {
        let mut next_doc = u32::MAX;
        for c in &cursors {
            if c.pos < c.docs.len() {
                next_doc = next_doc.min(c.docs[c.pos]);
            }
        }
        if next_doc == u32::MAX {
            break;
        }
        let mut score = 0.0f64;
        for c in &mut cursors {
            if c.pos < c.docs.len() && c.docs[c.pos] == next_doc {
                score +=
                    model.term_weight(c.tfs[c.pos], c.df, c.cf, index.doc_len(next_doc), &stats);
                c.pos += 1;
            }
        }
        heap.push(next_doc, score);
    }
    heap.into_sorted_vec()
}

/// The query mixes E14 (and E17) measure across.
pub fn query_mixes() -> Vec<(&'static str, DfBias)> {
    vec![
        ("topical", DfBias::Topical { high_df_mix: 0.5 }),
        ("trec_like", DfBias::TrecLike { high_df_mix: 0.5 }),
        ("frequent_only", DfBias::FrequentOnly),
    ]
}

/// The ranking models E14 (and E17) measure across.
pub fn ranking_models() -> Vec<(&'static str, RankingModel)> {
    vec![
        ("tfidf", RankingModel::TfIdf),
        ("hiemstra", RankingModel::HiemstraLm { lambda: 0.15 }),
        ("bm25", RankingModel::Bm25 { k1: 1.2, b: 0.75 }),
    ]
}

/// Run the measurement matrix: every query mix × every ranking model,
/// exhaustive vs pruned, with exactness asserted per query.
pub fn measure(scale: Scale) -> Vec<CaseResult> {
    let config = match scale {
        Scale::Quick => CollectionConfig::small(),
        Scale::Full => CollectionConfig::ft_scale(),
    };
    let collection = Collection::generate(config).expect("valid preset");
    let index = InvertedIndex::from_collection(&collection);
    let num_queries = match scale {
        Scale::Quick => 30,
        Scale::Full => 50,
    };

    let mut results = Vec::new();
    for (mix_label, bias) in query_mixes() {
        let queries: Vec<Query> = generate_queries(
            &collection,
            &QueryConfig {
                num_queries,
                bias,
                seed: 0xE14,
                ..QueryConfig::default()
            },
        )
        .expect("valid workload config");

        for (model_label, model) in ranking_models() {
            // One kernel and one (lazily built) bound-table set per
            // (index, model), shared by every searcher view — the sharing
            // the physical layer's `with_shared` constructors exist for.
            let kernel = Arc::new(ScoreKernel::new(model, &index));
            let bounds = Arc::new(OnceLock::new());
            let daat = DaatSearcher::with_shared(&index, Arc::clone(&kernel), Arc::clone(&bounds));
            let mut pruned_op = PrunedDaatOp(DaatSearcher::with_shared(
                &index,
                Arc::clone(&kernel),
                Arc::clone(&bounds),
            ));
            let mut exhaustive_op = ExhaustiveDaatOp(DaatSearcher::with_shared(
                &index,
                Arc::clone(&kernel),
                Arc::clone(&bounds),
            ));

            // Flat runs for the seed baseline, decoded outside the timed
            // region: the seed's storage was flat, so its merge never paid
            // a block decode.
            let runs = decode_flat_runs(&index, &queries);

            // Exactness first: the pruned kernel must reproduce the
            // exhaustive merge — and the seed's naive merge — bit-for-bit
            // on every query before its speed means anything. The same
            // pass aggregates the (deterministic) unified counters.
            let mut pruned_total = ExecReport::default();
            let mut exhaustive_total = ExecReport::default();
            for q in &queries {
                let pruned = pruned_op.execute(&q.terms, TOP_N).expect("valid query");
                let full = exhaustive_op.execute(&q.terms, TOP_N).expect("valid query");
                assert_eq!(
                    pruned.top, full.top,
                    "pruned DAAT diverged ({mix_label}, {model_label}, {:?})",
                    q.terms
                );
                let naive = naive_exhaustive_daat(&index, &runs, model, &q.terms, TOP_N);
                assert_eq!(
                    pruned.top, naive,
                    "pruned DAAT diverged from seed baseline ({mix_label}, {model_label}, {:?})",
                    q.terms
                );
                pruned_total.absorb(&pruned);
                exhaustive_total.absorb(&full);
            }

            // Interleaved best-of-11 batch wall times: each round times
            // naive, exhaustive, and pruned back to back, and each path
            // keeps its fastest round — robust against drift on a shared
            // host. The kernel paths run through reused QueryScratches —
            // the steady-state (zero-allocation) serving configuration.
            let gate = BoundGate::none();
            let mut scratch_ex = QueryScratch::new();
            let mut scratch_pr = QueryScratch::new();
            let mut run_naive = || {
                for q in &queries {
                    std::hint::black_box(naive_exhaustive_daat(
                        &index, &runs, model, &q.terms, TOP_N,
                    ));
                }
            };
            let mut run_exhaustive = || {
                for q in &queries {
                    let _ = std::hint::black_box(
                        daat.search_exhaustive_into(&q.terms, TOP_N, &mut scratch_ex)
                            .expect("valid query"),
                    );
                }
            };
            let mut run_pruned = || {
                for q in &queries {
                    let _ = std::hint::black_box(
                        daat.search_into(&q.terms, TOP_N, &gate, &mut scratch_pr)
                            .expect("valid query"),
                    );
                }
            };
            let walls = time_best_interleaved(
                11,
                &mut [&mut run_naive, &mut run_exhaustive, &mut run_pruned],
            );
            let (wall_naive, wall_exhaustive, wall_pruned) = (walls[0], walls[1], walls[2]);

            results.push(CaseResult {
                mix: mix_label,
                model: model_label,
                exhaustive: exhaustive_total,
                pruned: pruned_total,
                wall_naive,
                wall_exhaustive,
                wall_pruned,
            });
        }
    }
    results
}

/// Render the measurement matrix as machine-readable JSON.
pub fn to_json(scale: Scale, results: &[CaseResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"e14\",");
    let _ = writeln!(out, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(out, "  \"top_n\": {TOP_N},");
    let _ = writeln!(out, "  \"cases\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"mix\": \"{}\", \"model\": \"{}\", \
             \"postings_exhaustive\": {}, \"postings_pruned\": {}, \
             \"docs_skipped\": {}, \"seeks\": {}, \"bound_exits\": {}, \
             \"scan_reduction\": {:.3}, \"time_speedup_vs_naive\": {:.3}, \
             \"prune_overhead_ratio\": {:.3}, \
             \"wall_ns_naive\": {}, \"wall_ns_exhaustive\": {}, \"wall_ns_pruned\": {}}}{comma}",
            r.mix,
            r.model,
            r.exhaustive.postings_scanned,
            r.pruned.postings_scanned,
            r.pruned.docs_skipped,
            r.pruned.seeks,
            r.pruned.bound_exits,
            r.scan_reduction(),
            r.time_speedup_vs_naive(),
            r.prune_overhead_ratio(),
            r.wall_naive.as_nanos(),
            r.wall_exhaustive.as_nanos(),
            r.wall_pruned.as_nanos(),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Enforce the trec_like prune-overhead gate at the scale-appropriate
/// ceiling, returning the ceiling applied. Shared by E14 and E17 (the
/// storage experiment gates the same invariant on its own measurement)
/// so the gate logic lives in exactly one place.
pub fn assert_prune_overhead_gate(results: &[CaseResult], scale: Scale) -> f64 {
    let ceiling = match scale {
        Scale::Quick => PRUNE_OVERHEAD_GATE,
        Scale::Full => PRUNE_OVERHEAD_GATE_FULL,
    };
    for r in results {
        if r.mix == "trec_like" {
            assert!(
                r.prune_overhead_ratio() <= ceiling,
                "prune overhead gate: {} / {} at {:.3} > {ceiling}",
                r.mix,
                r.model,
                r.prune_overhead_ratio()
            );
        }
    }
    ceiling
}

/// Run E14, emit `BENCH_daat.json` next to the working directory, and
/// enforce the prune-overhead gate: on the trec_like mixes the pruned
/// kernel must not be slower than the exhaustive merge (the e14 anomaly
/// the block layout fixed — several mixes used to come in above 1.0).
pub fn run(scale: Scale) -> Table {
    let results = measure(scale);

    // Write the artifact before gating so a gate failure still leaves the
    // measured rows on disk for inspection.
    let json = to_json(scale, &results);
    let json_path =
        std::env::var("MOA_BENCH_DAAT_JSON").unwrap_or_else(|_| "BENCH_daat.json".to_owned());
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("e14: could not write {json_path}: {e}");
    }

    let gate_ceiling = assert_prune_overhead_gate(&results, scale);

    let mut t = Table::new(
        "E14: bounds-pruned DAAT (MaxScore) vs exhaustive cursor merge",
        &[
            "query mix",
            "model",
            "postings (exhaustive)",
            "postings (pruned)",
            "reduction",
            "seeks",
            "bound exits",
            "time (seed naive)",
            "time (exhaustive)",
            "time (pruned)",
            "prune/exhaustive",
        ],
    );
    for r in &results {
        t.row(vec![
            r.mix.into(),
            r.model.into(),
            r.exhaustive.postings_scanned.to_string(),
            r.pruned.postings_scanned.to_string(),
            format!("{:.2}x", r.scan_reduction()),
            r.pruned.seeks.to_string(),
            r.pruned.bound_exits.to_string(),
            fmt_duration(r.wall_naive),
            fmt_duration(r.wall_exhaustive),
            fmt_duration(r.wall_pruned),
            format!("{:.3}", r.prune_overhead_ratio()),
        ]);
    }
    let worst = results
        .iter()
        .map(CaseResult::scan_reduction)
        .fold(f64::INFINITY, f64::min);
    let best = results
        .iter()
        .map(CaseResult::scan_reduction)
        .fold(0.0f64, f64::max);
    let worst_speedup = results
        .iter()
        .map(CaseResult::time_speedup_vs_naive)
        .fold(f64::INFINITY, f64::min);
    t.note(format!(
        "postings-scanned reduction spans {worst:.2}x–{best:.2}x; every configuration verified bit-exact against both the kernel exhaustive merge and the seed's naive merge before timing"
    ));
    t.note(format!(
        "wall-time speedup vs the seed's per-posting-term_weight merge is >= {worst_speedup:.2}x; the kernel exhaustive column isolates how much of that the precomputed scorers alone deliver"
    ));
    let worst_ratio = results
        .iter()
        .filter(|r| r.mix == "trec_like")
        .map(CaseResult::prune_overhead_ratio)
        .fold(0.0f64, f64::max);
    t.note(format!(
        "prune-overhead gate: pruned/exhaustive wall ratio on trec_like peaks at {worst_ratio:.3} (ceiling {gate_ceiling}) — pruning must not cost more than it saves"
    ));
    t.note(format!("machine-readable copy written to {json_path}"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_pruning_is_exact_and_effective() {
        // `measure` itself asserts bit-exactness per query; here we gate
        // the acceptance claim: >= 2x postings-scanned reduction on the
        // TrecLike mix and >= 1.9x on Topical at N = 10. (The topical bar
        // moved from 2.0 with the block layout: candidate bounds now live
        // at the 128-posting storage-block granularity — one bound per
        // physical block instead of the old 8/64 side tables — which
        // costs a few percent of scan reduction on the densest mix and
        // buys the colocated one-load skip decision that fixed the
        // pruned-slower-than-exhaustive wall-time anomaly.)
        let results = measure(Scale::Quick);
        assert_eq!(results.len(), 9, "3 mixes x 3 models");
        for r in &results {
            assert_eq!(
                r.pruned.postings_scanned + r.pruned.docs_skipped,
                r.exhaustive.postings_scanned,
                "work ledger must balance ({}, {})",
                r.mix,
                r.model
            );
            let bar = match r.mix {
                "trec_like" => 2.0,
                "topical" => 1.9,
                _ => 0.0,
            };
            if bar > 0.0 {
                assert!(
                    r.scan_reduction() >= bar,
                    "{} / {}: reduction {:.2}x below the {bar}x acceptance bar",
                    r.mix,
                    r.model,
                    r.scan_reduction()
                );
            }
        }
    }

    #[test]
    fn e14_json_is_well_formed() {
        let results = measure(Scale::Quick);
        let json = to_json(Scale::Quick, &results);
        assert!(json.contains("\"experiment\": \"e14\""));
        assert_eq!(json.matches("{\"mix\"").count(), results.len());
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
