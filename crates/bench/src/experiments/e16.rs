//! E16 — sharded serving scaling: shards × threshold propagation.
//!
//! The ROADMAP's serving north star, measured: the collection is
//! document-partitioned into P ∈ {1, 2, 4, 8} shards behind
//! `moa_serve::ServeSession` (per-shard planner picks, tie-stable
//! merge), and a fixed query batch is replayed at every shard count with
//! cross-shard threshold propagation on and off.
//!
//! Figures per configuration (medians over [`RUNS`] replays):
//!
//! * **crit. path** — the busiest shard's summed busy time, taken from a
//!   *sequential* profiling replay (each shard alone, so the figure is
//!   free of scheduler interference): the batch wall a deployment with
//!   one core per shard converges to,
//! * **speedup** — crit. path(1 shard) / crit. path(P shards), same
//!   propagation mode,
//! * **postings** — total postings scanned across shards and queries,
//!   with the overhead (or saving) vs the single shard. Sharding changes
//!   the *work*, not just its distribution: every shard warms its own
//!   heap (overhead), but shard-local block-max tables are tighter than
//!   collection-wide ones and the propagated threshold prunes off
//!   competition a shard cannot see locally (savings).
//!
//! E16 used to also report a "batch wall" and gate a wall-speedup on it.
//! That figure was *worse than misleading*: the scoped-thread-per-batch
//! runtime it measured paid a thread spawn/join per shard per batch —
//! more than the queries themselves cost — and clocked 0.44–0.76× the
//! sequential wall at 2–8 shards while the gate certified it as the
//! serving path. The metric is deleted; end-to-end serving throughput
//! and latency are E18's job (`BENCH_throughput.json`), measured under
//! sustained load on the persistent worker pool that replaced the
//! scoped path. E16 keeps what it can measure honestly: deterministic
//! work and critical-path scaling.
//!
//! Correctness and scaling are enforced, not assumed: every
//! configuration's merged top-N must be identical to the single-shard
//! answers, at every P > 1 propagation must not scan more than the
//! oblivious mode, and the 4-shard propagating critical path must beat
//! the single shard — the run (and CI's E16 smoke) fails otherwise.

use std::fmt::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use moa_corpus::{generate_queries, Collection, CollectionConfig, DfBias, QueryConfig};
use moa_ir::InvertedIndex;
use moa_serve::{BatchQuery, ServeConfig, ServeSession, ShardSpec};

use crate::harness::{fmt_duration, Scale, Table};

/// Ranking depth. Deep enough that ranking is real work per shard (the
/// regime where a serving layer matters); the propagated threshold still
/// bites because every shard chases the same global N-th score.
const TOP_N: usize = 100;

/// Shard counts swept.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Timed replays per configuration (median reported).
const RUNS: usize = 3;

/// One measured configuration.
pub struct ServingResult {
    /// Shard count.
    pub shards: usize,
    /// Whether cross-shard threshold propagation was on.
    pub propagate: bool,
    /// Median critical path: the busiest shard's summed busy time — the
    /// batch wall a deployment with one core per shard converges to.
    pub critical_path: Duration,
    /// Total postings scanned (all shards, all queries, one replay).
    pub postings: usize,
    /// Queries in the batch.
    pub queries: usize,
}

fn session(index: &Arc<InvertedIndex>, shards: usize, propagate: bool) -> ServeSession {
    let config = ServeConfig {
        shard_spec: ShardSpec::Range { shards },
        propagate,
        ..ServeConfig::planned(shards)
    };
    ServeSession::new(Arc::clone(index), config).expect("collection shards cleanly")
}

/// Run the shards × propagation sweep.
pub fn measure(scale: Scale) -> Vec<ServingResult> {
    let config = match scale {
        Scale::Quick => CollectionConfig::small(),
        Scale::Full => CollectionConfig::ft_scale(),
    };
    let collection = Collection::generate(config).expect("valid preset");
    let index = Arc::new(InvertedIndex::from_collection(&collection));
    let num_queries = match scale {
        Scale::Quick => 30,
        Scale::Full => 40,
    };
    let batch: Vec<BatchQuery> = generate_queries(
        &collection,
        &QueryConfig {
            num_queries,
            bias: DfBias::FrequentOnly,
            seed: 0xE16,
            ..QueryConfig::default()
        },
    )
    .expect("valid workload config")
    .into_iter()
    .map(|q| BatchQuery {
        terms: q.terms,
        n: TOP_N,
    })
    .collect();

    // The answers every configuration must reproduce.
    let reference = session(&index, 1, false)
        .submit_many(&batch)
        .expect("blocking admission never sheds");

    let mut results = Vec::new();
    for propagate in [false, true] {
        for &shards in &SHARD_COUNTS {
            let mut svc = session(&index, shards, propagate);
            // Warm-up replay: settles per-shard planner calibration and
            // lazily built bound tables, and pins correctness. Sequential,
            // so the calibration state every later figure rests on is
            // deterministic (a concurrent warm-up would feed the planners
            // interleaving-dependent counters).
            let warm = svc.submit_many_sequential(&batch);
            for (qi, (got, want)) in warm
                .expect_ok()
                .iter()
                .zip(reference.expect_ok().iter())
                .enumerate()
            {
                assert_eq!(
                    got.top, want.top,
                    "e16: {shards}-shard top-N diverged from single-shard on query {qi} \
                     (propagate={propagate})"
                );
            }
            // Steady-state work figure from the deterministic sequential
            // replay (propagation order is then fixed, so the committed
            // posting counts reproduce run to run).
            let steady = svc.submit_many_sequential(&batch);
            let postings = steady.total_work().postings_scanned;
            // Median sequential critical path over replays: the
            // sequential run's busy times are free of scheduler
            // interference on oversubscribed hosts.
            let mut paths = Vec::with_capacity(RUNS);
            for _ in 0..RUNS {
                let prof = svc.submit_many_sequential(&batch);
                paths.push(
                    prof.critical_path()
                        .expect("non-empty batch has shard outcomes"),
                );
            }
            paths.sort();
            results.push(ServingResult {
                shards,
                propagate,
                critical_path: paths[paths.len() / 2],
                postings,
                queries: batch.len(),
            });
        }
    }
    results
}

fn baseline(results: &[ServingResult], propagate: bool) -> &ServingResult {
    results
        .iter()
        .find(|r| r.shards == 1 && r.propagate == propagate)
        .expect("shard count 1 is always measured")
}

/// Render the results as machine-readable JSON.
pub fn to_json(scale: Scale, results: &[ServingResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"e16\",");
    let _ = writeln!(out, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(out, "  \"top_n\": {TOP_N},");
    let _ = writeln!(out, "  \"partition\": \"range\",");
    let _ = writeln!(out, "  \"notes\": [");
    let _ = writeln!(
        out,
        "    \"wall_us and measured_wall_speedup were removed: they timed the retired \
         scoped-thread-per-batch runtime, which paid a thread spawn/join per shard per batch and \
         measured 0.44-0.76x the sequential wall at 2-8 shards -- a regression the old gate \
         certified as a speedup\","
    );
    let _ = writeln!(
        out,
        "    \"end-to-end serving throughput and latency are measured under sustained load by \
         E18 (BENCH_throughput.json) on the persistent shard worker pool that replaced the \
         scoped path\","
    );
    let _ = writeln!(
        out,
        "    \"critical_path_us comes from deterministic sequential profiling replays: the \
         busiest shard's summed busy time, the wall-clock floor for one core per shard\""
    );
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"configs\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let base = baseline(results, r.propagate);
        let speedup = base.critical_path.as_secs_f64() / r.critical_path.as_secs_f64().max(1e-12);
        let overhead = r.postings as f64 / base.postings.max(1) as f64 - 1.0;
        let _ = writeln!(
            out,
            "    {{\"shards\": {}, \"propagate\": {}, \"queries\": {}, \
             \"critical_path_us\": {}, \"speedup_vs_single\": {:.3}, \
             \"postings_scanned\": {}, \"postings_overhead_vs_single\": {:.4}}}{comma}",
            r.shards,
            r.propagate,
            r.queries,
            r.critical_path.as_micros(),
            speedup,
            r.postings,
            overhead,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run E16, emit `BENCH_serving.json`, and enforce the gates.
pub fn run(scale: Scale) -> Table {
    let results = measure(scale);

    let json = to_json(scale, &results);
    let json_path =
        std::env::var("MOA_BENCH_SERVING_JSON").unwrap_or_else(|_| "BENCH_serving.json".to_owned());
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("e16: could not write {json_path}: {e}");
    }

    let mut t = Table::new(
        "E16: sharded serving scaling (shards x threshold propagation)",
        &[
            "shards",
            "propagate",
            "crit. path",
            "speedup",
            "postings",
            "overhead vs x1",
        ],
    );
    for r in &results {
        let base = baseline(&results, r.propagate);
        let speedup = base.critical_path.as_secs_f64() / r.critical_path.as_secs_f64().max(1e-12);
        let overhead = r.postings as f64 / base.postings.max(1) as f64 - 1.0;
        t.row(vec![
            r.shards.to_string(),
            if r.propagate { "on" } else { "off" }.to_string(),
            fmt_duration(r.critical_path),
            format!("{speedup:.2}x"),
            r.postings.to_string(),
            format!("{overhead:+.1}%", overhead = overhead * 100.0),
        ]);
    }
    t.note(format!(
        "batch of {} FrequentOnly queries, top-{TOP_N}, range partition; medians of {RUNS} replays",
        results.first().map_or(0, |r| r.queries)
    ));
    t.note(format!(
        "host has {} core(s); 'crit. path' is the busiest shard's summed busy time from a \
         sequential profiling replay — the wall a one-core-per-shard deployment converges to, \
         and what 'speedup' is computed from",
        thread::available_parallelism().map_or(1, std::num::NonZero::get)
    ));
    t.note(
        "the old 'batch wall' column is gone: it timed the retired scoped-thread runtime \
         (0.44-0.76x sequential at 2-8 shards — spawn/join per batch); sustained-load \
         throughput/latency on the worker pool is E18's job",
    );
    t.note("gate (enforced): every configuration's merged top-N identical to single-shard");
    t.note("gate (enforced): at every shard count > 1, propagation scans no more postings than the oblivious mode");
    t.note(format!("machine-readable copy written to {json_path}"));

    // Propagation must pay, not just break even: fewer postings at every
    // sharded count (answers already pinned identical in measure()).
    for &shards in &SHARD_COUNTS[1..] {
        let on = results
            .iter()
            .find(|r| r.shards == shards && r.propagate)
            .expect("measured");
        let off = results
            .iter()
            .find(|r| r.shards == shards && !r.propagate)
            .expect("measured");
        assert!(
            on.postings <= off.postings,
            "e16 gate: propagation scanned more at {shards} shards ({} > {})",
            on.postings,
            off.postings
        );
    }
    // And sharding must actually scale: the 4-shard propagating critical
    // path has to beat the single shard comfortably. (Committed
    // full-scale figure: ≥2x; the 1.3 floor is a regression tripwire
    // tolerant of noisy hosts.)
    let base = baseline(&results, true);
    let four = results
        .iter()
        .find(|r| r.shards == 4 && r.propagate)
        .expect("measured");
    let speedup = base.critical_path.as_secs_f64() / four.critical_path.as_secs_f64().max(1e-12);
    assert!(
        speedup >= 1.3,
        "e16 gate: 4-shard critical-path speedup {speedup:.2}x below the 1.3x floor"
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_sharded_serving_scales_and_propagation_pays() {
        let results = measure(Scale::Quick);
        assert_eq!(results.len(), SHARD_COUNTS.len() * 2);
        for r in &results {
            assert!(r.postings > 0);
            assert!(r.queries > 0);
        }
        // Propagation never scans more than the oblivious mode.
        for &shards in &SHARD_COUNTS[1..] {
            let on = results
                .iter()
                .find(|r| r.shards == shards && r.propagate)
                .expect("measured");
            let off = results
                .iter()
                .find(|r| r.shards == shards && !r.propagate)
                .expect("measured");
            assert!(
                on.postings <= off.postings,
                "propagation scanned more at {shards} shards"
            );
        }
    }

    #[test]
    fn e16_json_is_well_formed() {
        let results = measure(Scale::Quick);
        let json = to_json(Scale::Quick, &results);
        assert!(json.contains("\"experiment\": \"e16\""));
        assert!(json.contains("\"notes\""));
        // The retired metrics may be *mentioned* in the notes (that is
        // the honest record), but must not exist as data keys.
        assert!(!json.contains("\"measured_wall_speedup\":"));
        assert!(!json.contains("\"wall_us\":"));
        assert_eq!(json.matches("{\"shards\"").count(), results.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
