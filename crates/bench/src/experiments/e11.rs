//! E11 (ablation) — the switch-policy threshold design space.
//!
//! The safe strategy's early check switches fragment B in when the
//! B-resident query terms' upper-bound score share exceeds `max_b_share`.
//! This ablation sweeps the threshold from 0 (always switch: full-scan
//! quality at full-scan cost) to 1 (never switch: unsafe A-only behaviour),
//! mapping the safety/speed dial the paper's Step 1 leaves implicit.

use moa_ir::{FragmentSpec, Strategy, SwitchPolicy};

use crate::experiments::fixture::RetrievalFixture;
use crate::harness::{fmt_duration, Scale, Table};

/// Run E11.
pub fn run(scale: Scale) -> Table {
    let f = RetrievalFixture::build(scale);
    let frag = f.fragment(FragmentSpec::TermFraction(0.95));

    let full = f.run_strategy(&frag, Strategy::FullScan, SwitchPolicy::default());
    let map_full = f.map(&full);

    let mut t = Table::new(
        "E11 (ablation): switch-policy threshold sweep (fragment A = 95% rarest terms)",
        &[
            "max B share",
            "queries using B",
            "postings scanned",
            "batch time",
            "MAP",
            "overlap@20",
        ],
    );

    for &threshold in &[0.0f64, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let policy = SwitchPolicy {
            max_b_share: threshold,
        };
        let out = f.run_strategy(&frag, Strategy::Switch { use_b_index: false }, policy);
        t.row(vec![
            format!("{threshold:.2}"),
            format!("{}/{}", out.used_b, f.queries.len()),
            out.postings_scanned.to_string(),
            fmt_duration(out.elapsed),
            format!("{:.4}", f.map(&out)),
            format!("{:.3}", f.mean_overlap(&full, &out, 20)),
        ]);
    }

    t.note(format!("full-scan reference MAP: {map_full:.4}"));
    t.note("threshold 0 = always consult B (safe, slow); threshold 1 = never (unsafe, fast); the knee shows how cheap safety is on this workload");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_extremes_match_full_and_a_only() {
        let t = run(Scale::Quick);
        // Threshold 0.0: every query with at least one B-resident term
        // consults B (queries entirely inside A never need it, so the count
        // may be below the workload size); the result is lossless.
        let first = &t.rows[0];
        let last = t.rows.last().unwrap(); // threshold 1.0: none does
        let n_queries: usize = first[1].split('/').nth(1).unwrap().parse().unwrap();
        let b_first: usize = first[1].split('/').next().unwrap().parse().unwrap();
        let b_last: usize = last[1].split('/').next().unwrap().parse().unwrap();
        assert!(b_first * 2 > n_queries, "too few switches at threshold 0");
        assert_eq!(b_last, 0);
        // Overlap at threshold 0 is exactly 1 (identical to full scan).
        let overlap_first: f64 = first[5].parse().unwrap();
        assert!((overlap_first - 1.0).abs() < 1e-9);
    }

    #[test]
    fn e11_b_usage_is_monotone_in_threshold() {
        let t = run(Scale::Quick);
        let mut prev = usize::MAX;
        for row in &t.rows {
            let used: usize = row[1].split('/').next().unwrap().parse().unwrap();
            assert!(used <= prev, "B usage not monotone: {used} after {prev}");
            prev = used;
        }
    }
}
