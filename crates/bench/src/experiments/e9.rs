//! E9 — the Zipf premise and fragment geometry (§1, §3 Step 1).
//!
//! Validates the statistical foundation of the fragmentation argument:
//! *"the least frequently occurring terms are the most interesting ones
//! while the most frequently occurring/least interesting terms take up most
//! of the storage/memory space"*. Reports the rank-frequency slope of the
//! generated collection and the term-fraction ↔ volume-fraction curve, and
//! situates the paper's "95% of terms ≈ 5% of volume" FT figure against the
//! laptop-scale geometry.

use moa_corpus::{Collection, CollectionConfig};

use crate::harness::{Scale, Table};

/// Least-squares slope of log(freq) against log(rank) over observed terms.
fn rank_frequency_slope(cf_sorted_desc: &[u64]) -> f64 {
    let pts: Vec<(f64, f64)> = cf_sorted_desc
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(r, &c)| (((r + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Run E9.
pub fn run(scale: Scale) -> Table {
    let config = match scale {
        Scale::Quick => CollectionConfig::small(),
        Scale::Full => CollectionConfig::ft_scale(),
    };
    let zipf_s = config.zipf_exponent;
    let c = Collection::generate(config).expect("valid preset");

    // Collection frequency sorted descending = rank-frequency curve.
    let mut cf: Vec<u64> = c.cf().iter().copied().filter(|&x| x > 0).collect();
    cf.sort_unstable_by(|a, b| b.cmp(a));
    let slope = rank_frequency_slope(&cf);

    // df ascending = "most interesting first" order for volume accounting.
    let mut dfs: Vec<u32> = c.df().iter().copied().filter(|&d| d > 0).collect();
    dfs.sort_unstable();
    let total_volume: u64 = dfs.iter().map(|&d| u64::from(d)).sum();

    let mut t = Table::new(
        "E9: Zipf premise — term-fraction vs postings-volume geometry",
        &["rarest term fraction", "volume fraction", "df boundary"],
    );
    for pct in [50usize, 75, 90, 95, 98, 99] {
        let cut = (dfs.len() * pct / 100).min(dfs.len().saturating_sub(1));
        let vol: u64 = dfs[..cut].iter().map(|&d| u64::from(d)).sum();
        t.row(vec![
            format!("{pct}%"),
            format!("{:.1}%", 100.0 * vol as f64 / total_volume as f64),
            dfs[cut].to_string(),
        ]);
    }

    let hapax = dfs.iter().filter(|&&d| d <= 2).count();
    t.note(format!(
        "rank-frequency log-log slope: {slope:.2} (generator exponent {zipf_s}; topical mixing flattens the head)",
    ));
    t.note(format!(
        "observed vocabulary {} terms over {} docs; {} ({:.0}%) occur in ≤2 docs",
        dfs.len(),
        c.num_docs(),
        hapax,
        100.0 * hapax as f64 / dfs.len() as f64
    ));
    t.note("paper (FT, 210k docs): rarest 95% of terms ≈ 5% of volume; at laptop scale the df ceiling compresses the head — the concentration is directionally identical but weaker (documented substitution, see DESIGN.md)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_volume_is_sub_proportional_to_terms() {
        let t = run(Scale::Quick);
        // Every row: volume fraction strictly below term fraction.
        for row in &t.rows {
            let term_frac: f64 = row[0].trim_end_matches('%').parse().unwrap();
            let vol_frac: f64 = row[1].trim_end_matches('%').parse().unwrap();
            assert!(
                vol_frac < term_frac,
                "volume {vol_frac}% not below terms {term_frac}%"
            );
        }
    }

    #[test]
    fn e9_slope_is_negative_and_steep() {
        let t = run(Scale::Quick);
        let note = &t.notes[0];
        let slope: f64 = note
            .split("slope: ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(slope < -0.5, "slope {slope} not steeply negative");
    }

    #[test]
    fn slope_of_exact_power_law() {
        let cf: Vec<u64> = (1..=1000u64).map(|r| (1_000_000 / r).max(1)).collect();
        let s = rank_frequency_slope(&cf);
        assert!((s + 1.0).abs() < 0.05, "slope {s}");
    }
}
