//! E3 — the non-dense index on the large fragment (§3 Step 1).
//!
//! Claim under test: *"… plan to introduce a non-dense index in the system
//! to speed up processing the large fragment. This even will allow for
//! extra computations while still decreasing execution time."*
//!
//! The switch strategy is run twice: fragment B accessed by full scan (the
//! BAT-selection baseline) and through a sparse block index on its sorted
//! term column. Result quality must be identical; scanned volume and time
//! must drop.

use moa_ir::{FragmentSpec, Strategy, SwitchPolicy};

use crate::experiments::fixture::RetrievalFixture;
use crate::harness::{fmt_duration, Scale, Table};

/// Run E3.
pub fn run(scale: Scale) -> Table {
    let f = RetrievalFixture::build(scale);
    let spec = FragmentSpec::TermFraction(0.95);
    let policy = SwitchPolicy::default();

    // Without the index.
    let frag_plain = f.fragment(spec);
    let plain = f.run_strategy(&frag_plain, Strategy::Switch { use_b_index: false }, policy);

    // With the non-dense index on B.
    let mut frag_indexed = moa_ir::FragmentedIndex::build(std::sync::Arc::clone(&f.index), spec)
        .expect("non-empty index");
    frag_indexed
        .fragment_b_mut()
        .build_sparse_index(1024)
        .expect("sorted term column");
    let frag_indexed = std::sync::Arc::new(frag_indexed);
    let indexed = f.run_strategy(
        &frag_indexed,
        Strategy::Switch { use_b_index: true },
        policy,
    );

    let map_plain = f.map(&plain);
    let map_indexed = f.map(&indexed);

    let mut t = Table::new(
        "E3: non-dense index accelerates fragment-B access in the switch strategy",
        &[
            "B access",
            "postings scanned",
            "batch time",
            "MAP",
            "queries using B",
        ],
    );
    t.row(vec![
        "scan (no index)".into(),
        plain.postings_scanned.to_string(),
        fmt_duration(plain.elapsed),
        format!("{map_plain:.4}"),
        format!("{}/{}", plain.used_b, f.queries.len()),
    ]);
    t.row(vec![
        "non-dense index".into(),
        indexed.postings_scanned.to_string(),
        fmt_duration(indexed.elapsed),
        format!("{map_indexed:.4}"),
        format!("{}/{}", indexed.used_b, f.queries.len()),
    ]);

    t.note(format!(
        "claim 'non-dense index … still decreasing execution time': scanned {} -> {} ({:.1}% less) — {}",
        plain.postings_scanned,
        indexed.postings_scanned,
        100.0 * (1.0 - indexed.postings_scanned as f64 / plain.postings_scanned.max(1) as f64),
        if indexed.postings_scanned < plain.postings_scanned { "HOLDS" } else { "DOES NOT HOLD" }
    ));
    t.note(format!(
        "quality unchanged: MAP {map_plain:.4} vs {map_indexed:.4} — {}",
        if (map_plain - map_indexed).abs() < 1e-9 {
            "IDENTICAL"
        } else {
            "DIFFERS"
        }
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_index_reduces_scanning_without_quality_change() {
        let t = run(Scale::Quick);
        let plain: f64 = t.rows[0][1].parse().unwrap();
        let indexed: f64 = t.rows[1][1].parse().unwrap();
        assert!(indexed <= plain);
        let map_plain: f64 = t.rows[0][3].parse().unwrap();
        let map_indexed: f64 = t.rows[1][3].parse().unwrap();
        assert!((map_plain - map_indexed).abs() < 1e-9);
    }
}
