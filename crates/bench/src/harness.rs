//! Timing and table-rendering utilities shared by all experiments.

use std::time::{Duration, Instant};

/// Experiment scale: `Quick` finishes in seconds (CI-friendly); `Full`
/// uses the FT-scale collection the paper's numbers refer to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs, sub-second runs.
    Quick,
    /// FT-scale inputs (tens of seconds).
    Full,
}

impl Scale {
    /// Parse from a `--full` flag presence.
    pub fn from_full_flag(full: bool) -> Scale {
        if full {
            Scale::Full
        } else {
            Scale::Quick
        }
    }
}

/// Median wall-clock time of `k` runs of `f` (after one warm-up run).
pub fn time_median(k: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut samples: Vec<Duration> = (0..k.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Interleaved best-of-`k` timing of several alternatives: each round
/// times every routine once back to back, and each routine keeps its
/// fastest round. Interleaving cancels machine drift *between* the
/// alternatives (a slowdown mid-measurement hits all of them), and the
/// minimum is the classic noise-robust statistic on a shared, preemptible
/// host — the fastest observed run is the one least disturbed by
/// scheduling. One untimed warm-up round precedes measurement. Returns
/// one duration per routine, in input order.
pub fn time_best_interleaved(k: usize, routines: &mut [&mut dyn FnMut()]) -> Vec<Duration> {
    for f in routines.iter_mut() {
        f(); // warm-up
    }
    let mut best = vec![Duration::MAX; routines.len()];
    for _ in 0..k.max(1) {
        for (i, f) in routines.iter_mut().enumerate() {
            let t0 = Instant::now();
            f();
            best[i] = best[i].min(t0.elapsed());
        }
    }
    best
}

/// Latency percentiles over a set of samples.
///
/// Nearest-rank on the sorted samples (`⌈p/100 · len⌉`-th value): every
/// reported figure is a latency that actually occurred — no
/// interpolation inventing values between observations — and the p100
/// tail is the true maximum. The convention serving dashboards use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Median (p50).
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum observed (p100).
    pub max: Duration,
}

impl Percentiles {
    /// Compute nearest-rank percentiles. Returns `None` on an empty
    /// sample set — there is no latency distribution to summarize, and
    /// zeros would read as measurements.
    pub fn of(samples: &mut [Duration]) -> Option<Percentiles> {
        if samples.is_empty() {
            return None;
        }
        samples.sort();
        let at = |p: f64| {
            let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
            samples[rank.clamp(1, samples.len()) - 1]
        };
        Some(Percentiles {
            p50: at(50.0),
            p95: at(95.0),
            p99: at(99.0),
            max: samples[samples.len() - 1],
        })
    }
}

/// A paper-style result table: fixed headers, aligned text rendering, and
/// free-form claim-check notes underneath.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (e.g. "E1: fragmentation speed/quality trade-off").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
    /// Claim-check notes rendered under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table {:?}",
            self.title
        );
        self.rows.push(cells);
        self
    }

    /// Append a claim-check note.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Table {
        self.notes.push(s.into());
        self
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header_line.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("   {n}\n"));
        }
        out
    }

    /// Render as CSV (headers + rows; notes become `# comment` lines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for n in &self.notes {
            out.push_str(&format!("# {n}\n"));
        }
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a note"));
        // All rows align on the widest cell.
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        assert!(lines[1].len() == lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_contains_rows_and_notes() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("claim ok");
        let csv = t.to_csv();
        assert!(csv.starts_with("# claim ok\n"));
        assert!(csv.contains("a,b\n"));
        assert!(csv.contains("1,2\n"));
    }

    #[test]
    fn median_timer_runs() {
        let mut count = 0;
        let d = time_median(3, || count += 1);
        assert_eq!(count, 4); // 1 warm-up + 3 samples
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500us");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    fn percentiles_use_nearest_rank_on_observed_samples() {
        // 100 distinct samples: 1us..=100us. Nearest-rank p50 is the
        // 50th value, p95 the 95th, p99 the 99th, max the 100th.
        let mut samples: Vec<Duration> = (1..=100).rev().map(Duration::from_micros).collect();
        let p = Percentiles::of(&mut samples).expect("non-empty");
        assert_eq!(p.p50, Duration::from_micros(50));
        assert_eq!(p.p95, Duration::from_micros(95));
        assert_eq!(p.p99, Duration::from_micros(99));
        assert_eq!(p.max, Duration::from_micros(100));
    }

    #[test]
    fn percentiles_of_one_sample_are_that_sample() {
        let mut samples = vec![Duration::from_micros(7)];
        let p = Percentiles::of(&mut samples).expect("non-empty");
        assert_eq!(p.p50, Duration::from_micros(7));
        assert_eq!(p.p99, Duration::from_micros(7));
        assert_eq!(p.max, Duration::from_micros(7));
    }

    #[test]
    fn percentiles_of_nothing_are_none() {
        assert_eq!(Percentiles::of(&mut []), None);
    }

    #[test]
    fn scale_flag() {
        assert_eq!(Scale::from_full_flag(true), Scale::Full);
        assert_eq!(Scale::from_full_flag(false), Scale::Quick);
    }
}
