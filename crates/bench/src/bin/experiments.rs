//! The experiment driver: regenerates every paper claim's table.
//!
//! ```text
//! experiments <e1|e2|...|e21|all> [--full] [--csv]
//! ```
//!
//! `--full` runs at FT scale (tens of seconds per experiment); the default
//! quick scale finishes in seconds. `--csv` emits machine-readable output.

use std::io::Write;

use moa_bench::experiments;
use moa_bench::harness::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id: Option<String> = None;
    let mut full = false;
    let mut csv = false;
    for a in &args {
        match a.as_str() {
            "--full" => full = true,
            "--csv" => csv = true,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if !other.starts_with('-') => id = Some(other.to_owned()),
            other => {
                eprintln!("unknown flag: {other}");
                print_usage();
                std::process::exit(2);
            }
        }
    }
    let Some(id) = id else {
        print_usage();
        std::process::exit(2);
    };

    let scale = Scale::from_full_flag(full);
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    writeln!(
        lock,
        "# Moa top-N reproduction — experiment {id} at {scale:?} scale"
    )
    .expect("stdout");
    for table in experiments::run(&id, scale) {
        let text = if csv { table.to_csv() } else { table.render() };
        writeln!(lock, "{text}").expect("stdout");
    }
}

fn print_usage() {
    eprintln!("usage: experiments <e1|e2|...|e21|all> [--full] [--csv]");
    eprintln!();
    eprintln!("  e1   unsafe fragmentation speed/quality trade-off   (paper §3 step 1)");
    eprintln!("  e2   safe switching with the early quality check    (paper §3 step 1)");
    eprintln!("  e3   non-dense index on the large fragment          (paper §3 step 1)");
    eprintln!("  e4   inter-object rewrite of Example 1              (paper §3 step 2)");
    eprintln!("  e5   FA/TA/NRA bound administration                 (paper §2)");
    eprintln!("  e6   STOP AFTER braking distance [CK98]             (paper §2)");
    eprintln!("  e7   probabilistic top-N [DR99]                     (paper §2)");
    eprintln!("  e8   cost model accuracy                            (paper §3 step 3)");
    eprintln!("  e9   Zipf premise / fragment geometry               (paper §1, §3)");
    eprintln!("  e10  fragment volume-budget sweep                   (paper §3 step 1)");
    eprintln!("  e11  switch-policy threshold sweep                   (ablation)");
    eprintln!("  e12  ranking-model sensitivity                       (ablation)");
    eprintln!("  e13  set-based vs element-at-a-time                  (paper §3 step 1)");
    eprintln!("  e14  bounds-pruned DAAT (MaxScore) vs exhaustive     (paper §2/§3)");
    eprintln!("  e15  cost-driven planner vs best-in-hindsight        (paper §3 step 3)");
    eprintln!("  e16  sharded serving scaling + threshold propagation  (serving layer)");
    eprintln!("  e17  block-compressed posting storage: decode + walls  (storage layer)");
    eprintln!("  e18  sustained-load serving: pool vs scoped vs sequential (serving layer)");
    eprintln!("  e19  overload shedding, deadlines, worker fault storm    (serving layer)");
    eprintln!("  e20  telemetry overhead: instrumented vs uninstrumented  (observability)");
    eprintln!("  e21  cross-batch result cache + plan memo under Zipf load (serving layer)");
}
