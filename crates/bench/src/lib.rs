//! # moa-bench — the experiment harness
//!
//! Reproduces every quantitative claim of Blok (EDBT 2000). The paper has
//! no numbered tables or figures (it is a PhD-workshop research plan), so
//! each experiment id E1–E10 maps to a claim or worked example; the mapping
//! is recorded in `DESIGN.md` and results are recorded in `EXPERIMENTS.md`.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p moa-bench --bin experiments -- all
//! cargo run --release -p moa-bench --bin experiments -- e1 --full
//! ```

pub mod experiments;
pub mod harness;

pub use harness::{time_median, Scale, Table};
