//! Criterion benchmarks of the fragmentation strategies (E1–E3 in
//! microbenchmark form): per-query latency under full scan, A-only, and the
//! safe switch with and without the non-dense index on fragment B.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moa_corpus::{generate_queries, Collection, CollectionConfig, Query, QueryConfig};
use moa_ir::{
    FragSearcher, FragmentSpec, FragmentedIndex, InvertedIndex, RankingModel, Strategy,
    SwitchPolicy,
};

struct Fixture {
    frag_plain: Arc<FragmentedIndex>,
    frag_indexed: Arc<FragmentedIndex>,
    queries: Vec<Query>,
}

fn fixture() -> Fixture {
    let collection = Collection::generate(CollectionConfig::small()).expect("preset");
    let index = Arc::new(InvertedIndex::from_collection(&collection));
    let frag_plain = Arc::new(
        FragmentedIndex::build(Arc::clone(&index), FragmentSpec::TermFraction(0.95))
            .expect("non-empty"),
    );
    let mut frag_indexed =
        FragmentedIndex::build(Arc::clone(&index), FragmentSpec::TermFraction(0.95))
            .expect("non-empty");
    frag_indexed
        .fragment_b_mut()
        .build_sparse_index(1024)
        .expect("sorted");
    let queries = generate_queries(&collection, &QueryConfig::default()).expect("workload");
    Fixture {
        frag_plain,
        frag_indexed: Arc::new(frag_indexed),
        queries,
    }
}

fn bench_strategies(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("fragment_strategies");
    g.sample_size(20);

    let cases: Vec<(&str, Arc<FragmentedIndex>, Strategy)> = vec![
        ("full_scan", Arc::clone(&f.frag_plain), Strategy::FullScan),
        (
            "a_only",
            Arc::clone(&f.frag_plain),
            Strategy::AOnly { use_a_index: false },
        ),
        (
            "switch_scan",
            Arc::clone(&f.frag_plain),
            Strategy::Switch { use_b_index: false },
        ),
        (
            "switch_indexed",
            Arc::clone(&f.frag_indexed),
            Strategy::Switch { use_b_index: true },
        ),
    ];
    for (label, frag, strategy) in cases {
        let mut searcher = FragSearcher::new(
            Arc::clone(&frag),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        g.bench_function(label, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &f.queries[i % f.queries.len()];
                i += 1;
                searcher
                    .search(black_box(&q.terms), 20, strategy)
                    .expect("query")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
