//! Criterion benchmarks of the optimizer (E4 in microbenchmark form):
//! end-to-end execution of the paper's Example 1 under each optimizer
//! layer, plus optimization time itself.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moa_core::{Env, Expr, OptimizerConfig, Session, Value};

fn example1(n: i64) -> Expr {
    Expr::bag_select(
        Expr::projecttobag(Expr::constant(Value::int_list(0..n))),
        Value::Int(n / 2),
        Value::Int(n / 2 + n / 100),
    )
}

fn bench_example1_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("example1_exec");
    g.sample_size(20);
    for n in [10_000i64, 100_000] {
        let expr = example1(n);
        let mut naive = Session::new();
        naive.set_optimizer_config(OptimizerConfig::disabled());
        let mut inter = Session::new();
        inter.set_optimizer_config(OptimizerConfig {
            logical: true,
            inter_object: true,
            intra_object: false,
            max_passes: 8,
        });
        let full = Session::new();
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| naive.run(black_box(&expr), &Env::new()).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("inter", n), &n, |b, _| {
            b.iter(|| inter.run(black_box(&expr), &Env::new()).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("inter_intra", n), &n, |b, _| {
            b.iter(|| full.run(black_box(&expr), &Env::new()).unwrap())
        });
    }
    g.finish();
}

fn bench_optimize_time(c: &mut Criterion) {
    // Rewriting itself must be cheap relative to execution.
    let session = Session::new();
    let expr = example1(10_000);
    c.bench_function("optimize_only", |b| {
        b.iter(|| session.optimize(black_box(&expr)))
    });
}

criterion_group!(benches, bench_example1_execution, bench_optimize_time);
criterion_main!(benches);
