//! Criterion microbenchmarks of the word-parallel bit-pack kernels and
//! the quantized mini-block bound refinement — the raw per-posting
//! constants behind E17's decode numbers and the planner's
//! `decode_posting` / `daat_prune` cost weights.
//!
//! Groups:
//! * `pack_kernels/unpack_*` — bulk word-parallel decode of one
//!   128-value block at a dividing width (8: 8 lanes per word) and a
//!   straddling width (13: branch-free two-word windows);
//! * `pack_kernels/fused_deltas_*` — the fused gap-decode + prefix-sum
//!   kernel the cursor doc path runs on, incl. the width-0
//!   arithmetic-fill fast path (consecutive ids, no payload read);
//! * `pack_kernels/unpack_slice_mini` — the 16-value mini-block window
//!   decode of the lazy tf path;
//! * `pack_kernels/unpack_one_x128` — the scalar point lookup the
//!   word-parallel kernels replaced on the bulk paths (kept for
//!   comparison);
//! * `pack_kernels/mini_gate_refine` — summing dequantized mini-block
//!   maxima across term cursors: the extra work a passed 128-block gate
//!   pays before touching any payload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moa_corpus::{Collection, CollectionConfig};
use moa_ir::{InvertedIndex, RankingModel, ScoreBounds, ScoreKernel};
use moa_storage::pack::{
    pack_into, unpack_deltas_prefix_sum, unpack_from, unpack_one, unpack_slice,
};

const BLOCK: usize = 128;

fn values_of_width(width: u8) -> Vec<u32> {
    let mask = (1u32 << width) - 1;
    (0..BLOCK as u32)
        .map(|i| (i.wrapping_mul(2_654_435_761)) & mask)
        .collect()
}

fn bench_unpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_kernels");
    for width in [8u8, 13] {
        let values = values_of_width(width);
        let mut words = Vec::new();
        pack_into(&values, width, &mut words);
        let mut out = [0u32; BLOCK];
        g.bench_function(format!("unpack_128x{width}bit"), |b| {
            b.iter(|| {
                unpack_from(black_box(&words), width, BLOCK, &mut out);
                black_box(out[BLOCK - 1])
            })
        });
    }
    let values = values_of_width(13);
    let mut words = Vec::new();
    pack_into(&values, 13, &mut words);
    g.bench_function("unpack_one_x128", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..BLOCK {
                acc ^= unpack_one(black_box(&words), 13, i);
            }
            black_box(acc)
        })
    });
    g.bench_function("unpack_slice_mini", |b| {
        let mut out = [0u32; 16];
        b.iter(|| {
            // An unaligned 16-value window: the lazy tf decode of one
            // mini-block in the middle of a 13-bit packed stream.
            unpack_slice(black_box(&words), 13, 48, 16, &mut out);
            black_box(out[15])
        })
    });
    g.bench_function("pack_128x13bit", |b| {
        b.iter(|| {
            let mut w = Vec::with_capacity(26);
            pack_into(black_box(&values), 13, &mut w);
            black_box(w.len())
        })
    });
    g.finish();
}

fn bench_fused_deltas(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_kernels");
    // Gappy run: deltas need bits, the fused kernel decodes + sums.
    let mut docs = Vec::with_capacity(BLOCK);
    let mut d = 17u32;
    for i in 0..BLOCK as u32 {
        docs.push(d);
        d += 1 + (i.wrapping_mul(2_654_435_761) & 0x3FF);
    }
    let mut deltas = vec![0u32];
    deltas.extend(docs.windows(2).map(|w| w[1] - w[0] - 1));
    let width = moa_storage::pack::bits_for(*deltas.iter().max().expect("non-empty"));
    let mut words = Vec::new();
    pack_into(&deltas, width, &mut words);
    let mut out = [0u32; BLOCK];
    g.bench_function(format!("fused_deltas_128x{width}bit"), |b| {
        b.iter(|| {
            unpack_deltas_prefix_sum(black_box(&words), width, BLOCK, docs[0], &mut out);
            black_box(out[BLOCK - 1])
        })
    });
    // Width-0: consecutive ids, the arithmetic fill that skips the
    // payload entirely.
    g.bench_function("fused_deltas_128x0bit", |b| {
        b.iter(|| {
            unpack_deltas_prefix_sum(black_box(&[]), 0, BLOCK, black_box(1000), &mut out);
            black_box(out[BLOCK - 1])
        })
    });
    g.finish();
}

fn bench_mini_gate_refine(c: &mut Criterion) {
    let collection = Collection::generate(CollectionConfig::small()).expect("valid preset");
    let index = InvertedIndex::from_collection(&collection);
    let kernel = ScoreKernel::new(RankingModel::default(), &index);
    let bounds = ScoreBounds::new(&kernel, &index);
    // The most frequent terms have the most blocks: a realistic
    // multi-term refinement over real bound tables.
    let terms = index.terms_by_df_asc();
    let hot: Vec<u32> = terms.iter().rev().take(4).copied().collect();
    let tables: Vec<_> = hot.iter().map(|&t| bounds.term_blocks(t)).collect();
    let mut g = c.benchmark_group("pack_kernels");
    g.bench_function("mini_gate_refine", |b| {
        b.iter(|| {
            // Sweep every (block, in-block offset) pair once per term:
            // one dequantized nibble lookup + add per cursor, the exact
            // shape of the DAAT refine step.
            let mut acc = 0.0f64;
            for blocks in &tables {
                for (bi, bound) in blocks.iter().enumerate() {
                    acc += bound.mini_bound(black_box(bi * 37 % BLOCK));
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_unpack,
    bench_fused_deltas,
    bench_mini_gate_refine
);
criterion_main!(benches);
