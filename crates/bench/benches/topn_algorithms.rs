//! Criterion benchmarks of the top-N algorithm family (E5/E6/E7 in
//! microbenchmark form): naive sort vs bounded heap, FA vs TA vs NRA
//! across list correlations, STOP AFTER policies, and probabilistic top-N.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moa_corpus::{Correlation, FeatureConfig, FeatureLists};
use moa_storage::EquiWidthHistogram;
use moa_topn::{
    aggressive, conservative, fagin_topn, nra_topn, prob_topn, ta_topn, topn, topn_full_sort, Agg,
    InMemoryLists,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn scored(n: usize, seed: u64) -> Vec<(u32, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u32).map(|i| (i, rng.gen::<f64>())).collect()
}

fn lists(corr: Correlation) -> InMemoryLists {
    let fl = FeatureLists::generate(&FeatureConfig {
        num_objects: 20_000,
        num_lists: 3,
        correlation: corr,
        seed: 0xBE9C,
    })
    .expect("valid config");
    InMemoryLists::from_grades(
        (0..fl.num_lists())
            .map(|i| {
                (0..fl.num_objects() as u32)
                    .map(|o| fl.grade(i, o))
                    .collect()
            })
            .collect(),
    )
}

fn bench_heap_vs_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap_vs_sort");
    let input = scored(100_000, 1);
    for n in [10usize, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("full_sort", n), &n, |b, &n| {
            b.iter(|| topn_full_sort(black_box(input.clone()), n))
        });
        g.bench_with_input(BenchmarkId::new("bounded_heap", n), &n, |b, &n| {
            b.iter(|| topn(black_box(input.clone()), n))
        });
    }
    g.finish();
}

fn bench_middleware(c: &mut Criterion) {
    let mut g = c.benchmark_group("middleware");
    g.sample_size(20);
    for (label, corr) in [
        ("independent", Correlation::Independent),
        ("anti", Correlation::AntiCorrelated(0.8)),
    ] {
        let src = lists(corr);
        g.bench_function(BenchmarkId::new("fa_top10", label), |b| {
            b.iter(|| fagin_topn(black_box(&src), 10, &Agg::Sum))
        });
        g.bench_function(BenchmarkId::new("ta_top10", label), |b| {
            b.iter(|| ta_topn(black_box(&src), 10, &Agg::Sum))
        });
        g.bench_function(BenchmarkId::new("nra_top10", label), |b| {
            b.iter(|| nra_topn(black_box(&src), 10, &Agg::Sum))
        });
    }
    g.finish();
}

fn bench_stop_after_and_prob(c: &mut Criterion) {
    let mut g = c.benchmark_group("stop_after");
    let input = scored(100_000, 2);
    let pred = |obj: u32| obj.is_multiple_of(10);
    g.bench_function("conservative", |b| {
        b.iter(|| conservative(black_box(&input), 20, pred))
    });
    g.bench_function("aggressive_accurate", |b| {
        b.iter(|| aggressive(black_box(&input), 20, 0.1, 1.5, pred))
    });

    let values: Vec<f64> = input.iter().map(|&(_, s)| s).collect();
    let hist = EquiWidthHistogram::build(&values, 100).expect("non-empty");
    g.bench_function("probabilistic_0.95", |b| {
        b.iter(|| prob_topn(black_box(&input), 20, &hist, 0.95).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_heap_vs_sort,
    bench_middleware,
    bench_stop_after_and_prob
);
criterion_main!(benches);
