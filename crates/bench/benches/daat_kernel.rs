//! Criterion microbenchmarks of the bounds-pruned query kernel (E14 in
//! microbenchmark form): MaxScore DAAT vs the exhaustive cursor merge,
//! galloping `seek` vs linear advance, and the `TopNHeap::would_enter`
//! fast-reject.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moa_corpus::{generate_queries, Collection, CollectionConfig, DfBias, Query, QueryConfig};
use moa_ir::{DaatSearcher, InvertedIndex, RankingModel};
use moa_topn::TopNHeap;

fn fixture() -> (InvertedIndex, Vec<Query>) {
    let c = Collection::generate(CollectionConfig::small()).expect("valid preset");
    let queries = generate_queries(
        &c,
        &QueryConfig {
            num_queries: 20,
            bias: DfBias::TrecLike { high_df_mix: 0.5 },
            seed: 0xDAA7,
            ..QueryConfig::default()
        },
    )
    .expect("valid workload");
    (InvertedIndex::from_collection(&c), queries)
}

fn bench_daat(c: &mut Criterion) {
    let (index, queries) = fixture();
    let mut g = c.benchmark_group("daat");
    for n in [10usize, 100] {
        let daat = DaatSearcher::new(&index, RankingModel::default());
        g.bench_with_input(BenchmarkId::new("exhaustive", n), &n, |b, &n| {
            b.iter(|| {
                for q in &queries {
                    let _ = black_box(daat.search_exhaustive(&q.terms, n).expect("valid query"));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("maxscore_pruned", n), &n, |b, &n| {
            b.iter(|| {
                for q in &queries {
                    let _ = black_box(daat.search(&q.terms, n).expect("valid query"));
                }
            })
        });
    }
    g.finish();
}

fn bench_cursor_seek(c: &mut Criterion) {
    let (index, _) = fixture();
    // The most frequent term has the longest run: the seek stress case.
    let term = *index.terms_by_df_asc().last().expect("non-empty index");
    let (docs, _) = index.decode_postings(term).expect("term in range");
    let targets: Vec<u32> = docs.iter().copied().step_by(7).collect();
    let mut g = c.benchmark_group("posting_cursor");
    g.bench_function("galloping_seek", |b| {
        b.iter(|| {
            let mut cur = index.cursor(term).expect("term in range");
            let mut skipped = 0usize;
            for &t in &targets {
                skipped += cur.seek(black_box(t));
            }
            skipped
        })
    });
    g.bench_function("linear_advance", |b| {
        b.iter(|| {
            let mut cur = index.cursor(term).expect("term in range");
            let mut skipped = 0usize;
            for &t in &targets {
                while cur.doc().is_some_and(|d| d < black_box(t)) {
                    cur.advance();
                    skipped += 1;
                }
            }
            skipped
        })
    });
    g.finish();
}

fn bench_would_enter(c: &mut Criterion) {
    let mut heap = TopNHeap::new(10);
    for i in 0..10_000u32 {
        heap.push(i, f64::from(i % 997));
    }
    let mut g = c.benchmark_group("topn_heap");
    g.bench_function("would_enter_reject", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..10_000u32 {
                if heap.would_enter(black_box(f64::from(i % 991)), i) {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.finish();
}

criterion_group!(benches, bench_daat, bench_cursor_seek, bench_would_enter);
criterion_main!(benches);
