//! Criterion microbenchmarks of the BAT kernel: selection paths (scan vs
//! binary search vs sparse index), joins, grouped aggregation, and the
//! bounded first-N operator — the physical substrate whose cost shape the
//! fragmentation argument depends on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moa_storage::ops::{
    fetch_join, firstn, group_aggregate, hash_join, scan_select, select_range, sort_by_tail,
    sum_by_head_dense, AggFn, Direction,
};
use moa_storage::{Bat, Column, Scalar, SparseIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sorted_bat(n: u32) -> Bat {
    Bat::dense(Column::from((0..n).collect::<Vec<u32>>()))
}

fn random_scores(n: u32, seed: u64) -> Bat {
    let mut rng = StdRng::seed_from_u64(seed);
    Bat::dense(Column::from(
        (0..n).map(|_| rng.gen::<f64>()).collect::<Vec<f64>>(),
    ))
}

fn bench_select(c: &mut Criterion) {
    let mut g = c.benchmark_group("select");
    for n in [10_000u32, 100_000] {
        let bat = sorted_bat(n);
        let idx = SparseIndex::build(&bat, 256).expect("sorted");
        let lo = Scalar::U32(n / 2);
        let hi = Scalar::U32(n / 2 + n / 100);
        g.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| scan_select(black_box(&bat), &lo, &hi).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("binary_search", n), &n, |b, _| {
            b.iter(|| select_range(black_box(&bat), &lo, &hi).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("sparse_index", n), &n, |b, _| {
            b.iter(|| idx.select_range(black_box(&bat), &lo, &hi).unwrap())
        });
    }
    g.finish();
}

fn bench_joins(c: &mut Criterion) {
    let mut g = c.benchmark_group("join");
    for n in [10_000u32, 100_000] {
        let mut rng = StdRng::seed_from_u64(7);
        let probes = Bat::dense(Column::from(
            (0..n).map(|_| rng.gen_range(0..n)).collect::<Vec<u32>>(),
        ));
        let target = random_scores(n, 13);
        g.bench_with_input(BenchmarkId::new("fetch", n), &n, |b, _| {
            b.iter(|| fetch_join(black_box(&probes), black_box(&target)).unwrap())
        });
        let right = Bat::new(
            (0..n).collect::<Vec<u32>>(),
            Column::from((0..n).map(f64::from).collect::<Vec<f64>>()),
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("hash", n), &n, |b, _| {
            b.iter(|| hash_join(black_box(&probes), black_box(&right)).unwrap())
        });
    }
    g.finish();
}

fn bench_aggregation_and_topn(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregate");
    {
        let n = 100_000u32;
        let mut rng = StdRng::seed_from_u64(99);
        let contributions = Bat::new(
            (0..n)
                .map(|_| rng.gen_range(0..n / 10))
                .collect::<Vec<u32>>(),
            Column::from((0..n).map(|_| rng.gen::<f64>()).collect::<Vec<f64>>()),
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("dense_sum", n), &n, |b, _| {
            b.iter(|| sum_by_head_dense(black_box(&contributions), (n / 10) as usize).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("hash_group_sum", n), &n, |b, _| {
            b.iter(|| group_aggregate(black_box(&contributions), AggFn::Sum).unwrap())
        });

        let scores = random_scores(n, 3);
        g.bench_with_input(BenchmarkId::new("full_sort", n), &n, |b, _| {
            b.iter(|| sort_by_tail(black_box(&scores), Direction::Desc).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("firstn_20", n), &n, |b, _| {
            b.iter(|| firstn(black_box(&scores), 20, Direction::Desc).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_select,
    bench_joins,
    bench_aggregation_and_topn
);
criterion_main!(benches);
