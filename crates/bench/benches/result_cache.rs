//! Criterion microbenchmarks of the cross-batch result cache (E21 in
//! microbenchmark form): the per-operation cost of a warm hit lookup
//! (the path that replaces an entire query execution), a miss followed
//! by an insert (the price of carrying the cache on an all-distinct
//! stream), and an O(1) epoch invalidation.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moa_ir::{ExecReport, RankingModel};
use moa_serve::{CacheConfig, QueryResponse, ResultCache};

/// A realistic resident answer: a sorted top-100 with empty per-shard
/// detail (what the serving session stores after merging).
fn answer(doc: u32) -> Arc<QueryResponse> {
    Arc::new(QueryResponse {
        top: (0..100).map(|i| (doc + i, 1.0 / (i + 1) as f64)).collect(),
        work: ExecReport::default(),
        partial: false,
        shards: Vec::new(),
    })
}

fn bench_result_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("result_cache");

    // Warm hit: the steady state of a Zipf head query. 256 resident
    // three-term keys across the default shard count; round-robin over
    // them so the probe mixes hash chains and both LRU segments.
    let cache = ResultCache::new(CacheConfig::default(), RankingModel::default());
    let keys: Vec<Vec<u32>> = (0..256u32).map(|k| vec![k, k + 1_000, k + 2_000]).collect();
    for (i, terms) in keys.iter().enumerate() {
        cache.insert(terms, 100, answer(i as u32));
    }
    g.bench_function("hit_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 255;
            black_box(cache.get(black_box(&keys[i]), 100)).is_some()
        })
    });

    // Miss + insert: the all-distinct workload. The epoch bump each
    // round forces the resident entry stale, so every get walks the
    // full miss path and every insert replaces a superseded slot —
    // exactly E21's phase-B discipline.
    let cold = ResultCache::new(CacheConfig::default(), RankingModel::default());
    let value = answer(7);
    g.bench_function("miss_then_insert", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) & 255;
            cold.invalidate_epoch();
            let terms = [i, i + 1_000, i + 2_000];
            assert!(cold.get(black_box(&terms), 100).is_none());
            cold.insert(&terms, 100, Arc::clone(&value));
            black_box(cold.epoch())
        })
    });

    // Epoch invalidation: one atomic bump, independent of residency.
    let full = ResultCache::new(CacheConfig::default(), RankingModel::default());
    for (i, terms) in keys.iter().enumerate() {
        full.insert(terms, 100, answer(i as u32));
    }
    g.bench_function("invalidate_epoch", |b| {
        b.iter(|| black_box(full.invalidate_epoch()))
    });

    g.finish();
}

criterion_group!(benches, bench_result_cache);
criterion_main!(benches);
