//! Criterion microbenchmarks of the telemetry primitives on the query
//! hot path (E20 in microbenchmark form): the per-event cost of a
//! counter increment, a gauge update, a histogram record, a phase-clock
//! add, and a trace-ring slot write — plus the off-path costs a scrape
//! pays (histogram snapshot + percentile, registry text render).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moa_obs::{Counter, Gauge, Histogram, MetricsRegistry, Phase, PhaseAgg, QueryTrace, TraceRing};

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_primitives");

    let counter = Counter::new();
    g.bench_function("counter_incr", |b| {
        b.iter(|| {
            counter.incr();
            black_box(&counter)
        })
    });

    let gauge = Gauge::new();
    g.bench_function("gauge_set_high_water", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) & 0xFF;
            gauge.set(black_box(v));
            black_box(&gauge)
        })
    });

    let hist = Histogram::new();
    g.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(black_box(v >> 32));
            black_box(&hist)
        })
    });

    g.bench_function("phase_agg_add", |b| {
        let mut agg = PhaseAgg::new();
        let mut ns = 1u64;
        b.iter(|| {
            ns = ns.wrapping_add(37);
            agg.add_ns(Phase::Score, black_box(ns));
            black_box(agg.get(Phase::Score))
        })
    });

    g.bench_function("trace_ring_record", |b| {
        let mut ring = TraceRing::with_capacity(128);
        let mut agg = PhaseAgg::new();
        agg.add_ns(Phase::Decode, 1_000);
        agg.add_ns(Phase::Score, 5_000);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let mut t = QueryTrace::new(seq, 0, 0);
            t.wall_ns = black_box(6_000);
            t.push_phases(&agg);
            ring.record(t);
            black_box(seq)
        })
    });

    // Scrape-side costs: paid per exposition, never per query.
    let loaded = Histogram::new();
    for i in 0..10_000u64 {
        loaded.record(i * 97 % 1_000_000);
    }
    g.bench_function("histogram_snapshot_p99", |b| {
        b.iter(|| black_box(loaded.snapshot().percentile(0.99)))
    });

    let registry = MetricsRegistry::new();
    for i in 0..16 {
        registry.counter(&format!("bench.counter{i}")).add(i);
        registry.gauge(&format!("bench.gauge{i}")).set(i);
        registry.histogram(&format!("bench.hist{i}")).record(i);
    }
    g.bench_function("registry_render_text", |b| {
        b.iter(|| black_box(registry.render_text()))
    });

    g.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
