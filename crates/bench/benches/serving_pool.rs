//! Criterion microbenchmarks of the serving runtimes (E18 in
//! microbenchmark form): persistent worker pool vs scoped threads vs the
//! sequential schedule on one admission batch, pipelined enqueue/collect
//! streaming, and the admission queue's duplicate-query coalescing under
//! a Zipf-skewed batch.

use std::collections::VecDeque;
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moa_corpus::{
    generate_queries, generate_query_stream, Collection, CollectionConfig, DfBias, QueryConfig,
    StreamConfig,
};
use moa_ir::InvertedIndex;
use moa_serve::{BatchQuery, ServeConfig, ServeMode, ServeSession, ShardedEngine};

const TOP_N: usize = 100;

fn fixture() -> (Arc<InvertedIndex>, Vec<BatchQuery>) {
    let c = Collection::generate(CollectionConfig::small()).expect("valid preset");
    let index = Arc::new(InvertedIndex::from_collection(&c));
    let queries = generate_queries(
        &c,
        &QueryConfig {
            num_queries: 32,
            bias: DfBias::TrecLike { high_df_mix: 0.5 },
            seed: 0x5E18,
            ..QueryConfig::default()
        },
    )
    .expect("valid workload");
    let batch = queries
        .into_iter()
        .map(|q| BatchQuery {
            terms: q.terms,
            n: TOP_N,
        })
        .collect();
    (index, batch)
}

fn session(index: &Arc<InvertedIndex>, shards: usize) -> ServeSession {
    ServeSession::new(Arc::clone(index), ServeConfig::planned(shards))
        .expect("collection shards cleanly")
}

fn engine(index: &Arc<InvertedIndex>, shards: usize) -> ShardedEngine {
    let config = ServeConfig::planned(shards);
    ShardedEngine::build(
        Arc::clone(index),
        config.shard_spec,
        config.frag_spec,
        config.model,
        config.policy,
        config.sparse_block,
    )
    .expect("collection shards cleanly")
}

/// One distinct-query admission batch through each runtime: the pool's
/// edge here is purely the removed spawn/join (no duplicates to
/// coalesce).
fn bench_batch_runtimes(c: &mut Criterion) {
    let (index, batch) = fixture();
    let mut g = c.benchmark_group("serving_batch");
    for shards in [2usize, 4] {
        let mut pool = session(&index, shards);
        let mut eng = engine(&index, shards);
        g.bench_with_input(BenchmarkId::new("pool", shards), &shards, |b, _| {
            b.iter(|| black_box(pool.submit_many(&batch).expect("in-vocabulary batch")))
        });
        g.bench_with_input(BenchmarkId::new("scoped", shards), &shards, |b, _| {
            b.iter(|| {
                black_box(
                    eng.execute_batch(&batch, ServeMode::Planned, true)
                        .expect("in-vocabulary batch"),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("sequential", shards), &shards, |b, _| {
            b.iter(|| {
                black_box(
                    eng.execute_batch_sequential(&batch, ServeMode::Planned, true)
                        .expect("in-vocabulary batch"),
                )
            })
        });
    }
    g.finish();
}

/// Pipelined streaming (enqueue the next admission batch before
/// collecting the previous) vs collect-before-admit, over the same
/// chunked stream.
fn bench_streaming(c: &mut Criterion) {
    let (index, batch) = fixture();
    let chunks: Vec<&[BatchQuery]> = batch.chunks(8).collect();
    let mut g = c.benchmark_group("serving_stream");
    let mut pipelined = session(&index, 4);
    g.bench_function("pipelined_enqueue_collect", |b| {
        b.iter(|| {
            let mut pending = VecDeque::new();
            for chunk in &chunks {
                pending.push_back(pipelined.enqueue(chunk).expect("blocking admission"));
                if pending.len() > 1 {
                    let report = pipelined.collect(pending.pop_front().expect("non-empty"));
                    let _ = black_box(report);
                }
            }
            while let Some(p) = pending.pop_front() {
                let _ = black_box(pipelined.collect(p));
            }
        })
    });
    let mut lockstep = session(&index, 4);
    g.bench_function("lockstep_submit_many", |b| {
        b.iter(|| {
            for chunk in &chunks {
                let _ = black_box(lockstep.submit_many(chunk).expect("in-vocabulary batch"));
            }
        })
    });
    g.finish();
}

/// A Zipf-popularity admission batch (hot queries repeat): the pool
/// coalesces duplicates at admission, the sequential schedule executes
/// every position.
fn bench_coalescing(c: &mut Criterion) {
    let collection = Collection::generate(CollectionConfig::small()).expect("valid preset");
    let index = Arc::new(InvertedIndex::from_collection(&collection));
    let zipf: Vec<BatchQuery> = generate_query_stream(
        &collection,
        &StreamConfig {
            pool: QueryConfig {
                num_queries: 30,
                bias: DfBias::FrequentOnly,
                seed: 0xE18,
                ..QueryConfig::default()
            },
            length: 32,
            exponent: 1.0,
            seed: 0x57E4,
        },
    )
    .expect("valid stream config")
    .into_iter()
    .map(|q| BatchQuery {
        terms: q.terms,
        n: TOP_N,
    })
    .collect();
    let mut g = c.benchmark_group("serving_coalescing");
    let mut pool = session(&index, 4);
    g.bench_function("pool_coalesced", |b| {
        b.iter(|| black_box(pool.submit_many(&zipf).expect("in-vocabulary batch")))
    });
    let mut reference = session(&index, 4);
    g.bench_function("sequential_per_position", |b| {
        b.iter(|| black_box(reference.submit_many_sequential(&zipf)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_batch_runtimes,
    bench_streaming,
    bench_coalescing
);
criterion_main!(benches);
