//! Criterion microbenchmarks of the block-compressed posting storage
//! (E17 in microbenchmark form): bulk streaming decode vs cursor walk vs
//! a pre-decoded flat scan, and header-binary-search `seek` on the
//! packed layout. The raw bit-unpack kernels live in the dedicated
//! `pack_kernels` bench.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moa_corpus::{Collection, CollectionConfig};
use moa_ir::InvertedIndex;

fn fixture() -> InvertedIndex {
    let c = Collection::generate(CollectionConfig::small()).expect("valid preset");
    InvertedIndex::from_collection(&c)
}

fn bench_full_scan(c: &mut Criterion) {
    let index = fixture();
    let terms = index.terms_by_df_asc();
    // Flat baseline: what scanning costs once the decode is already paid.
    let flat: Vec<(Vec<u32>, Vec<u32>)> = terms
        .iter()
        .map(|&t| index.decode_postings(t).expect("term in range"))
        .collect();
    let mut g = c.benchmark_group("block_decode");
    g.bench_function("bulk_for_each", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &t in &terms {
                index
                    .for_each_posting(t, |d, f| acc += u64::from(d) ^ u64::from(f))
                    .expect("term in range");
            }
            black_box(acc)
        })
    });
    g.bench_function("cursor_walk_lazy_tf", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &t in &terms {
                let mut cur = index.cursor(t).expect("term in range");
                while let Some(d) = cur.doc() {
                    acc += u64::from(d) ^ u64::from(cur.tf());
                    cur.advance();
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("flat_predecoded_scan", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (docs, tfs) in &flat {
                for (i, &d) in docs.iter().enumerate() {
                    acc += u64::from(d) ^ u64::from(tfs[i]);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_seek(c: &mut Criterion) {
    let index = fixture();
    // The most frequent term has the longest run: the seek stress case.
    let term = *index.terms_by_df_asc().last().expect("non-empty index");
    let (docs, _) = index.decode_postings(term).expect("term in range");
    let mut g = c.benchmark_group("block_seek");
    for stride in [7usize, 211] {
        let targets: Vec<u32> = docs.iter().copied().step_by(stride).collect();
        g.bench_with_input(
            BenchmarkId::new("header_binary_seek", stride),
            &stride,
            |b, _| {
                b.iter(|| {
                    let mut cur = index.cursor(term).expect("term in range");
                    let mut skipped = 0usize;
                    for &t in &targets {
                        skipped += cur.seek(black_box(t));
                    }
                    skipped
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_full_scan, bench_seek);
criterion_main!(benches);
