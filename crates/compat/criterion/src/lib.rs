//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset of the criterion API the `moa-bench`
//! benches use: [`Criterion`], [`BenchmarkId`], benchmark groups,
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. There is no statistical engine: each benchmark runs a short
//! warm-up plus a fixed number of timed iterations and prints the median
//! per-iteration time. That is enough to compile the bench targets, smoke
//! them in CI, and eyeball relative costs — the `moa-bench` `experiments`
//! binary remains the rigorous measurement path.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group (subset of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter rendering alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Runs closures under measurement (subset of `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    iters: u32,
}

impl Bencher {
    /// Times `routine`, keeping per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration, then the timed ones.
        black_box(routine());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

/// The benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { iters: 5 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters: self.iters,
        };
        f(&mut b);
        println!("bench {:<40} median {:>12.3?}", id.id, b.median());
        self
    }

    /// Runs a single ungrouped benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }
}

/// A named collection of benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = BenchmarkId::new(&self.name, id.into().id);
        self.criterion.bench_function(id, &mut f);
        self
    }

    /// Runs one benchmark in the group with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Input-size annotations (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
