//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset of the `rand` 0.8 API the Moa crates use:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic across platforms and runs, which is exactly
//! what the seeded corpus generators and the differential test oracle need.
//! The streams differ from upstream `rand`'s ChaCha-based `StdRng`; all
//! in-repo consumers only require determinism, not a specific stream.

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw bits (the role of
/// `rand`'s `Standard` distribution).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly (the role of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded sampling on a `[0, span)` window.
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling on the top bits: unbiased and branch-cheap.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every 64-bit pattern is in bounds.
                    return rng.next_u64() as $t;
                }
                (start as i128 + sample_span(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f64::sample_standard(rng) * (self.end - self.start);
        // `start + u·(end−start)` can round up to exactly `end` when the
        // span is tiny relative to the magnitude; keep the range half-open.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of any [`SampleStandard`] type.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2usize..=9);
            assert!((2..=9).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let neg = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&neg));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_range_stays_half_open_under_rounding_pressure() {
        // The ulp at 1e16 is 2.0, so naive start + u·span rounds to `end`
        // for draws near 1.0; the result must still be < end.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100_000 {
            let v = rng.gen_range(1e16f64..1e16 + 2.0);
            assert!(v < 1e16 + 2.0);
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
