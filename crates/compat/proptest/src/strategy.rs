//! Value-generation strategies (subset of `proptest::strategy`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of test values (subset of `proptest::strategy::Strategy`).
///
/// Unlike upstream there is no value tree and no shrinking: `generate`
/// produces the value directly from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-valued strategies (see [`crate::prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> OneOf<T> {
    /// Builds a choice over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Self { arms }
    }
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.sample_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
}
