//! Deterministic test-case execution state.

use rand::rngs::StdRng;
use rand::{RngCore, SampleRange, SampleStandard, SeedableRng};

/// Per-block configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Base seed mixed into every test's deterministic stream.
    pub seed: u64,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // "MOA1" in ASCII — a fixed, documented base seed.
        Self {
            cases: 64,
            seed: 0x4D4F_4131,
        }
    }
}

/// The RNG handed to strategies. Deterministic: seeded from the test path,
/// the config seed, and the case index — nothing environmental.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Derives the stream for one test case.
    pub fn for_case(test_path: &str, base_seed: u64, case: u64) -> Self {
        // FNV-1a over the test path keeps unrelated tests decorrelated.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(
            h ^ base_seed.rotate_left(17) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Draws one value of a uniformly-samplable type.
    pub fn sample<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(&mut self.0)
    }

    /// Draws one value uniformly from a range.
    pub fn sample_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(&mut self.0)
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
