//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset of the proptest API the Moa test suites
//! use: the [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map`, [`strategy::Just`], numeric range
//! strategies, tuple strategies, and [`collection::vec`].
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **Deterministic seeds.** Every test's case stream is derived from an
//!   FNV-1a hash of `module_path!()::test_name` mixed with
//!   [`test_runner::ProptestConfig::seed`] (default `0x4D4F_4131`, "MOA1"), so a
//!   failing case reproduces identically on every machine and run — there
//!   is no environment-dependent entropy and no persistence file.
//! * **No shrinking.** A failing case panics immediately and prints the
//!   generated inputs; with fully deterministic streams, re-running under a
//!   debugger reproduces the exact case.
//! * **Uniform generation.** Range strategies sample uniformly instead of
//!   biasing toward boundary values; the suites compensate by pinning edge
//!   cases in dedicated unit tests.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines a block of property tests (subset of `proptest::proptest!`).
///
/// Supports the `#![proptest_config(expr)]` header and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items, where each
/// parameter is an identifier optionally prefixed with `mut`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($params:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_munch!{ ($cfg) ($name) $body [] $($params)* }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_munch {
    // Terminal: all parameters consumed — expand the case loop.
    ( ($cfg:expr) ($name:ident) $body:block
      [ $( ($p:ident, ($($mutkw:tt)*), $s:expr), )* ] ) => {{
        let __cfg: $crate::test_runner::ProptestConfig = $cfg;
        let __test_path = concat!(module_path!(), "::", stringify!($name));
        for __case in 0..__cfg.cases {
            let mut __rng = $crate::test_runner::TestRng::for_case(
                __test_path,
                __cfg.seed,
                u64::from(__case),
            );
            $( let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng); )*
            let __inputs = ::std::vec![
                $( ::std::format!(concat!(stringify!($p), " = {:?}"), &$p), )*
            ]
            .join(", ");
            let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                move || {
                    $( let $($mutkw)* $p = $p; )*
                    $body
                },
            ));
            if let ::std::result::Result::Err(__payload) = __outcome {
                ::std::eprintln!(
                    "proptest (offline shim): {} failed at case {}/{} with inputs: {{ {} }}",
                    __test_path,
                    __case + 1,
                    __cfg.cases,
                    __inputs,
                );
                ::std::panic::resume_unwind(__payload);
            }
        }
    }};
    // `mut name in strategy` followed by more parameters (or trailing comma).
    ( ($cfg:expr) ($name:ident) $body:block [ $($acc:tt)* ]
      mut $p:ident in $s:expr, $($rest:tt)* ) => {
        $crate::__proptest_munch!{ ($cfg) ($name) $body
            [ $($acc)* ($p, (mut), $s), ] $($rest)* }
    };
    // `mut name in strategy` as the final parameter.
    ( ($cfg:expr) ($name:ident) $body:block [ $($acc:tt)* ]
      mut $p:ident in $s:expr ) => {
        $crate::__proptest_munch!{ ($cfg) ($name) $body
            [ $($acc)* ($p, (mut), $s), ] }
    };
    // `name in strategy` followed by more parameters (or trailing comma).
    ( ($cfg:expr) ($name:ident) $body:block [ $($acc:tt)* ]
      $p:ident in $s:expr, $($rest:tt)* ) => {
        $crate::__proptest_munch!{ ($cfg) ($name) $body
            [ $($acc)* ($p, (), $s), ] $($rest)* }
    };
    // `name in strategy` as the final parameter.
    ( ($cfg:expr) ($name:ident) $body:block [ $($acc:tt)* ]
      $p:ident in $s:expr ) => {
        $crate::__proptest_munch!{ ($cfg) ($name) $body
            [ $($acc)* ($p, (), $s), ] }
    };
}

/// Picks uniformly among several strategies with the same value type
/// (subset of `proptest::prop_oneof!`; weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ( $($s:expr),+ $(,)? ) => {
        $crate::strategy::OneOf::new(::std::vec![
            $( $crate::strategy::Strategy::boxed($s) ),+
        ])
    };
}

/// Asserts a condition inside a property test, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            ::std::panic!($($fmt)+);
        }
    };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            ::std::panic!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($left), stringify!($right), __l, __r,
                ::std::format!($($fmt)+),
            );
        }
    }};
}

/// Asserts two values are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
        );
    }};
}
