//! Collection strategies (subset of `proptest::collection`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specifications accepted by [`vec`] (the role of
/// `proptest::collection::SizeRange`).
pub trait IntoSizeRange {
    /// Returns the inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.sample_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
