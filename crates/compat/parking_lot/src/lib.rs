//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *subset* of the `parking_lot` API the Moa crates
//! use — `Mutex` and `RwLock` with non-poisoning guard accessors — backed
//! by `std::sync`. Poisoning is erased by recovering the inner guard, which
//! matches `parking_lot` semantics (a panicking holder does not poison).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock with `parking_lot`'s non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
