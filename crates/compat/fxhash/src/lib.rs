//! Offline stand-in for the `fxhash` crate (the rustc-hash "Fx" hasher).
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the subset the engine uses: [`FxHasher`] — the multiply-rotate
//! hash Firefox and rustc use for their internal tables — plus the
//! [`FxHashMap`] / [`FxHashSet`] aliases. Unlike std's default SipHash,
//! Fx is not DoS-resistant; it trades that for a few instructions per
//! byte, which is the right trade for interning a *bounded, trusted*
//! vocabulary (`moa_ir::dict::Dictionary`) where the string hash sits on
//! the term-lookup hot path.

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplication constant (64-bit golden-ratio-derived, from
/// rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher: `hash = (rot5(hash) ^ word) * SEED`
/// per input word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the tail length in so "ab" and "ab\0" cannot collide
            // by construction.
            self.add_to_hash(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (stateless, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash one value with [`FxHasher`] (convenience mirroring `fxhash::hash64`).
pub fn hash64<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        for s in ["", "a", "database", "a-much-longer-term-exceeding-8-bytes"] {
            assert_eq!(hash64(s), hash64(s));
        }
        assert_ne!(hash64("database"), hash64("databases"));
        assert_ne!(hash64("ab"), hash64("ab\0"));
    }

    #[test]
    fn map_and_set_work_with_string_keys() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("term{i:06}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get("term000042"), Some(&42));
        let s: FxHashSet<u32> = (0..100).collect();
        assert!(s.contains(&7));
    }

    #[test]
    fn distribution_is_not_degenerate() {
        // Sanity: hashing a dense term vocabulary spreads over the low
        // bits (no systematic bucket collapse for a power-of-two table).
        let mut buckets = [0usize; 64];
        for i in 0..6400u32 {
            buckets[(hash64(&format!("term{i:06}")) & 63) as usize] += 1;
        }
        let (min, max) = buckets
            .iter()
            .fold((usize::MAX, 0), |(lo, hi), &b| (lo.min(b), hi.max(b)));
        assert!(min > 0, "empty bucket: degenerate distribution");
        assert!(max < 400, "bucket with {max} of 6400: degenerate");
    }
}
