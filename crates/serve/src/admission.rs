//! Bounded admission: per-worker queue gauges and the admission policy.
//!
//! The PR 6 pool queued unboundedly: a saturated deployment grew its job
//! queues (and the memory behind them) without limit, and the caller got
//! no signal that service had fallen behind. Admission now runs against
//! one [`QueueGauge`] per shard worker — a counted semaphore over the
//! worker's `mpsc` queue — and an [`AdmissionPolicy`] decides what a full
//! gauge means:
//!
//! * [`AdmissionPolicy::Block`] — wait for room: classic backpressure,
//!   the submitting thread slows to the service rate. The default.
//! * [`AdmissionPolicy::Shed`] — reject immediately with
//!   [`crate::ServeError::Shed`]: the open-loop posture, trading
//!   completeness for bounded queues and bounded latency (the paper's
//!   top-N machinery made queries cheap; shedding keeps the *queue* in
//!   front of them cheap too).
//! * [`AdmissionPolicy::TryNow`] — admit only into idle workers: the
//!   probe posture for latency-critical traffic that would rather go
//!   elsewhere than wait behind anything.
//!
//! **What the gauge counts.** Depth is *admitted but unfinished batch
//! jobs* on one worker: incremented at admission, decremented when the
//! worker finishes the job (not when it dequeues it), so the in-service
//! job still occupies its slot. Every queued job holds its batch's
//! queries and gates alive, so the gauge bound is the pool's RSS proxy:
//! queue memory is `O(bound × batch size)` by construction. Depth and
//! its high-water mark are published through a [`moa_obs::Gauge`] —
//! typically registered as `serve.queue_depth.shard<i>` in the pool's
//! [`moa_obs::MetricsRegistry`] — rather than ad-hoc fields here; the
//! high-water mark (the deepest any acquisition ever took the gauge) is
//! the observable E19's queue-ceiling gate checks.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use moa_obs::Gauge;

/// What a saturated worker queue means for new work. See module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Apply backpressure: block the submitter until every worker has
    /// room. Never sheds.
    #[default]
    Block,
    /// Reject with [`crate::ServeError::Shed`] when any worker's queue
    /// is at its bound.
    Shed,
    /// Admit only when every worker is *idle* (depth zero); otherwise
    /// reject with [`crate::ServeError::Shed`].
    TryNow,
}

/// A counted semaphore over one worker's job queue. Cheap on the worker
/// side (one lock + notify per job completed); the submitting side pays
/// the policy's cost.
#[derive(Debug)]
pub struct QueueGauge {
    bound: usize,
    depth: Mutex<usize>,
    room: Condvar,
    /// The exported depth metric: current level mirrors `depth`, and its
    /// built-in high-water mark replaces the ad-hoc `AtomicUsize` this
    /// struct used to carry. Shared with the pool's metrics registry.
    metric: Arc<Gauge>,
}

impl QueueGauge {
    /// A gauge admitting at most `bound` unfinished jobs (clamped ≥ 1:
    /// a zero bound could never admit anything), with a private
    /// (unregistered) depth metric.
    pub fn new(bound: usize) -> QueueGauge {
        QueueGauge::with_metric(bound, Arc::new(Gauge::new()))
    }

    /// A gauge publishing its depth through `metric` — the pool wires a
    /// registry-owned `serve.queue_depth.shard<i>` gauge in here so the
    /// exposition snapshot sees live depths and high-water marks.
    pub fn with_metric(bound: usize, metric: Arc<Gauge>) -> QueueGauge {
        QueueGauge {
            bound: bound.max(1),
            depth: Mutex::new(0),
            room: Condvar::new(),
            metric,
        }
    }

    /// The configured depth bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Current depth: admitted, unfinished jobs.
    pub fn depth(&self) -> usize {
        *lock_ignore_poison(&self.depth)
    }

    /// The deepest the gauge has ever been right after an admission —
    /// the queue-ceiling observable (never exceeds the bound).
    pub fn high_water(&self) -> usize {
        self.metric.high_water() as usize
    }

    /// Admit one job if the queue has room; on refusal, report the
    /// current depth.
    pub fn try_acquire(&self) -> Result<(), usize> {
        let mut depth = lock_ignore_poison(&self.depth);
        if *depth >= self.bound {
            return Err(*depth);
        }
        *depth += 1;
        self.metric.set(*depth as u64);
        Ok(())
    }

    /// Admit one job only into an *idle* queue (depth zero); on refusal,
    /// report the current depth.
    pub fn try_acquire_idle(&self) -> Result<(), usize> {
        let mut depth = lock_ignore_poison(&self.depth);
        if *depth > 0 {
            return Err(*depth);
        }
        *depth = 1;
        self.metric.set(1);
        Ok(())
    }

    /// Wait up to `timeout` for the queue to have room (no admission —
    /// callers re-`try_acquire` after waking, because only the single
    /// admitting thread raises depth). Returns whether room was seen.
    pub fn wait_for_room(&self, timeout: Duration) -> bool {
        let depth = lock_ignore_poison(&self.depth);
        if *depth < self.bound {
            return true;
        }
        let (depth, _) = self
            .room
            .wait_timeout(depth, timeout)
            .unwrap_or_else(|e| e.into_inner());
        *depth < self.bound
    }

    /// One admitted job finished (the worker's side of the contract).
    pub fn release(&self) {
        let mut depth = lock_ignore_poison(&self.depth);
        *depth = depth.saturating_sub(1);
        self.metric.set(*depth as u64);
        drop(depth);
        self.room.notify_all();
    }

    /// Zero the depth: a dead worker's queue vanished with its channel,
    /// so the jobs it held are gone (their tickets observe disconnect).
    /// Called by the respawn path before the replacement thread starts.
    /// The high-water mark survives — it records history, not state.
    pub fn reset(&self) {
        let mut depth = lock_ignore_poison(&self.depth);
        *depth = 0;
        // `Gauge::set` folds into the high-water mark before storing, so
        // zeroing the level here cannot erase the recorded peak.
        self.metric.set(0);
        drop(depth);
        self.room.notify_all();
    }
}

/// Lock a gauge mutex, recovering the guard from a poisoned lock. The
/// guarded value is a bare counter whose every transition is a complete
/// single assignment, so there is no torn state to fear; refusing to
/// serve after an unrelated panic would turn one fault into a wedge.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_and_high_water() {
        let g = QueueGauge::new(2);
        assert_eq!(g.bound(), 2);
        assert_eq!(g.depth(), 0);
        g.try_acquire().expect("room at depth 0");
        g.try_acquire().expect("room at depth 1");
        assert_eq!(g.depth(), 2);
        assert_eq!(g.try_acquire(), Err(2), "bound reached");
        g.release();
        assert_eq!(g.depth(), 1);
        g.try_acquire().expect("room again after release");
        assert_eq!(g.high_water(), 2, "high water never exceeded the bound");
    }

    #[test]
    fn idle_acquire_requires_depth_zero() {
        let g = QueueGauge::new(4);
        g.try_acquire_idle().expect("idle at depth 0");
        assert_eq!(g.try_acquire_idle(), Err(1));
        g.release();
        g.try_acquire_idle().expect("idle again");
    }

    #[test]
    fn zero_bound_is_clamped_to_one() {
        let g = QueueGauge::new(0);
        assert_eq!(g.bound(), 1);
        g.try_acquire().expect("a bound of one admits one job");
        assert_eq!(g.try_acquire(), Err(1));
    }

    #[test]
    fn reset_clears_depth_but_keeps_high_water() {
        let g = QueueGauge::new(3);
        g.try_acquire().expect("room");
        g.try_acquire().expect("room");
        g.reset();
        assert_eq!(g.depth(), 0);
        assert_eq!(g.high_water(), 2);
    }

    #[test]
    fn shared_metric_sees_live_depth_and_high_water() {
        let metric = Arc::new(Gauge::new());
        let g = QueueGauge::with_metric(3, Arc::clone(&metric));
        g.try_acquire().expect("room");
        g.try_acquire().expect("room");
        assert_eq!(metric.get(), 2, "registry handle sees the live depth");
        g.release();
        assert_eq!(metric.get(), 1);
        g.reset();
        assert_eq!(metric.get(), 0);
        assert_eq!(metric.high_water(), 2, "peak survives reset");
        assert_eq!(g.high_water(), 2);
    }

    #[test]
    fn wait_for_room_wakes_on_release() {
        use std::sync::Arc;
        let g = Arc::new(QueueGauge::new(1));
        g.try_acquire().expect("room");
        let waiter = {
            let g = Arc::clone(&g);
            std::thread::spawn(move || g.wait_for_room(Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        g.release();
        assert!(waiter.join().expect("waiter thread"), "release must wake");
        assert!(!g.wait_for_room(Duration::ZERO) || g.depth() < g.bound());
    }
}
