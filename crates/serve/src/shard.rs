//! Document-partitioned shard execution.
//!
//! [`ShardedEngine`] takes the paper's horizontal fragmentation to its
//! parallel conclusion: the collection is *document*-partitioned into P
//! shards, each shard gets its own df-fragmented term–document table and
//! [`EngineSet`] (all four physical paths), and a query runs on every
//! shard concurrently on scoped threads. Three properties make the merged
//! answer bit-identical to a single unsharded engine:
//!
//! 1. **Global catalog, local postings** —
//!    [`InvertedIndex::shard_by_docs`] keeps every ranking-model input
//!    (df, cf, document lengths, collection stats) collection-wide, so a
//!    document scores to the identical `f64` on its shard as it would
//!    unsharded; one [`moa_ir::ScoreKernel`] is shared by all shards.
//! 2. **Tie-stable merge** — shard-local heaps keep their partition's
//!    top N; [`moa_topn::kway_merge_sorted`] folds them under the same
//!    (score desc, id asc) order every engine path uses.
//! 3. **Sound cross-shard pruning** — a shard whose heap holds N entries
//!    of score ≥ t has proven the *global* N-th score is ≥ t, so the
//!    propagated [`SharedThreshold`] only ever prunes documents that
//!    cannot appear in the merged top-N (see [`moa_ir::threshold`]).
//!
//! Each shard's [`EngineSet`] owns its own `moa_ir::QueryScratch` — the
//! zero-allocation query arena of the block-compressed posting layout —
//! so a serving deployment gets one scratch pool per shard thread for
//! free: shard threads never contend on allocator locks in steady state,
//! and a batch's queries reuse the same cursor decode buffers and heap
//! storage across the whole batch.
//!
//! Per-shard physical planning falls out of the same construction: each
//! shard owns a `moa_core` [`Planner`] fed by *shard-local* work figures
//! (`run_len`-based query volumes, shard fragment volumes), so a shard
//! where the query's terms are barely resident may legitimately pick a
//! different operator than a posting-heavy shard — and each shard's
//! measured [`ExecReport`] calibrates only its own planner.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use moa_core::{Planner, Result};
use moa_ir::{
    BoundGate, EngineSet, ExecReport, FragmentSpec, FragmentedIndex, InvertedIndex, PhysicalPlan,
    RankingModel, ScoreKernel, SharedThreshold, SwitchPolicy,
};
use moa_obs::{Phase, PhaseAgg};
use moa_topn::kway_merge_sorted;
use parking_lot::Mutex;

use crate::fault::{ServeError, ServeResult};

/// One shard's result column for a batch: entry `i` answers query `i`.
/// Produced by the worker pool and the scoped/sequential paths alike;
/// folded per query by [`merge_columns`].
pub type ShardColumn = Vec<ServeResult<ShardOutcome>>;

/// How documents are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSpec {
    /// Contiguous document ranges: shard `s` holds docs
    /// `[s·⌈D/P⌉, (s+1)·⌈D/P⌉)`. Keeps each shard's posting runs dense in
    /// document id, which is what the block-max tables and galloping
    /// skips like best.
    Range {
        /// Number of shards (≥ 1).
        shards: usize,
    },
    /// Round-robin by document id (`doc % P`): spreads hot documents
    /// evenly but interleaves every run across all shards.
    RoundRobin {
        /// Number of shards (≥ 1).
        shards: usize,
    },
}

impl ShardSpec {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        match *self {
            ShardSpec::Range { shards } | ShardSpec::RoundRobin { shards } => shards.max(1),
        }
    }

    /// The shard a document belongs to.
    pub fn shard_of(&self, doc: u32, num_docs: usize) -> usize {
        let p = self.shards();
        match *self {
            ShardSpec::Range { .. } => {
                let span = num_docs.div_ceil(p).max(1);
                ((doc as usize) / span).min(p - 1)
            }
            ShardSpec::RoundRobin { .. } => (doc as usize) % p,
        }
    }

    /// A short human-readable partition label for EXPLAIN output.
    pub fn describe(&self) -> String {
        match *self {
            ShardSpec::Range { shards } => format!("range x{shards}"),
            ShardSpec::RoundRobin { shards } => format!("round-robin x{shards}"),
        }
    }
}

/// How each shard picks its physical operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeMode {
    /// Every shard's own cost-driven planner picks per query (and
    /// calibrates off the shard's measured counters).
    Planned,
    /// Pin one physical plan on every shard (differential testing,
    /// ablations).
    Fixed(PhysicalPlan),
}

/// One query of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchQuery {
    /// Bag-of-terms query (term ids; duplicates score twice).
    pub terms: Vec<u32>,
    /// Ranking depth.
    pub n: usize,
}

/// What one shard did for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// The shard.
    pub shard: usize,
    /// The physical operator the shard executed.
    pub plan: PhysicalPlan,
    /// The shard planner's cost estimate for that operator (`None` under
    /// [`ServeMode::Fixed`], where nothing was priced).
    pub est_cost: Option<f64>,
    /// The shard-local execution report (its `top` is the shard's local
    /// heap, *before* the cross-shard merge).
    pub report: ExecReport,
    /// The shard's busy time for this query (planning + execution on the
    /// shard thread). Summed per shard over a batch, the maximum across
    /// shards is the batch's *critical path* — the wall-clock a deployment
    /// with at least one core per shard converges to.
    pub busy: Duration,
    /// Per-stage wall clocks for this query: planning, then the engine's
    /// own stage attribution (gate pass / decode / score / merge for the
    /// DAAT paths; one coarse score span for the set-at-a-time and
    /// fragmented paths). A `Copy` aggregate — carrying it here allocates
    /// nothing.
    pub phases: PhaseAgg,
    /// Whether the shard's planner answered from its plan memo instead
    /// of re-walking every alternative (always `false` under
    /// [`ServeMode::Fixed`]). Feeds `ServeStats::plans_memoized` and the
    /// `serve.plan_memo_hits` counter.
    pub memo_hit: bool,
}

/// The merged answer for one query.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct QueryResponse {
    /// The global top `(doc, score)` ranking, best first — bit-identical
    /// to a single unsharded engine executing an exact plan.
    pub top: Vec<(u32, f64)>,
    /// Work counters absorbed across every shard (`top` is left to the
    /// merged ranking above).
    pub work: ExecReport,
    /// Whether any shard ran out of its deadline budget: `top` is an
    /// exact *prefix* of the full answer — every `(doc, score)` in it is
    /// bit-exact, but documents a timed-out shard never reached may be
    /// missing. `work` counts only work actually performed. Not an
    /// error: a partial ranking under overload is the service degrading
    /// honestly (see `moa_ir::deadline`).
    pub partial: bool,
    /// Per-shard operator choices and reports.
    pub shards: Vec<ShardOutcome>,
}

/// One document-partition shard: its fragmented table, engine set, and
/// cost planner.
pub struct EngineShard {
    id: usize,
    frag: Arc<FragmentedIndex>,
    engines: EngineSet,
    planner: Planner,
}

impl EngineShard {
    /// The shard's id (its position in the partition).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shard's fragmented index (shard-resident postings, global
    /// catalog statistics).
    pub fn fragments(&self) -> &Arc<FragmentedIndex> {
        &self.frag
    }

    /// The shard's planner (per-shard calibration state).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Shard-resident posting volume.
    pub fn num_postings(&self) -> usize {
        self.frag.index().num_postings()
    }

    /// Price a query on this shard without executing it.
    pub fn plan(&self, terms: &[u32], n: usize) -> Result<moa_core::PlanDecision> {
        self.planner.plan(
            terms,
            n,
            &self.frag,
            self.engines.model(),
            self.engines.policy(),
        )
    }

    /// Price a query through the shard planner's bounded plan memo
    /// ([`moa_core::Planner::plan_memoized`]): repeated df-band query
    /// classes skip the full alternative walk. Returns the decision and
    /// whether the memo answered it.
    pub fn plan_memoized(
        &mut self,
        terms: &[u32],
        n: usize,
    ) -> Result<(moa_core::PlanDecision, bool)> {
        self.planner.plan_memoized(
            terms,
            n,
            &self.frag,
            self.engines.model(),
            self.engines.policy(),
        )
    }

    /// Lifetime count of DAAT queries served out of this shard's owned
    /// scratch arena (see [`EngineSet::scratch_queries`]) — the pool
    /// teardown tests read this off the shards handed back by
    /// [`crate::pool::ShardPool::shutdown`] to prove one arena served the
    /// whole stream.
    pub fn scratch_queries(&self) -> u64 {
        self.engines.scratch_queries()
    }

    /// Execute one query on this shard under `mode`, pruning and
    /// publishing through `gate`.
    pub(crate) fn run_one(
        &mut self,
        query: &BatchQuery,
        mode: ServeMode,
        gate: &BoundGate,
    ) -> Result<ShardOutcome> {
        let t0 = Instant::now();
        let (plan, est_cost, profile, memo_hit) = match mode {
            ServeMode::Fixed(plan) => (plan, None, None, false),
            ServeMode::Planned => {
                let (decision, memo_hit) = self.plan_memoized(&query.terms, query.n)?;
                let est = decision.chosen_alternative().cost;
                (decision.chosen, Some(est), Some(decision.profile), memo_hit)
            }
        };
        let plan_wall = t0.elapsed();
        let report = self
            .engines
            .execute_gated(plan, &query.terms, query.n, gate)?;
        // Stage clocks: the engine recorded its own execution stages into
        // the scratch arena; prepend the planning span observed here.
        let mut phases = PhaseAgg::new();
        phases.add(Phase::Plan, plan_wall);
        phases.merge(&self.engines.last_phases());
        if let Some(profile) = profile {
            // Close the calibration loop with this shard's own
            // measurement; other shards learn from their own. A partial
            // (deadline-expired) report is truncated work, not a
            // measurement of the operator — feeding it to the planner
            // would teach it that overloaded plans are cheap.
            if !report.partial {
                self.planner.observe(plan, &profile, &report);
            }
        }
        Ok(ShardOutcome {
            shard: self.id,
            plan,
            est_cost,
            report,
            busy: t0.elapsed(),
            phases,
            memo_hit,
        })
    }

    /// Reset the shard's per-query execution scratch after a caught
    /// panic: the epoch accumulators retire (O(1) epoch bump — any
    /// half-written partial sums become stale), leaving the shard ready
    /// for its next query. Index, planner calibration, and arena
    /// capacity are untouched.
    pub(crate) fn recover(&mut self) {
        self.engines.reset_execution_state();
    }
}

/// A document-partitioned retrieval engine: P shards executed on scoped
/// threads with optional cross-shard threshold propagation.
pub struct ShardedEngine {
    shards: Vec<EngineShard>,
    spec: ShardSpec,
    index: Arc<InvertedIndex>,
    kernel: Arc<ScoreKernel>,
}

impl ShardedEngine {
    /// Partition `index` into shards and build one engine set (plus one
    /// planner) per shard. The scoring kernel is built once from the
    /// unsharded index and shared — shards carry the identical global
    /// statistics, so per-shard kernels would be bit-for-bit copies.
    /// `sparse_block` additionally builds each shard fragment's non-dense
    /// index with that block size (making the indexed fragmented plans
    /// feasible for the per-shard planners).
    pub fn build(
        index: Arc<InvertedIndex>,
        shard_spec: ShardSpec,
        frag_spec: FragmentSpec,
        model: RankingModel,
        policy: SwitchPolicy,
        sparse_block: Option<usize>,
    ) -> Result<ShardedEngine> {
        let kernel = Arc::new(ScoreKernel::new(model, &index));
        let p = shard_spec.shards();
        let num_docs = index.num_docs();
        let mut shards = Vec::with_capacity(p);
        // One pass over the postings partitions all P shards at once.
        let shard_indexes = index.shard_by_docs_multi(p, |d| shard_spec.shard_of(d, num_docs));
        for (s, shard_index) in shard_indexes.into_iter().enumerate() {
            let mut frag = FragmentedIndex::build(Arc::new(shard_index), frag_spec)?;
            if let Some(block) = sparse_block {
                frag.fragment_a_mut().build_sparse_index(block)?;
                frag.fragment_b_mut().build_sparse_index(block)?;
            }
            let frag = Arc::new(frag);
            let engines = EngineSet::with_kernel(Arc::clone(&frag), Arc::clone(&kernel), policy);
            shards.push(EngineShard {
                id: s,
                frag,
                engines,
                planner: Planner::default(),
            });
        }
        Ok(ShardedEngine {
            shards,
            spec: shard_spec,
            index,
            kernel,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The partitioning in force.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The unsharded source index.
    pub fn index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// The ranking model every shard scores with.
    pub fn model(&self) -> RankingModel {
        self.kernel.model()
    }

    /// The shards (planner state, fragment geometry, volumes).
    pub fn shards(&self) -> &[EngineShard] {
        &self.shards
    }

    /// Execute one query across all shards. See
    /// [`ShardedEngine::execute_batch`].
    pub fn execute(
        &mut self,
        terms: &[u32],
        n: usize,
        mode: ServeMode,
        propagate: bool,
    ) -> ServeResult<QueryResponse> {
        let queries = [BatchQuery {
            terms: terms.to_vec(),
            n,
        }];
        let mut responses = self.execute_batch(&queries, mode, propagate)?;
        Ok(responses.pop().expect("one response per submitted query"))
    }

    /// Execute a batch of queries: one scoped thread per shard works
    /// through the whole batch (amortizing spawn cost across the batch),
    /// shard results land in a `parking_lot`-guarded slot table, and each
    /// query's shard-local heaps are folded with the tie-stable k-way
    /// merge. With `propagate`, every query gets one [`SharedThreshold`]
    /// that all shards prune against mid-flight; without it, shards run
    /// oblivious of each other (the ablation E16 measures).
    pub fn execute_batch(
        &mut self,
        queries: &[BatchQuery],
        mode: ServeMode,
        propagate: bool,
    ) -> ServeResult<Vec<QueryResponse>> {
        // With one shard there is no peer to propagate to or from:
        // the gate would only echo the local heap at atomic-load cost.
        let gates = gates(queries, propagate && self.shards.len() > 1);
        let num_shards = self.shards.len();
        // One slot per shard; each thread owns exactly one slot, the
        // mutex makes the cross-thread hand-off safe and keeps the shim's
        // `parking_lot` API in the loop.
        let slots: Mutex<Vec<Option<ShardColumn>>> =
            Mutex::new((0..num_shards).map(|_| None).collect());
        thread::scope(|scope| {
            for shard in self.shards.iter_mut() {
                let gates = &gates;
                let slots = &slots;
                scope.spawn(move || {
                    let outcomes: ShardColumn = queries
                        .iter()
                        .enumerate()
                        .map(|(qi, q)| {
                            shard
                                .run_one(q, mode, &gates[qi])
                                .map_err(ServeError::Engine)
                        })
                        .collect();
                    let id = shard.id;
                    slots.lock()[id] = Some(outcomes);
                });
            }
        });

        let mut per_shard: Vec<ShardColumn> = Vec::with_capacity(num_shards);
        for slot in slots.into_inner() {
            per_shard.push(slot.expect("every scoped shard thread fills its slot before joining"));
        }
        merge_columns(queries, per_shard).into_iter().collect()
    }

    /// [`ShardedEngine::execute_batch`] without threads: shards run one
    /// after another on the caller's thread, in shard order. Answers are
    /// identical; with propagation the thresholds published by earlier
    /// shards reach later shards deterministically, so work counters and
    /// per-shard busy times are *reproducible* — the profiling mode the
    /// E16 experiment uses for its committed figures (on an oversubscribed
    /// host, scoped-thread busy intervals absorb scheduler preemption).
    pub fn execute_batch_sequential(
        &mut self,
        queries: &[BatchQuery],
        mode: ServeMode,
        propagate: bool,
    ) -> ServeResult<Vec<QueryResponse>> {
        // With one shard there is no peer to propagate to or from:
        // the gate would only echo the local heap at atomic-load cost.
        let gates = gates(queries, propagate && self.shards.len() > 1);
        let per_shard: Vec<ShardColumn> = self
            .shards
            .iter_mut()
            .map(|shard| {
                queries
                    .iter()
                    .enumerate()
                    .map(|(qi, q)| {
                        shard
                            .run_one(q, mode, &gates[qi])
                            .map_err(ServeError::Engine)
                    })
                    .collect()
            })
            .collect();
        merge_columns(queries, per_shard).into_iter().collect()
    }

    /// Decompose the engine into its owned shards plus the shared
    /// construction artifacts. This is the hand-off into
    /// [`crate::pool::ShardPool`]: each [`EngineShard`] (and with it the
    /// shard's engine set, planner, and scratch arena) moves onto its own
    /// long-lived worker thread, and [`crate::pool::ShardPool::shutdown`]
    /// hands the same shards back.
    pub fn into_parts(
        self,
    ) -> (
        Vec<EngineShard>,
        ShardSpec,
        Arc<InvertedIndex>,
        Arc<ScoreKernel>,
    ) {
        (self.shards, self.spec, self.index, self.kernel)
    }
}

/// One gate per query: shared thresholds under propagation, inert gates
/// otherwise.
pub(crate) fn gates(queries: &[BatchQuery], propagate: bool) -> Vec<BoundGate> {
    queries
        .iter()
        .map(|_| {
            if propagate {
                BoundGate::shared(Arc::new(SharedThreshold::new()))
            } else {
                BoundGate::none()
            }
        })
        .collect()
}

/// Fold per-shard outcome columns into per-query results: tie-stable
/// k-way merge of the shard-local heaps plus counter aggregation. Shared
/// by the scoped-thread paths, the sequential profiling path, and the
/// worker pool (whose tickets expose the raw columns so callers may defer
/// this merge off the service critical path).
///
/// Failures are **per query**: a query every shard answered merges into
/// an `Ok` response even when its batch-mates failed, and a failed
/// query reports the first error in shard order (engine errors and
/// shard-panic failures alike) without taking its neighbours down. A
/// response is `partial` iff any shard's report was (deadline expiry) —
/// its `top` is then an exact prefix, not the full answer.
pub fn merge_columns(
    queries: &[BatchQuery],
    mut per_shard: Vec<ShardColumn>,
) -> Vec<ServeResult<QueryResponse>> {
    let mut responses = Vec::with_capacity(queries.len());
    for (qi, q) in queries.iter().enumerate() {
        let mut outcomes = Vec::with_capacity(per_shard.len());
        let mut failure: Option<ServeError> = None;
        for shard_results in &mut per_shard {
            // Take ownership of this query's outcome from the shard's
            // result column.
            let outcome = std::mem::replace(
                &mut shard_results[qi],
                Err(ServeError::Engine(moa_core::CoreError::Type(
                    "outcome already taken".into(),
                ))),
            );
            match outcome {
                Ok(o) => outcomes.push(o),
                Err(e) => {
                    if failure.is_none() {
                        failure = Some(e);
                    }
                }
            }
        }
        if let Some(e) = failure {
            responses.push(Err(e));
            continue;
        }
        let lists: Vec<&[(u32, f64)]> = outcomes.iter().map(|o| o.report.top.as_slice()).collect();
        let top = kway_merge_sorted(&lists, q.n);
        let mut work = ExecReport::default();
        for o in &outcomes {
            work.absorb(&o.report);
        }
        let partial = work.partial;
        responses.push(Ok(QueryResponse {
            top,
            work,
            partial,
            shards: outcomes,
        }));
    }
    responses
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_corpus::{generate_queries, Collection, CollectionConfig, QueryConfig};
    use moa_ir::Strategy;

    fn fixture() -> (Collection, Arc<InvertedIndex>) {
        let c = Collection::generate(CollectionConfig::tiny()).expect("valid preset");
        let idx = Arc::new(InvertedIndex::from_collection(&c));
        (c, idx)
    }

    fn engine(idx: &Arc<InvertedIndex>, spec: ShardSpec) -> ShardedEngine {
        ShardedEngine::build(
            Arc::clone(idx),
            spec,
            FragmentSpec::TermFraction(0.9),
            RankingModel::default(),
            SwitchPolicy::default(),
            Some(64),
        )
        .expect("tiny index shards cleanly")
    }

    #[test]
    fn shard_of_partitions_every_document_exactly_once() {
        for spec in [
            ShardSpec::Range { shards: 4 },
            ShardSpec::RoundRobin { shards: 4 },
            ShardSpec::Range { shards: 1 },
        ] {
            for num_docs in [1usize, 7, 64, 100] {
                let mut counts = vec![0usize; spec.shards()];
                for d in 0..num_docs as u32 {
                    counts[spec.shard_of(d, num_docs)] += 1;
                }
                assert_eq!(counts.iter().sum::<usize>(), num_docs);
                if let ShardSpec::Range { .. } = spec {
                    // Ranges are balanced to within the ceiling span.
                    let span = num_docs.div_ceil(spec.shards());
                    assert!(counts.iter().all(|&c| c <= span), "{spec:?} {num_docs}");
                }
            }
        }
    }

    #[test]
    fn shard_volumes_partition_the_index() {
        let (_, idx) = fixture();
        for spec in [
            ShardSpec::Range { shards: 3 },
            ShardSpec::RoundRobin { shards: 3 },
        ] {
            let eng = engine(&idx, spec);
            let total: usize = eng.shards().iter().map(EngineShard::num_postings).sum();
            assert_eq!(total, idx.num_postings(), "{spec:?}");
        }
    }

    #[test]
    fn sharded_planned_matches_single_shard_planned() {
        let (c, idx) = fixture();
        let mut single = engine(&idx, ShardSpec::Range { shards: 1 });
        let mut sharded = engine(&idx, ShardSpec::Range { shards: 4 });
        let queries = generate_queries(&c, &QueryConfig::default()).expect("valid workload");
        for q in queries.iter().take(10) {
            for n in [1usize, 10, c.num_docs()] {
                let want = single
                    .execute(&q.terms, n, ServeMode::Planned, false)
                    .expect("in-vocabulary query");
                let got = sharded
                    .execute(&q.terms, n, ServeMode::Planned, true)
                    .expect("in-vocabulary query");
                assert_eq!(got.top, want.top, "terms {:?} n {n}", q.terms);
                assert_eq!(got.shards.len(), 4);
            }
        }
    }

    #[test]
    fn fixed_mode_pins_the_same_plan_on_every_shard() {
        let (c, idx) = fixture();
        let mut sharded = engine(&idx, ShardSpec::RoundRobin { shards: 3 });
        let queries = generate_queries(&c, &QueryConfig::default()).expect("valid workload");
        let plan = PhysicalPlan::Fragmented(Strategy::FullScan);
        let resp = sharded
            .execute(&queries[0].terms, 5, ServeMode::Fixed(plan), false)
            .expect("in-vocabulary query");
        for o in &resp.shards {
            assert_eq!(o.plan, plan);
            assert_eq!(o.est_cost, None);
        }
        // A full scan's combined inspection volume covers every shard's
        // whole table: the partition sums back to the collection volume.
        assert_eq!(resp.work.postings_scanned, idx.num_postings());
    }

    #[test]
    fn batch_matches_sequential_submits() {
        let (c, idx) = fixture();
        let queries = generate_queries(&c, &QueryConfig::default()).expect("valid workload");
        let batch: Vec<BatchQuery> = queries
            .iter()
            .take(8)
            .map(|q| BatchQuery {
                terms: q.terms.clone(),
                n: 10,
            })
            .collect();
        let mut a = engine(&idx, ShardSpec::Range { shards: 2 });
        let batched = a
            .execute_batch(&batch, ServeMode::Planned, true)
            .expect("in-vocabulary batch");
        let mut b = engine(&idx, ShardSpec::Range { shards: 2 });
        for (i, q) in batch.iter().enumerate() {
            let one = b
                .execute(&q.terms, q.n, ServeMode::Planned, true)
                .expect("in-vocabulary query");
            assert_eq!(batched[i].top, one.top, "query {i}");
        }
    }

    #[test]
    fn unknown_term_errors_and_empty_query_is_empty() {
        let (_, idx) = fixture();
        let mut eng = engine(&idx, ShardSpec::Range { shards: 2 });
        assert!(eng
            .execute(&[u32::MAX], 5, ServeMode::Planned, true)
            .is_err());
        let resp = eng
            .execute(&[], 5, ServeMode::Planned, true)
            .expect("empty query is legal");
        assert!(resp.top.is_empty());
        assert_eq!(resp.work.postings_scanned, 0);
    }

    #[test]
    fn propagation_never_changes_answers_only_work() {
        let (c, idx) = fixture();
        let queries = generate_queries(&c, &QueryConfig::default()).expect("valid workload");
        let mut with = engine(&idx, ShardSpec::Range { shards: 4 });
        let mut without = engine(&idx, ShardSpec::Range { shards: 4 });
        let mut scanned_with = 0usize;
        let mut scanned_without = 0usize;
        for q in queries.iter().take(12) {
            let a = with
                .execute(
                    &q.terms,
                    10,
                    ServeMode::Fixed(PhysicalPlan::PrunedDaat),
                    true,
                )
                .expect("in-vocabulary query");
            let b = without
                .execute(
                    &q.terms,
                    10,
                    ServeMode::Fixed(PhysicalPlan::PrunedDaat),
                    false,
                )
                .expect("in-vocabulary query");
            assert_eq!(a.top, b.top, "terms {:?}", q.terms);
            scanned_with += a.work.postings_scanned;
            scanned_without += b.work.postings_scanned;
        }
        assert!(
            scanned_with <= scanned_without,
            "propagation increased work: {scanned_with} > {scanned_without}"
        );
    }
}
