//! # moa-serve — the sharded parallel serving layer
//!
//! The paper makes top-N retrieval cheap by *horizontally fragmenting*
//! the term–document table; this crate takes that device to its parallel
//! conclusion for a serving deployment:
//!
//! * [`shard`] — [`ShardedEngine`]: document-partition the collection
//!   into P shards ([`ShardSpec`]), build one df-fragmented table and one
//!   [`moa_ir::EngineSet`] per shard (sharing a single scoring kernel),
//!   let each shard's own `moa_core` planner pick its physical operator
//!   from shard-local catalog statistics, and fold the shard-local heaps
//!   with the tie-stable k-way merge ([`moa_topn::kway_merge_sorted`]);
//! * [`pool`] — [`ShardPool`]: the persistent serving runtime — one
//!   long-lived worker thread per shard owning that shard's engine set
//!   and zero-allocation scratch arena for the life of the stream, a
//!   submission queue with batched admission ([`ShardPool::submit`] →
//!   [`BatchTicket`]), and drain-on-shutdown that hands the shards back.
//!   This replaced the scoped-thread-per-batch path for serving: spawn/
//!   join per batch cost more than the queries themselves (the E16 wall
//!   regression; E18 gates the pool against both alternatives);
//! * cross-shard **bound propagation** — one
//!   [`moa_ir::SharedThreshold`] per query carries each shard's running
//!   N-th score to all others, so the `would_enter`/block-max pruning
//!   gates tighten *mid-flight* off competition the shard cannot see
//!   locally (soundness argument in [`moa_ir::threshold`]);
//! * [`service`] — [`ServeSession`]: the query front end — batched
//!   [`ServeSession::submit_many`] with per-query work aggregation and
//!   wall-time accounting, the streaming pair [`ServeSession::enqueue`] /
//!   [`ServeSession::collect`] that overlaps merge and admission with
//!   shard service, and an EXPLAIN that renders the per-shard plan table.
//!
//! Exactness: for every exact physical plan, the merged sharded answer is
//! **bit-identical** to a single unsharded engine — shards score with
//! global catalog statistics ([`moa_ir::InvertedIndex::shard_by_docs`]),
//! so every `(doc, score)` pair is the same `f64` it would be unsharded,
//! and the differential oracle pins this across ranking models, N, and
//! shard counts.
//!
//! Overload and failure semantics (see DESIGN.md "Failure & overload
//! semantics"): admission is *bounded* per worker
//! ([`admission::QueueGauge`], [`AdmissionPolicy`]) so a saturated pool
//! backpressures or sheds ([`ServeError::Shed`]) instead of queueing
//! without limit; per-query *deadline budgets* degrade to exact-prefix
//! `partial` responses rather than errors; and a worker panic is
//! *isolated* — the affected positions fail typed
//! ([`ServeError::ShardFailed`]), the worker (or its respawned
//! replacement, over the retained shard) keeps serving, and shutdown
//! reports the panic history instead of re-panicking
//! ([`pool::PoolShutdown`]). The E19 resilience experiment drives all
//! three under injected faults at multiples of calibrated capacity.
//!
//! Observability (see DESIGN.md "Observability"): the pool publishes
//! every serving signal — admission counters, per-shard queue-depth
//! gauges, query/queue-wait latency histograms, panic/respawn counters —
//! through a shared [`moa_obs::MetricsRegistry`]
//! ([`ServeSession::metrics_text`] / [`ServeSession::metrics_json`]);
//! each worker records per-query [`moa_obs::QueryTrace`]s (queue wait,
//! planning, and the engine's per-stage clocks) into a preallocated ring,
//! the worst-K queries are retained with full traces in a slow-query log
//! ([`ServeSession::drain_slow_queries`]), and rare structured events
//! (panics, respawns) land in a bounded event log ([`pool::PoolEvent`]).
//! Steady-state recording allocates nothing; E20 gates the overhead.
//!
//! Cross-batch caching (see DESIGN.md "Result caching & plan
//! memoization"): [`cache`] — [`ResultCache`]: a bounded,
//! sharded-by-hash, segmented-LRU answer cache keyed by
//! `(terms, n, model, snapshot_epoch)`, consulted at admission *before*
//! the queue gauge (a hit occupies no worker slot, never sheds, and is
//! exempt from deadlines) and flash-invalidated in O(1) by
//! [`ResultCache::invalidate_epoch`]. Hits are bit-identical to fresh
//! execution (differential oracle in `tests/cache_oracle.rs`) and the
//! steady-state hit path allocates nothing (`tests/alloc_cache_hit.rs`).
//! The shard planners memoize plan decisions by df-band signature
//! ([`moa_core::Planner::plan_memoized`]); E21 measures both levels
//! under open-loop Zipf load.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod fault;
pub mod pool;
pub mod service;
pub mod shard;

pub use admission::{AdmissionPolicy, QueueGauge};
pub use cache::{approx_entry_bytes, CacheConfig, CacheStats, ResultCache};
pub use fault::{
    panic_message, silence_worker_panics, ServeError, ServeResult, ShardPanic, WorkerFault,
};
pub use pool::{
    BatchTicket, ExplainRow, PoolConfig, PoolEvent, PoolShutdown, ShardPool, SlowQuery,
};
pub use service::{BatchReport, PendingBatch, ServeConfig, ServeSession, ServeStats, ShardBusy};
pub use shard::{
    merge_columns, BatchQuery, EngineShard, QueryResponse, ServeMode, ShardColumn, ShardOutcome,
    ShardSpec, ShardedEngine,
};
