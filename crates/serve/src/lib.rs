//! # moa-serve — the sharded parallel serving layer
//!
//! The paper makes top-N retrieval cheap by *horizontally fragmenting*
//! the term–document table; this crate takes that device to its parallel
//! conclusion for a serving deployment:
//!
//! * [`shard`] — [`ShardedEngine`]: document-partition the collection
//!   into P shards ([`ShardSpec`]), build one df-fragmented table and one
//!   [`moa_ir::EngineSet`] per shard (sharing a single scoring kernel),
//!   let each shard's own `moa_core` planner pick its physical operator
//!   from shard-local catalog statistics, execute shards on scoped
//!   threads, and fold the shard-local heaps with the tie-stable k-way
//!   merge ([`moa_topn::kway_merge_sorted`]);
//! * cross-shard **bound propagation** — one
//!   [`moa_ir::SharedThreshold`] per query carries each shard's running
//!   N-th score to all others, so the `would_enter`/block-max pruning
//!   gates tighten *mid-flight* off competition the shard cannot see
//!   locally (soundness argument in [`moa_ir::threshold`]);
//! * [`service`] — [`ServeSession`]: the batch query front end
//!   ([`ServeSession::submit_many`]) with per-query work aggregation,
//!   wall-time accounting, and an EXPLAIN that renders the per-shard plan
//!   table.
//!
//! Exactness: for every exact physical plan, the merged sharded answer is
//! **bit-identical** to a single unsharded engine — shards score with
//! global catalog statistics ([`moa_ir::InvertedIndex::shard_by_docs`]),
//! so every `(doc, score)` pair is the same `f64` it would be unsharded,
//! and the differential oracle pins this across ranking models, N, and
//! shard counts.

#![warn(missing_docs)]

pub mod service;
pub mod shard;

pub use service::{BatchReport, ServeConfig, ServeSession, ServeStats};
pub use shard::{
    BatchQuery, EngineShard, QueryResponse, ServeMode, ShardOutcome, ShardSpec, ShardedEngine,
};
