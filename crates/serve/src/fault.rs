//! Typed serving failures and the fault-injection surface.
//!
//! The serving runtime distinguishes three ways a query can fail to
//! produce a full answer, because callers handle them differently:
//!
//! * [`ServeError::Shed`] — the query never ran: admission rejected it
//!   because the pool was saturated under [`crate::AdmissionPolicy::Shed`]
//!   (or not idle under `TryNow`). Retry later, or against a replica.
//! * [`ServeError::ShardFailed`] — the query (or its whole batch) died
//!   with a worker panic. The pool caught the panic at the worker
//!   boundary, failed only the affected positions, and kept serving;
//!   the payload message is preserved for diagnosis.
//! * [`ServeError::Engine`] — an ordinary engine error (unknown term,
//!   invalid configuration), exactly as the engines raise it.
//!
//! A *fourth* degraded outcome is not an error at all: a query that ran
//! out of its deadline budget returns `Ok` with
//! [`crate::QueryResponse::partial`]` == true` — an exact-prefix ranking
//! plus honest work counters (see `moa_ir::deadline`).
//!
//! [`WorkerFault`] is the injection surface the E19 resilience harness
//! and the `pool_faults` suite drive: poison-term panics exercise the
//! per-query `catch_unwind` isolation, `Crash` kills a worker thread
//! outside the per-query guard to exercise ticket synthesis and respawn,
//! and `Stall` holds a worker busy so admission backpressure is
//! deterministic to test.

use std::any::Any;
use std::fmt;
use std::time::Duration;

use moa_core::CoreError;

/// Result alias for serving operations.
pub type ServeResult<T> = std::result::Result<T, ServeError>;

/// A typed serving failure. See the module docs for the taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission rejected the work: a worker queue was at its configured
    /// bound (policy [`crate::AdmissionPolicy::Shed`]) or not idle
    /// (policy [`crate::AdmissionPolicy::TryNow`]). Nothing executed.
    Shed {
        /// The shard whose queue refused the work.
        shard: usize,
        /// That queue's depth at rejection (admitted, unfinished jobs).
        depth: usize,
        /// The configured depth bound.
        bound: usize,
    },
    /// A shard worker panicked while this query (or its batch) was in
    /// flight. The pool survived; this position did not.
    ShardFailed {
        /// The shard whose worker panicked.
        shard: usize,
        /// The panic payload, rendered to a string.
        panic: String,
    },
    /// An ordinary engine error, passed through.
    Engine(CoreError),
}

impl ServeError {
    /// Whether this is an admission rejection (nothing executed).
    pub fn is_shed(&self) -> bool {
        matches!(self, ServeError::Shed { .. })
    }

    /// Whether this is a worker-panic failure.
    pub fn is_shard_failed(&self) -> bool {
        matches!(self, ServeError::ShardFailed { .. })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Shed {
                shard,
                depth,
                bound,
            } => write!(
                f,
                "admission shed: shard {shard} queue at depth {depth} of bound {bound}"
            ),
            ServeError::ShardFailed { shard, panic } => {
                write!(f, "shard {shard} worker panicked: {panic}")
            }
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> ServeError {
        ServeError::Engine(e)
    }
}

/// Render a caught panic payload to a human-readable message. `panic!`
/// with a literal yields `&str`, with a format string yields `String`;
/// anything else is opaque.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// One worker's recorded panic, reported by
/// [`crate::pool::PoolShutdown`] instead of re-panicking the drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPanic {
    /// The shard whose worker died.
    pub shard: usize,
    /// The panic payload, rendered to a string.
    pub message: String,
}

/// A fault to inject into one shard worker
/// ([`crate::pool::ShardPool::inject_fault`]) — the controlled failure
/// surface the resilience harness drives. Faults ride the ordinary job
/// queue, so they take effect in admission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Arm a poison term: the worker panics *inside* its per-query guard
    /// whenever it executes a query containing this term. Exercises
    /// per-query isolation — only the poisoned position fails.
    PoisonTerm(u32),
    /// Disarm any armed poison term.
    ClearPoison,
    /// Panic at the job boundary, *outside* the per-query guard: the
    /// worker thread dies with everything still queued behind it.
    /// Exercises ticket synthesis ([`ServeError::ShardFailed`] for every
    /// lost column) and the respawn path.
    Crash,
    /// Busy-hold the worker for the duration (it sleeps, completing no
    /// jobs): makes queue saturation deterministic for admission tests.
    Stall(Duration),
}

/// Silence the default panic-hook output for shard worker threads
/// (named `moa-shard-*`). Fault-injection runs — the `pool_faults`
/// suite, the E19 resilience harness — panic workers *on purpose*, and
/// every injected fault is already captured, typed, and reported through
/// [`ServeError::ShardFailed`] / [`ShardPanic`]; the default hook's
/// stderr traces would just bury the real output. Panics on every other
/// thread still reach the previously installed hook. Installs once per
/// process; safe to call repeatedly.
pub fn silence_worker_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("moa-shard-"));
            if !on_worker {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_classification() {
        let shed = ServeError::Shed {
            shard: 1,
            depth: 4,
            bound: 4,
        };
        assert!(shed.is_shed() && !shed.is_shard_failed());
        assert!(shed.to_string().contains("depth 4 of bound 4"));
        let failed = ServeError::ShardFailed {
            shard: 2,
            panic: "boom".into(),
        };
        assert!(failed.is_shard_failed() && !failed.is_shed());
        assert!(failed.to_string().contains("boom"));
        let engine = ServeError::from(CoreError::Type("bad".into()));
        assert!(!engine.is_shed() && !engine.is_shard_failed());
    }

    #[test]
    fn panic_messages_render_for_both_literal_and_formatted() {
        let caught = std::panic::catch_unwind(|| panic!("literal payload")).expect_err("panicked");
        assert_eq!(panic_message(caught.as_ref()), "literal payload");
        let caught = std::panic::catch_unwind(|| panic!("formatted {}", 7)).expect_err("panicked");
        assert_eq!(panic_message(caught.as_ref()), "formatted 7");
    }
}
