//! Cross-batch result cache: bounded, sharded-by-hash answers for the
//! serving hot path.
//!
//! The paper's premise — top-N answers are *small* and *expensive* — makes
//! them ideal cache currency. Admission coalescing ([`crate::pool`])
//! already folds duplicates *within* a batch; Zipf traffic repeats across
//! batches too, and this module turns those repeats into O(1) lookups
//! consulted **before** queue-gauge acquisition: a hit never occupies a
//! worker slot, never sheds, and is exempt from deadline budgets.
//!
//! Design:
//! - **Key** — `(terms, n, model, snapshot_epoch)`. The ranking model is
//!   folded in at construction (a cache belongs to one session); the
//!   epoch is a monotonically increasing snapshot counter so a single
//!   [`ResultCache::invalidate_epoch`] call flash-invalidates every
//!   entry in O(1) without scanning — stale entries can never match
//!   again and are reclaimed lazily on touch or eviction.
//! - **Value** — the exact [`QueryResponse`] a fresh execution produced
//!   (sorted top-N, absorbed [`moa_ir::ExecReport`], per-shard
//!   outcomes), behind an `Arc` so a hit is a pointer clone: the
//!   steady-state hit path performs **zero heap allocations** (pinned by
//!   the counting-allocator test in `tests/alloc_cache_hit.rs`).
//!   Partial (deadline-truncated) responses are never inserted.
//! - **Eviction** — segmented LRU with a byte-accounted capacity bound.
//!   New entries land at the *probationary* head; a hit promotes to the
//!   *protected* segment (capped at [`PROTECTED_NUM`]/[`PROTECTED_DEN`]
//!   of the shard's bound, demoting its tail back to probationary when
//!   over). Eviction takes the probationary tail first, so a burst of
//!   one-hit wonders cannot wash out the re-referenced head of a Zipf
//!   distribution — exactly the traffic shape E21 measures.
//! - **Concurrency** — the key hash picks one of `shards` independently
//!   locked segments; the byte bound is enforced per segment
//!   (`capacity_bytes / shards`), so the global footprint never exceeds
//!   the configured bound.
//!
//! Hit/miss/eviction/insertion counters and the byte gauge publish
//! through the session's [`MetricsRegistry`] (`serve.cache.*`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use moa_ir::RankingModel;
use moa_obs::{Counter, Gauge, MetricsRegistry};
use parking_lot::Mutex;

use crate::shard::QueryResponse;

/// Protected-segment share of each cache shard's byte bound (4/5): hits
/// promote into at most this fraction, keeping at least 1/5 of the
/// budget churning probationally.
pub const PROTECTED_NUM: usize = 4;
/// Denominator of the protected share.
pub const PROTECTED_DEN: usize = 5;

/// Fixed per-entry bookkeeping charge (node, links, hash-chain slot) on
/// top of the measured key and value payload.
const ENTRY_OVERHEAD: usize = 160;

/// Null link index.
const NIL: u32 = u32::MAX;

/// Result-cache sizing. `Copy` so [`crate::service::ServeConfig`] stays
/// `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total byte budget across every cache shard (keys + values +
    /// per-entry overhead). The cache never holds more than this.
    pub capacity_bytes: usize,
    /// Independently locked segments (clamped ≥ 1). More shards, less
    /// contention, coarser per-shard bound granularity.
    pub shards: usize,
}

impl Default for CacheConfig {
    /// 8 MiB over 8 lock shards — a few thousand typical top-100
    /// answers.
    fn default() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 8 << 20,
            shards: 8,
        }
    }
}

/// Point-in-time cache counters (monotonic except `bytes`/`entries`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including epoch-stale entries).
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries removed: capacity evictions plus lazy reclamation of
    /// epoch-stale entries.
    pub evictions: u64,
    /// Bytes currently accounted.
    pub bytes: u64,
    /// High-water byte mark since construction.
    pub bytes_high_water: u64,
    /// Entries currently resident.
    pub entries: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Probationary,
    Protected,
}

struct Entry {
    hash: u64,
    terms: Vec<u32>,
    n: usize,
    epoch: u64,
    value: Arc<QueryResponse>,
    bytes: usize,
    seg: Segment,
    prev: u32,
    next: u32,
}

/// One intrusive doubly-linked list over the slab (head = most recent).
#[derive(Clone, Copy)]
struct Lru {
    head: u32,
    tail: u32,
}

impl Lru {
    fn empty() -> Lru {
        Lru {
            head: NIL,
            tail: NIL,
        }
    }
}

struct Shard {
    /// `hash → slab indices` (collision chains are almost always one
    /// entry; stored keys are verified on every probe).
    map: HashMap<u64, Vec<u32>>,
    slab: Vec<Option<Entry>>,
    free: Vec<u32>,
    prob: Lru,
    prot: Lru,
    bytes: usize,
    prot_bytes: usize,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            prob: Lru::empty(),
            prot: Lru::empty(),
            bytes: 0,
            prot_bytes: 0,
        }
    }

    fn entry(&self, idx: u32) -> &Entry {
        self.slab[idx as usize].as_ref().expect("live slab index")
    }

    fn entry_mut(&mut self, idx: u32) -> &mut Entry {
        self.slab[idx as usize].as_mut().expect("live slab index")
    }

    fn list(&mut self, seg: Segment) -> &mut Lru {
        match seg {
            Segment::Probationary => &mut self.prob,
            Segment::Protected => &mut self.prot,
        }
    }

    /// Unlink `idx` from its segment's list (does not free the slot).
    fn unlink(&mut self, idx: u32) {
        let (seg, prev, next) = {
            let e = self.entry(idx);
            (e.seg, e.prev, e.next)
        };
        if prev != NIL {
            self.entry_mut(prev).next = next;
        } else {
            self.list(seg).head = next;
        }
        if next != NIL {
            self.entry_mut(next).prev = prev;
        } else {
            self.list(seg).tail = prev;
        }
        let e = self.entry_mut(idx);
        e.prev = NIL;
        e.next = NIL;
    }

    /// Push `idx` at `seg`'s head (most-recent position) and stamp its
    /// segment tag.
    fn push_head(&mut self, idx: u32, seg: Segment) {
        let head = self.list(seg).head;
        {
            let e = self.entry_mut(idx);
            e.seg = seg;
            e.prev = NIL;
            e.next = head;
        }
        if head != NIL {
            self.entry_mut(head).prev = idx;
        } else {
            self.list(seg).tail = idx;
        }
        self.list(seg).head = idx;
    }

    /// Remove the entry at `idx` entirely: unlink, drop the hash-chain
    /// reference, free the slot, release its bytes. Returns the bytes
    /// freed.
    fn remove(&mut self, idx: u32) -> usize {
        self.unlink(idx);
        let entry = self.slab[idx as usize].take().expect("live slab index");
        if let Some(chain) = self.map.get_mut(&entry.hash) {
            chain.retain(|&i| i != idx);
            if chain.is_empty() {
                self.map.remove(&entry.hash);
            }
        }
        self.free.push(idx);
        self.bytes -= entry.bytes;
        if entry.seg == Segment::Protected {
            self.prot_bytes -= entry.bytes;
        }
        entry.bytes
    }

    /// The slab index holding `(hash, terms, n)`, if resident (any
    /// epoch).
    fn find(&self, hash: u64, terms: &[u32], n: usize) -> Option<u32> {
        let chain = self.map.get(&hash)?;
        chain.iter().copied().find(|&i| {
            let e = self.entry(i);
            e.n == n && e.terms == terms
        })
    }

    /// While the protected segment exceeds its share of `bound`, demote
    /// its tail (least-recent protected entry) back to the probationary
    /// head — it must re-earn protection, but is not evicted outright.
    fn rebalance_protected(&mut self, bound: usize) {
        let share = bound / PROTECTED_DEN * PROTECTED_NUM;
        while self.prot_bytes > share {
            let tail = self.prot.tail;
            if tail == NIL {
                break;
            }
            self.unlink(tail);
            self.prot_bytes -= self.entry(tail).bytes;
            self.push_head(tail, Segment::Probationary);
        }
    }

    /// Evict until `bytes ≤ bound`: probationary tail first, protected
    /// tail only when probation is empty. Returns `(evicted, freed)`.
    fn evict_to(&mut self, bound: usize) -> (u64, usize) {
        let mut evicted = 0;
        let mut freed = 0;
        while self.bytes > bound {
            let victim = if self.prob.tail != NIL {
                self.prob.tail
            } else if self.prot.tail != NIL {
                self.prot.tail
            } else {
                break;
            };
            freed += self.remove(victim);
            evicted += 1;
        }
        (evicted, freed)
    }
}

/// The bounded, sharded, epoch-invalidated answer cache. See the module
/// docs for the design; construct via [`ResultCache::new`] (standalone
/// metrics) or [`ResultCache::with_registry`] (session-shared metrics).
pub struct ResultCache {
    shards: Box<[Mutex<Shard>]>,
    shard_bound: usize,
    capacity: usize,
    model_bits: u64,
    epoch: AtomicU64,
    /// Global resident-byte total, mirrored into the `serve.cache.bytes`
    /// gauge after every mutation. Kept as its own atomic so no shard
    /// lock ever needs a sibling's lock (that nesting would deadlock
    /// under concurrent inserts).
    resident: AtomicU64,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    insertions: Arc<Counter>,
    evictions: Arc<Counter>,
    bytes: Arc<Gauge>,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("capacity_bytes", &self.capacity)
            .field("shards", &self.shards.len())
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish()
    }
}

/// Fold the ranking model into the key: discriminant plus exact
/// parameter bits, so e.g. two BM25 variants never share answers.
fn model_bits(model: RankingModel) -> u64 {
    match model {
        RankingModel::TfIdf => 1,
        RankingModel::HiemstraLm { lambda } => 2 ^ lambda.to_bits().rotate_left(8),
        RankingModel::Bm25 { k1, b } => {
            3 ^ k1.to_bits().rotate_left(8) ^ b.to_bits().rotate_left(40)
        }
    }
}

/// One multiply-rotate round (fxhash-style; no dependency, no
/// allocation).
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    (h.rotate_left(5) ^ v).wrapping_mul(K)
}

#[inline]
fn key_hash(model: u64, terms: &[u32], n: usize) -> u64 {
    let mut h = mix(0xcbf2_9ce4_8422_2325, model);
    for &t in terms {
        h = mix(h, u64::from(t));
    }
    mix(h, n as u64 ^ 0x9e37_79b9_7f4a_7c15)
}

/// The byte charge an entry for `(terms → value)` carries against the
/// capacity bound: key, top-N payload, per-shard reports, and a fixed
/// bookkeeping overhead. Exposed so tests and the proptest oracle can
/// account bytes identically.
pub fn approx_entry_bytes(terms: &[u32], value: &QueryResponse) -> usize {
    let pair = std::mem::size_of::<(u32, f64)>();
    let mut bytes = ENTRY_OVERHEAD + std::mem::size_of_val(terms);
    bytes += value.top.len() * pair;
    bytes += value.shards.len() * std::mem::size_of::<crate::shard::ShardOutcome>();
    for o in &value.shards {
        bytes += o.report.top.len() * pair;
    }
    bytes
}

impl ResultCache {
    /// A cache with standalone (unregistered) metric handles — unit
    /// tests and embedding without a registry.
    pub fn new(config: CacheConfig, model: RankingModel) -> ResultCache {
        ResultCache::with_registry(config, model, &MetricsRegistry::new())
    }

    /// A cache whose counters and byte gauge publish through `registry`
    /// as `serve.cache.{hits,misses,insertions,evictions,bytes}`.
    pub fn with_registry(
        config: CacheConfig,
        model: RankingModel,
        registry: &MetricsRegistry,
    ) -> ResultCache {
        let shards = config.shards.max(1);
        let slots: Vec<Mutex<Shard>> = (0..shards).map(|_| Mutex::new(Shard::new())).collect();
        ResultCache {
            shards: slots.into_boxed_slice(),
            shard_bound: config.capacity_bytes / shards,
            capacity: config.capacity_bytes,
            model_bits: model_bits(model),
            epoch: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            hits: registry.counter("serve.cache.hits"),
            misses: registry.counter("serve.cache.misses"),
            insertions: registry.counter("serve.cache.insertions"),
            evictions: registry.counter("serve.cache.evictions"),
            bytes: registry.gauge("serve.cache.bytes"),
        }
    }

    /// The configured total byte bound.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// The current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Flash-invalidate every resident entry in O(1): bump the snapshot
    /// epoch. Entries stamped with an older epoch can never match again;
    /// their bytes are reclaimed lazily on next touch or eviction. This
    /// is the hook corpus mutation needs — bump once per index swap.
    /// Returns the new epoch.
    pub fn invalidate_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    fn shard_of(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// Fold a byte delta into the global resident total and mirror it
    /// into the gauge (whose `set` also advances the high-water mark).
    fn account(&self, added: usize, freed: usize) {
        let now = if added >= freed {
            let d = (added - freed) as u64;
            self.resident.fetch_add(d, Ordering::Relaxed) + d
        } else {
            let d = (freed - added) as u64;
            self.resident.fetch_sub(d, Ordering::Relaxed) - d
        };
        self.bytes.set(now);
    }

    /// Look up `(terms, n)` at the current epoch. A hit promotes the
    /// entry (probationary → protected, protected → its head) and
    /// returns the cached response by `Arc` clone — no heap allocation
    /// on this path. An epoch-stale entry counts as a miss and is
    /// reclaimed on the spot.
    pub fn get(&self, terms: &[u32], n: usize) -> Option<Arc<QueryResponse>> {
        let hash = key_hash(self.model_bits, terms, n);
        let now = self.epoch();
        let mut shard = self.shard_of(hash).lock();
        let Some(idx) = shard.find(hash, terms, n) else {
            self.misses.incr();
            return None;
        };
        if shard.entry(idx).epoch != now {
            let freed = shard.remove(idx);
            self.account(0, freed);
            self.evictions.incr();
            self.misses.incr();
            return None;
        }
        let value = Arc::clone(&shard.entry(idx).value);
        match shard.entry(idx).seg {
            Segment::Probationary => {
                shard.unlink(idx);
                shard.push_head(idx, Segment::Protected);
                shard.prot_bytes += shard.entry(idx).bytes;
                shard.rebalance_protected(self.shard_bound);
            }
            Segment::Protected => {
                shard.unlink(idx);
                shard.push_head(idx, Segment::Protected);
            }
        }
        self.hits.incr();
        Some(value)
    }

    /// Non-mutating probe for EXPLAIN: the epoch of a live entry for
    /// `(terms, n)`, or `None`. Counts nothing, promotes nothing.
    pub fn peek(&self, terms: &[u32], n: usize) -> Option<u64> {
        let hash = key_hash(self.model_bits, terms, n);
        let now = self.epoch();
        let shard = self.shard_of(hash).lock();
        let idx = shard.find(hash, terms, n)?;
        let e = shard.entry(idx);
        (e.epoch == now).then_some(e.epoch)
    }

    /// Insert `(terms, n) → value` stamped with the current epoch.
    pub fn insert(&self, terms: &[u32], n: usize, value: Arc<QueryResponse>) {
        let epoch = self.epoch();
        self.insert_at(terms, n, value, epoch);
    }

    /// Insert stamped with `epoch` — the epoch the caller *observed when
    /// it admitted the query*. If an [`ResultCache::invalidate_epoch`]
    /// landed since, the answer was computed against a superseded
    /// snapshot and is silently dropped: a racing invalidation can never
    /// be laundered into a fresh-looking entry.
    pub fn insert_at(&self, terms: &[u32], n: usize, value: Arc<QueryResponse>, epoch: u64) {
        if epoch != self.epoch() {
            return;
        }
        let entry_bytes = approx_entry_bytes(terms, &value);
        if entry_bytes > self.shard_bound {
            // Could never fit without evicting the whole shard: refuse.
            return;
        }
        let hash = key_hash(self.model_bits, terms, n);
        let mut shard = self.shard_of(hash).lock();
        let mut freed = 0usize;
        let mut evicted = 0u64;
        if let Some(idx) = shard.find(hash, terms, n) {
            if shard.entry(idx).epoch == epoch {
                // Purity: an answer for a key at an epoch is unique, so
                // the resident entry is already this one. Keep it (and
                // its LRU position).
                return;
            }
            freed += shard.remove(idx);
            evicted += 1;
        }
        let idx = match shard.free.pop() {
            Some(i) => i,
            None => {
                shard.slab.push(None);
                (shard.slab.len() - 1) as u32
            }
        };
        shard.slab[idx as usize] = Some(Entry {
            hash,
            terms: terms.to_vec(),
            n,
            epoch,
            value,
            bytes: entry_bytes,
            seg: Segment::Probationary,
            prev: NIL,
            next: NIL,
        });
        shard.map.entry(hash).or_default().push(idx);
        shard.bytes += entry_bytes;
        shard.push_head(idx, Segment::Probationary);
        let (e, f) = shard.evict_to(self.shard_bound);
        evicted += e;
        freed += f;
        drop(shard);
        self.insertions.incr();
        self.account(entry_bytes, freed);
        if evicted > 0 {
            self.evictions.add(evicted);
        }
    }

    /// Point-in-time counters and residency.
    pub fn stats(&self) -> CacheStats {
        let mut bytes = 0u64;
        let mut entries = 0usize;
        for s in self.shards.iter() {
            let g = s.lock();
            bytes += g.bytes as u64;
            entries += g.slab.len() - g.free.len();
        }
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
            bytes,
            bytes_high_water: self.bytes.high_water().max(bytes),
            entries,
        }
    }

    /// Entries currently resident (live at *some* epoch; stale ones
    /// count until lazily reclaimed).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let g = s.lock();
                g.slab.len() - g.free.len()
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_ir::ExecReport;

    fn resp(doc: u32) -> Arc<QueryResponse> {
        Arc::new(QueryResponse {
            top: vec![(doc, 1.0), (doc + 1, 0.5)],
            work: ExecReport::default(),
            partial: false,
            shards: Vec::new(),
        })
    }

    fn single_shard(capacity: usize) -> ResultCache {
        ResultCache::new(
            CacheConfig {
                capacity_bytes: capacity,
                shards: 1,
            },
            RankingModel::default(),
        )
    }

    #[test]
    fn hit_returns_the_inserted_answer_verbatim() {
        let cache = single_shard(1 << 20);
        assert!(cache.get(&[1, 2], 10).is_none());
        cache.insert(&[1, 2], 10, resp(7));
        let hit = cache.get(&[1, 2], 10).expect("resident");
        assert_eq!(hit.top, vec![(7, 1.0), (8, 0.5)]);
        // Different n or different terms: distinct keys.
        assert!(cache.get(&[1, 2], 11).is_none());
        assert!(cache.get(&[1], 10).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 3, 1));
    }

    #[test]
    fn epoch_bump_invalidates_everything_in_o1() {
        let cache = single_shard(1 << 20);
        cache.insert(&[1], 5, resp(1));
        cache.insert(&[2], 5, resp(2));
        assert_eq!(cache.len(), 2);
        let e = cache.invalidate_epoch();
        assert_eq!(e, 1);
        assert!(cache.get(&[1], 5).is_none(), "stale epoch never hits");
        assert!(cache.peek(&[2], 5).is_none());
        // The touched entry was reclaimed lazily; re-insert works at the
        // new epoch.
        cache.insert(&[1], 5, resp(9));
        assert_eq!(cache.get(&[1], 5).expect("fresh").top[0].0, 9);
    }

    #[test]
    fn stale_insert_from_a_superseded_epoch_is_dropped() {
        let cache = single_shard(1 << 20);
        let admitted_at = cache.epoch();
        cache.invalidate_epoch();
        cache.insert_at(&[3], 5, resp(3), admitted_at);
        assert!(cache.get(&[3], 5).is_none(), "superseded answer cached");
    }

    #[test]
    fn capacity_bound_holds_and_evicts_lru_first() {
        let bytes_each = approx_entry_bytes(&[0], &resp(0));
        // Room for exactly 3 entries.
        let cache = single_shard(bytes_each * 3 + bytes_each / 2);
        for k in 0..3u32 {
            cache.insert(&[k], 5, resp(k));
        }
        assert_eq!(cache.len(), 3);
        assert!(cache.stats().bytes <= cache.capacity_bytes() as u64);
        // Touch key 0 so it is promoted; key 1 becomes the LRU victim.
        assert!(cache.get(&[0], 5).is_some());
        cache.insert(&[3], 5, resp(3));
        assert_eq!(cache.len(), 3);
        assert!(cache.stats().bytes <= cache.capacity_bytes() as u64);
        assert!(cache.peek(&[1], 5).is_none(), "LRU probationary evicted");
        assert!(cache.peek(&[0], 5).is_some(), "protected survivor");
        assert!(cache.peek(&[2], 5).is_some());
        assert!(cache.peek(&[3], 5).is_some());
    }

    #[test]
    fn oversized_entry_is_refused_not_thrashed() {
        let cache = single_shard(64);
        cache.insert(&[1, 2, 3], 100, resp(1));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn models_do_not_share_answers() {
        let a = ResultCache::new(CacheConfig::default(), RankingModel::TfIdf);
        let b = model_bits(RankingModel::Bm25 { k1: 1.2, b: 0.75 });
        let c = model_bits(RankingModel::Bm25 { k1: 1.2, b: 0.4 });
        assert_ne!(model_bits(RankingModel::TfIdf), b);
        assert_ne!(b, c, "parameter bits fold into the key");
        drop(a);
    }

    #[test]
    fn protected_share_demotes_instead_of_evicting() {
        let bytes_each = approx_entry_bytes(&[0], &resp(0));
        // 5 slots; protected share is 4/5 of the bound.
        let cache = single_shard(bytes_each * 5);
        for k in 0..5u32 {
            cache.insert(&[k], 5, resp(k));
        }
        // Promote all five: the protected segment exceeds its share, so
        // tails demote back to probation rather than being dropped.
        for k in 0..5u32 {
            assert!(cache.get(&[k], 5).is_some());
        }
        assert_eq!(cache.len(), 5, "demotion never evicts");
        assert!(cache.stats().bytes <= cache.capacity_bytes() as u64);
    }
}
