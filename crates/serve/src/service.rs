//! The batch query service: the front end `moa_serve` exposes to callers.
//!
//! [`ServeSession`] wraps a [`ShardedEngine`] with the ergonomics a
//! serving deployment needs: single-query [`ServeSession::submit`],
//! batched [`ServeSession::submit_many`] with per-query [`ExecReport`]
//! aggregation and batch wall-time, running service counters, and an
//! EXPLAIN ([`ServeSession::explain`]) that prices a query on every shard
//! and renders the per-shard plan table without executing anything.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use moa_core::Result;
use moa_ir::{ExecReport, FragmentSpec, InvertedIndex, RankingModel, SwitchPolicy};

use crate::shard::{BatchQuery, QueryResponse, ServeMode, ShardSpec, ShardedEngine};

/// Session configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Document partitioning.
    pub shard_spec: ShardSpec,
    /// Per-shard df-fragmentation of the term–document table.
    pub frag_spec: FragmentSpec,
    /// Ranking model (shared by every shard).
    pub model: RankingModel,
    /// Switch policy for the fragmented strategies.
    pub policy: SwitchPolicy,
    /// Operator selection: per-shard planner or one pinned plan.
    pub mode: ServeMode,
    /// Cross-shard threshold propagation (on by default; turning it off
    /// is the ablation E16 measures).
    pub propagate: bool,
    /// Build each shard fragment's non-dense index with this block size.
    pub sparse_block: Option<usize>,
}

impl ServeConfig {
    /// A planned, propagating configuration over `shards` range-partition
    /// shards — the default serving posture.
    pub fn planned(shards: usize) -> ServeConfig {
        ServeConfig {
            shard_spec: ShardSpec::Range { shards },
            frag_spec: FragmentSpec::TermFraction(0.95),
            model: RankingModel::default(),
            policy: SwitchPolicy::default(),
            mode: ServeMode::Planned,
            propagate: true,
            sparse_block: Some(1024),
        }
    }
}

/// The outcome of one [`ServeSession::submit_many`] call.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct BatchReport {
    /// Per-query responses, in submission order.
    pub responses: Vec<QueryResponse>,
    /// Wall-clock time of the whole batch (shard threads included).
    pub wall: Duration,
}

impl BatchReport {
    /// Work counters absorbed over every query of the batch.
    pub fn total_work(&self) -> ExecReport {
        let mut total = ExecReport::default();
        for r in &self.responses {
            total.absorb(&r.work);
        }
        total
    }

    /// Each shard's total busy time over the batch (planning + execution
    /// on its thread), indexed by shard id.
    pub fn shard_busy(&self) -> Vec<Duration> {
        let shards = self.responses.first().map_or(0, |r| r.shards.len());
        let mut busy = vec![Duration::ZERO; shards];
        for r in &self.responses {
            for o in &r.shards {
                busy[o.shard] += o.busy;
            }
        }
        busy
    }

    /// The batch's critical path: the busiest shard's total busy time —
    /// the wall-clock floor for a deployment with one core per shard.
    /// [`BatchReport::wall`] converges to this as cores cover shards; on
    /// fewer cores the measured wall approaches the *sum* of the busy
    /// times instead.
    pub fn critical_path(&self) -> Duration {
        self.shard_busy()
            .into_iter()
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// Running service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered since the session was built.
    pub queries_served: usize,
    /// Batches answered.
    pub batches_served: usize,
    /// Total postings scanned across all shards and queries.
    pub postings_scanned: usize,
}

/// A sharded serving session.
pub struct ServeSession {
    engine: ShardedEngine,
    config: ServeConfig,
    stats: ServeStats,
}

impl ServeSession {
    /// Partition `index` per `config` and stand the service up.
    pub fn new(index: Arc<InvertedIndex>, config: ServeConfig) -> Result<ServeSession> {
        let engine = ShardedEngine::build(
            index,
            config.shard_spec,
            config.frag_spec,
            config.model,
            config.policy,
            config.sparse_block,
        )?;
        Ok(ServeSession {
            engine,
            config,
            stats: ServeStats::default(),
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// The underlying sharded engine.
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Running service counters.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Answer one query.
    pub fn submit(&mut self, terms: &[u32], n: usize) -> Result<QueryResponse> {
        let response = self
            .engine
            .execute(terms, n, self.config.mode, self.config.propagate)?;
        self.stats.queries_served += 1;
        self.stats.postings_scanned += response.work.postings_scanned;
        Ok(response)
    }

    /// Answer a batch: one shard thread works through every query of the
    /// batch (spawn cost amortized batch-wide), responses come back in
    /// submission order with per-query aggregated [`ExecReport`]s and the
    /// batch's wall-clock time.
    pub fn submit_many(&mut self, queries: &[BatchQuery]) -> Result<BatchReport> {
        let t0 = Instant::now();
        let responses =
            self.engine
                .execute_batch(queries, self.config.mode, self.config.propagate)?;
        let wall = t0.elapsed();
        self.stats.queries_served += responses.len();
        self.stats.batches_served += 1;
        for r in &responses {
            self.stats.postings_scanned += r.work.postings_scanned;
        }
        Ok(BatchReport { responses, wall })
    }

    /// [`ServeSession::submit_many`] in profiling mode: shards run
    /// sequentially on the caller's thread
    /// ([`ShardedEngine::execute_batch_sequential`]), so work counters
    /// and per-shard busy times are deterministic and free of scheduler
    /// interference. Answers are identical to the threaded path.
    pub fn submit_many_sequential(&mut self, queries: &[BatchQuery]) -> Result<BatchReport> {
        let t0 = Instant::now();
        let responses = self.engine.execute_batch_sequential(
            queries,
            self.config.mode,
            self.config.propagate,
        )?;
        let wall = t0.elapsed();
        self.stats.queries_served += responses.len();
        self.stats.batches_served += 1;
        for r in &responses {
            self.stats.postings_scanned += r.work.postings_scanned;
        }
        Ok(BatchReport { responses, wall })
    }

    /// Price a query on every shard and render the per-shard plan table —
    /// nothing is executed. Each row is one shard's chosen operator with
    /// its cost and volume estimates from that shard's catalog; the
    /// closing lines summarize partitioning and propagation. Under
    /// [`ServeMode::Fixed`] the pinned operator is shown alongside what
    /// each shard's planner *would* have picked.
    pub fn explain(&self, terms: &[u32], n: usize) -> Result<String> {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== sharded retrieval plan ({} shards, {}) ==",
            self.engine.num_shards(),
            self.engine.spec().describe()
        );
        let pinned = match self.config.mode {
            ServeMode::Fixed(p) => Some(p),
            ServeMode::Planned => None,
        };
        if let Some(p) = pinned {
            let _ = writeln!(
                out,
                "   (operator pinned to {}; planner picks shown for comparison)",
                p.name()
            );
        }
        let _ = writeln!(
            out,
            "{:>5}  {:>10}  {:<20}  {:>12}  {:>14}",
            "shard", "postings", "operator", "est. cost", "est. postings"
        );
        for shard in self.engine.shards() {
            let decision = shard.plan(terms, n)?;
            let chosen = decision.chosen_alternative();
            let _ = writeln!(
                out,
                "{:>5}  {:>10}  {:<20}  {:>12.0}  {:>14.0}",
                shard.id(),
                shard.num_postings(),
                chosen.plan.name(),
                chosen.cost,
                chosen.est_postings,
            );
        }
        let _ = writeln!(
            out,
            "   threshold propagation: {}",
            if self.config.propagate { "on" } else { "off" }
        );
        let _ = writeln!(
            out,
            "   merge: tie-stable k-way over shard-local top-{n} heaps (score desc, doc asc)"
        );
        Ok(out)
    }
}
