//! The batch query service: the front end `moa_serve` exposes to callers.
//!
//! [`ServeSession`] stands a persistent [`ShardPool`] up over a sharded
//! engine and wraps it with the ergonomics a serving deployment needs:
//! single-query [`ServeSession::submit`], batched
//! [`ServeSession::submit_many`] with per-query [`ExecReport`]
//! aggregation and batch wall-time, the streaming pair
//! [`ServeSession::enqueue`] / [`ServeSession::collect`] that overlaps
//! merge and admission with shard service, running service counters, and
//! an EXPLAIN ([`ServeSession::explain`]) that prices a query on every
//! shard and renders the per-shard plan table without executing anything.
//!
//! Shard workers are long-lived: batch submission costs two `mpsc` sends
//! per shard, not a thread spawn/join — the regression the scoped-thread
//! runtime paid per batch (see [`crate::pool`]) and the E18 sustained-load
//! harness now gates against.
//!
//! Overload and failure semantics ride through from the pool: admission
//! is bounded ([`ServeConfig::queue_depth`], [`ServeConfig::admission`]),
//! a shed batch surfaces as [`ServeError::Shed`] from
//! [`ServeSession::enqueue`] before any work happens, per-query deadline
//! budgets ([`ServeConfig::deadline`]) degrade to `partial` responses
//! instead of erroring, and a worker panic fails only the affected
//! positions ([`ServeError::ShardFailed`]) while the session keeps
//! serving. [`ServeStats`] counts each posture.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use moa_ir::{ExecReport, FragmentSpec, InvertedIndex, RankingModel, SwitchPolicy};
use moa_obs::{Histogram, MetricsRegistry, QueryTrace};

use crate::admission::AdmissionPolicy;
use crate::cache::{CacheConfig, ResultCache};
use crate::fault::{ServeError, ServeResult};
use crate::pool::{BatchTicket, PoolConfig, PoolEvent, PoolShutdown, ShardPool, SlowQuery};
use crate::shard::{merge_columns, BatchQuery, QueryResponse, ServeMode, ShardSpec, ShardedEngine};

/// Session configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Document partitioning.
    pub shard_spec: ShardSpec,
    /// Per-shard df-fragmentation of the term–document table.
    pub frag_spec: FragmentSpec,
    /// Ranking model (shared by every shard).
    pub model: RankingModel,
    /// Switch policy for the fragmented strategies.
    pub policy: SwitchPolicy,
    /// Operator selection: per-shard planner or one pinned plan.
    pub mode: ServeMode,
    /// Cross-shard threshold propagation (on by default; turning it off
    /// is the ablation E16 measures).
    pub propagate: bool,
    /// Build each shard fragment's non-dense index with this block size.
    pub sparse_block: Option<usize>,
    /// Per-worker queue bound: admitted-but-unfinished batch jobs
    /// (clamped ≥ 1 by the pool).
    pub queue_depth: usize,
    /// What a full worker queue means for a new batch: backpressure
    /// (block), shed, or idle-only admission.
    pub admission: AdmissionPolicy,
    /// Per-query deadline budget, started at admission (queueing counts
    /// against it). Expired queries return `Ok` with
    /// [`QueryResponse::partial`] set. `None` disables deadlines.
    pub deadline: Option<Duration>,
    /// Capture per-query traces and slow-log entries on the shard
    /// workers (registry metrics are always live). E20 measures the
    /// overhead of leaving this on.
    pub telemetry: bool,
    /// Per-worker trace ring capacity (recent query traces retained).
    pub trace_ring: usize,
    /// Slow-query log capacity (worst-K by shard wall time).
    pub slow_log: usize,
    /// Cross-batch result cache ([`crate::cache`]). `None` (the
    /// default) disables it: every query executes. `Some` bounds the
    /// cache in bytes; hits are consulted at admission *before* the
    /// queue gauge, so they never occupy a worker slot, never shed, and
    /// are exempt from deadline budgets.
    pub cache: Option<CacheConfig>,
}

impl ServeConfig {
    /// A planned, propagating configuration over `shards` range-partition
    /// shards — the default serving posture: deep blocking queues, no
    /// deadline (closed-loop callers that always collect what they
    /// enqueue neither shed nor time out under these defaults).
    pub fn planned(shards: usize) -> ServeConfig {
        ServeConfig {
            shard_spec: ShardSpec::Range { shards },
            frag_spec: FragmentSpec::TermFraction(0.95),
            model: RankingModel::default(),
            policy: SwitchPolicy::default(),
            mode: ServeMode::Planned,
            propagate: true,
            sparse_block: Some(1024),
            queue_depth: 64,
            admission: AdmissionPolicy::Block,
            deadline: None,
            telemetry: true,
            trace_ring: 128,
            slow_log: 16,
            cache: None,
        }
    }

    /// The planned posture with the cross-batch result cache enabled at
    /// its default sizing.
    pub fn cached(shards: usize) -> ServeConfig {
        ServeConfig {
            cache: Some(CacheConfig::default()),
            ..ServeConfig::planned(shards)
        }
    }
}

/// One shard's accumulated busy time over a batch, with the number of
/// per-query samples behind it. A batch that errored early (or an empty
/// batch) leaves `samples == 0` — an *absence of evidence*, which
/// [`BatchReport::critical_path`] surfaces as `None` rather than letting
/// a zero masquerade as a measured duration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardBusy {
    /// Total busy time (planning + execution on the shard's thread).
    pub busy: Duration,
    /// Number of query outcomes the total aggregates.
    pub samples: usize,
}

/// The outcome of one [`ServeSession::submit_many`] call. Failures are
/// per position: one query's shard panic or engine error leaves its
/// batch-mates' responses intact.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct BatchReport {
    /// Per-query results, in submission order: `Ok` responses (possibly
    /// `partial` under a deadline) or that position's typed failure.
    pub responses: Vec<ServeResult<QueryResponse>>,
    /// Wall-clock time from admission to the last merged response.
    pub wall: Duration,
}

impl BatchReport {
    /// The successful responses, in submission order (failed positions
    /// skipped).
    pub fn ok_responses(&self) -> impl Iterator<Item = &QueryResponse> {
        self.responses.iter().filter_map(|r| r.as_ref().ok())
    }

    /// Every response, asserting that no position failed — the
    /// convenience for callers (tests, benchmarks) that submit known-good
    /// batches with no faults in play.
    ///
    /// # Panics
    /// If any position failed.
    pub fn expect_ok(&self) -> Vec<&QueryResponse> {
        self.responses
            .iter()
            .map(|r| r.as_ref().expect("no position of this batch failed"))
            .collect()
    }

    /// Positions that failed, with their errors.
    pub fn failures(&self) -> impl Iterator<Item = (usize, &ServeError)> {
        self.responses
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().err().map(|e| (i, e)))
    }

    /// Work counters absorbed over every successful query of the batch.
    pub fn total_work(&self) -> ExecReport {
        let mut total = ExecReport::default();
        for r in self.ok_responses() {
            total.absorb(&r.work);
        }
        total
    }

    /// Each shard's total busy time over the batch, indexed by shard id,
    /// with its sample count. The vector spans every shard id any
    /// successful response mentions; ids no response reported stay at
    /// zero samples.
    pub fn shard_busy(&self) -> Vec<ShardBusy> {
        let shards = self
            .ok_responses()
            .flat_map(|r| r.shards.iter())
            .map(|o| o.shard + 1)
            .max()
            .unwrap_or(0);
        let mut busy = vec![ShardBusy::default(); shards];
        for r in self.ok_responses() {
            for o in &r.shards {
                busy[o.shard].busy += o.busy;
                busy[o.shard].samples += 1;
            }
        }
        busy
    }

    /// The batch's critical path: the busiest shard's total busy time —
    /// the wall-clock floor for a deployment with one core per shard.
    /// `None` when the batch produced no shard outcomes at all (empty
    /// batch): there is no measurement, and `Duration::ZERO` would read
    /// as an impossibly fast one.
    pub fn critical_path(&self) -> Option<Duration> {
        self.shard_busy()
            .into_iter()
            .filter(|b| b.samples > 0)
            .map(|b| b.busy)
            .max()
    }
}

/// Running service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered (`Ok`, full or partial) since the session was
    /// built.
    pub queries_served: usize,
    /// Batches answered.
    pub batches_served: usize,
    /// Queries answered by another in-batch position's execution
    /// (admission-time request coalescing; see [`crate::pool`]).
    pub queries_coalesced: usize,
    /// Total postings scanned across all shards and queries — work
    /// *performed*, so a coalesced query's shared scan counts once.
    pub postings_scanned: usize,
    /// Queries rejected at admission (the whole batch sheds at once;
    /// nothing executed for them).
    pub queries_shed: usize,
    /// Queries that failed in flight (worker panic or engine error).
    pub queries_failed: usize,
    /// Queries answered `Ok` but `partial`: their deadline budget
    /// expired and they returned an exact prefix of the ranking.
    pub queries_partial: usize,
    /// Shard workers respawned over their retained shard after a crash.
    pub worker_respawns: usize,
    /// Queries answered from the cross-batch result cache: no worker
    /// slot occupied, no postings scanned, bit-identical to the fresh
    /// execution that populated the entry.
    pub queries_cache_hit: usize,
    /// Per-shard planned executions whose [`moa_core::PlanDecision`]
    /// came from the planner's plan memo instead of a full alternative
    /// walk (a query that plans on every shard can count once per
    /// shard).
    pub plans_memoized: usize,
}

impl ServeStats {
    /// Fold one successful response into the counters. Every add
    /// saturates — a long-lived session on a 32-bit `usize` pins at the
    /// maximum instead of wrapping back through small values (the same
    /// discipline as `ExecReport::absorb`). `postings` is `Some` only
    /// for first occurrences, so a coalesced clone's shared scan counts
    /// once.
    fn absorb_ok(&mut self, partial: bool, postings: Option<usize>) {
        self.queries_served = self.queries_served.saturating_add(1);
        if partial {
            self.queries_partial = self.queries_partial.saturating_add(1);
        }
        if let Some(p) = postings {
            self.postings_scanned = self.postings_scanned.saturating_add(p);
        }
    }
}

/// A batch admitted by [`ServeSession::enqueue`] and not yet collected.
/// Shard workers are already serving it; redeem with
/// [`ServeSession::collect`]. Dropping it abandons the responses (the
/// workers still finish the work).
#[must_use = "collect() the pending batch or its responses are discarded"]
pub struct PendingBatch {
    /// The pool ticket for the positions that missed the result cache.
    /// `None` when every position hit (nothing was submitted: a fully
    /// cached batch costs no worker slot at all).
    ticket: Option<BatchTicket>,
    /// With the cache enabled: one slot per submitted position, `Some`
    /// for cache hits (in submission order), `None` for positions the
    /// ticket answers. Empty when the cache is disabled.
    hits: Vec<Option<Arc<QueryResponse>>>,
    /// The cache epoch observed at admission: fresh results are inserted
    /// stamped with it, so an `invalidate_epoch()` racing the batch can
    /// never be laundered into a fresh-looking entry.
    admit_epoch: u64,
    started: Instant,
}

impl PendingBatch {
    /// Assemble submission-order responses from the cached hits and the
    /// miss responses (which arrive in miss-submission order).
    fn assemble(
        hits: Vec<Option<Arc<QueryResponse>>>,
        misses: Vec<ServeResult<QueryResponse>>,
    ) -> Vec<ServeResult<QueryResponse>> {
        if hits.is_empty() {
            return misses;
        }
        let mut miss_iter = misses.into_iter();
        hits.into_iter()
            .map(|h| match h {
                Some(cached) => Ok(QueryResponse::clone(&cached)),
                None => miss_iter
                    .next()
                    .expect("one miss response per miss position"),
            })
            .collect()
    }

    /// Redeem the batch without a session — the escape hatch for batches
    /// that outlive their session (enqueued before
    /// [`ServeSession::shutdown`], collected after). Responses bypass the
    /// session counters (and nothing is inserted into the result cache);
    /// prefer [`ServeSession::collect`] otherwise.
    pub fn wait(self) -> BatchReport {
        let misses = match self.ticket {
            Some(t) => t.wait(),
            None => Vec::new(),
        };
        let responses = PendingBatch::assemble(self.hits, misses);
        BatchReport {
            responses,
            wall: self.started.elapsed(),
        }
    }
}

/// A sharded serving session over a persistent worker pool.
pub struct ServeSession {
    pool: ShardPool,
    config: ServeConfig,
    stats: ServeStats,
    /// The cross-batch result cache ([`ServeConfig::cache`]); `None`
    /// when disabled.
    cache: Option<Arc<ResultCache>>,
    /// `serve.kway_merge_ns`: the cross-shard k-way merge per batch.
    merge_ns: Arc<Histogram>,
    /// `serve.deliver_ns`: coalesced fan-out + counter accounting per
    /// batch (the session's post-merge delivery work).
    deliver_ns: Arc<Histogram>,
}

impl ServeSession {
    /// Partition `index` per `config`, build one engine per shard, and
    /// move each onto its own long-lived worker thread.
    pub fn new(index: Arc<InvertedIndex>, config: ServeConfig) -> ServeResult<ServeSession> {
        let engine = ShardedEngine::build(
            index,
            config.shard_spec,
            config.frag_spec,
            config.model,
            config.policy,
            config.sparse_block,
        )?;
        let pool_config = PoolConfig {
            queue_depth: config.queue_depth,
            deadline: config.deadline,
            telemetry: config.telemetry,
            trace_ring: config.trace_ring,
            slow_log: config.slow_log,
        };
        let pool = ShardPool::with_config(engine, pool_config);
        // The session's merge/delivery spans land in the same registry
        // as the pool's shard-side metrics: one exposition for the stack.
        let merge_ns = pool.registry().histogram("serve.kway_merge_ns");
        let deliver_ns = pool.registry().histogram("serve.deliver_ns");
        let cache = config
            .cache
            .map(|c| Arc::new(ResultCache::with_registry(c, config.model, pool.registry())));
        Ok(ServeSession {
            pool,
            config,
            stats: ServeStats::default(),
            cache,
            merge_ns,
            deliver_ns,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// The worker pool the session serves from.
    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// Mutable pool access — fault injection and healing for tests and
    /// the E19 resilience harness.
    pub fn pool_mut(&mut self) -> &mut ShardPool {
        &mut self.pool
    }

    /// Running service counters (respawns read live off the pool).
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.stats;
        stats.worker_respawns = self.pool.respawns();
        stats
    }

    /// Answer one query.
    pub fn submit(&mut self, terms: &[u32], n: usize) -> ServeResult<QueryResponse> {
        let queries = [BatchQuery {
            terms: terms.to_vec(),
            n,
        }];
        let report = self.submit_many(&queries)?;
        let mut responses = report.responses;
        responses.pop().expect("one result per submitted query")
    }

    /// Answer a batch: every shard worker runs its column of the batch
    /// concurrently, results come back in submission order with
    /// per-query aggregated [`ExecReport`]s and the batch's wall-clock
    /// time. Equivalent to [`ServeSession::enqueue`] followed immediately
    /// by [`ServeSession::collect`]. The outer error is admission only
    /// ([`ServeError::Shed`]: nothing executed, retry the batch verbatim);
    /// in-flight failures surface per position inside the report.
    pub fn submit_many(&mut self, queries: &[BatchQuery]) -> ServeResult<BatchReport> {
        let pending = self.enqueue(queries)?;
        Ok(self.collect(pending))
    }

    /// Admit a batch to the shard workers and return without waiting.
    /// The caller may enqueue further batches (they queue per worker, in
    /// admission order, up to [`ServeConfig::queue_depth`]) or do
    /// unrelated work — e.g. merge the previous batch — while the shards
    /// serve this one. Under [`AdmissionPolicy::Shed`] / `TryNow`, a
    /// saturated pool refuses here with [`ServeError::Shed`] before any
    /// work happens.
    ///
    /// With [`ServeConfig::cache`] enabled, the result cache is
    /// consulted here, *before* queue-gauge acquisition: cached
    /// positions never occupy a worker slot, never shed, and are exempt
    /// from deadline budgets; only the residual misses are submitted (a
    /// fully cached batch submits nothing). A shed therefore refuses
    /// only the miss sub-batch — retrying the batch re-answers the
    /// cached positions for free.
    pub fn enqueue(&mut self, queries: &[BatchQuery]) -> ServeResult<PendingBatch> {
        let started = Instant::now();
        let (hits, admit_epoch, misses) = match &self.cache {
            Some(cache) => {
                let epoch = cache.epoch();
                let hits: Vec<Option<Arc<QueryResponse>>> =
                    queries.iter().map(|q| cache.get(&q.terms, q.n)).collect();
                let misses: Vec<BatchQuery> = queries
                    .iter()
                    .zip(&hits)
                    .filter(|(_, h)| h.is_none())
                    .map(|(q, _)| q.clone())
                    .collect();
                (hits, epoch, Some(misses))
            }
            None => (Vec::new(), 0, None),
        };
        let ticket = match &misses {
            // Cache disabled: submit the batch verbatim.
            None => Some(self.submit_to_pool(queries)?),
            // Fully cached: no pool work at all.
            Some(m) if m.is_empty() => None,
            Some(m) => Some(self.submit_to_pool(m)?),
        };
        Ok(PendingBatch {
            ticket,
            hits,
            admit_epoch,
            started,
        })
    }

    fn submit_to_pool(&mut self, queries: &[BatchQuery]) -> ServeResult<BatchTicket> {
        self.pool
            .submit(
                queries,
                self.config.mode,
                self.config.propagate,
                self.config.admission,
            )
            .inspect_err(|e| {
                if e.is_shed() {
                    self.stats.queries_shed += queries.len();
                }
            })
    }

    /// Wait for an admitted batch, fold the shard columns with the
    /// tie-stable merge, and account it to the session counters. `wall`
    /// spans admission to delivery. The k-way merge and the post-merge
    /// delivery (coalesced fan-out + accounting) each record a latency
    /// histogram (`serve.kway_merge_ns`, `serve.deliver_ns`) — the
    /// session-side tail of the query lifecycle the shard workers cannot
    /// see. Never fails: per-position errors stay in the report.
    pub fn collect(&mut self, pending: PendingBatch) -> BatchReport {
        let PendingBatch {
            ticket,
            hits,
            admit_epoch,
            started,
        } = pending;
        self.stats.batches_served = self.stats.batches_served.saturating_add(1);
        let insert_epoch = (!hits.is_empty()).then_some(admit_epoch);
        let misses = match ticket {
            Some(t) => self.merge_ticket(t, insert_epoch),
            None => Vec::new(),
        };
        let responses = if hits.is_empty() {
            misses
        } else {
            // Cache hits count as served queries but scanned nothing: the
            // work their entries carry was performed (and counted) by the
            // execution that populated them. A cached answer is never
            // partial — partial responses are not inserted.
            let mut miss_iter = misses.into_iter();
            hits.into_iter()
                .map(|h| match h {
                    Some(cached) => {
                        self.stats.queries_cache_hit =
                            self.stats.queries_cache_hit.saturating_add(1);
                        self.stats.absorb_ok(cached.partial, None);
                        Ok(QueryResponse::clone(&cached))
                    }
                    None => miss_iter
                        .next()
                        .expect("one miss response per miss position"),
                })
                .collect()
        };
        let wall = started.elapsed();
        BatchReport { responses, wall }
    }

    /// Redeem a pool ticket: merge the shard columns, expand coalesced
    /// positions, account the session counters, and — when
    /// `insert_epoch` is set — insert every complete distinct answer
    /// into the result cache stamped with the admission-time epoch.
    fn merge_ticket(
        &mut self,
        ticket: BatchTicket,
        insert_epoch: Option<u64>,
    ) -> Vec<ServeResult<QueryResponse>> {
        let coalesced = ticket.coalesced();
        let expand = ticket.expansion().to_vec();
        // Redeem the ticket in two steps so the merge is its own span:
        // waiting for columns is shard service time, folding them is
        // session-side merge time.
        let (queries, columns) = ticket.wait_columns();
        let t_merge = Instant::now();
        let distinct = merge_columns(&queries, columns);
        self.merge_ns.record(t_merge.elapsed().as_nanos() as u64);
        let t_deliver = Instant::now();
        if let (Some(epoch), Some(cache)) = (insert_epoch, self.cache.clone()) {
            // One insertion per *distinct* query: complete (`Ok`,
            // non-partial) answers only — a deadline-truncated prefix
            // must never be replayed as the full ranking.
            for (q, r) in queries.iter().zip(&distinct) {
                if let Ok(resp) = r {
                    if !resp.partial {
                        cache.insert_at(&q.terms, q.n, Arc::new(resp.clone()), epoch);
                    }
                }
            }
        }
        let responses: Vec<ServeResult<QueryResponse>> = if distinct.len() == expand.len() {
            // No duplicates: the expansion is the identity.
            distinct
        } else {
            expand.iter().map(|&u| distinct[u].clone()).collect()
        };
        self.stats.queries_coalesced = self.stats.queries_coalesced.saturating_add(coalesced);
        // Count each *performed* scan once: a position is a first
        // occurrence (a real execution, not a coalesced clone) iff its
        // distinct index equals the number of distinct indices seen so
        // far — they are assigned in first-occurrence order.
        let mut seen = 0usize;
        for (r, &u) in responses.iter().zip(&expand) {
            let first_occurrence = u == seen;
            if first_occurrence {
                seen += 1;
            }
            match r {
                Ok(resp) => {
                    let postings = first_occurrence.then_some(resp.work.postings_scanned);
                    self.stats.absorb_ok(resp.partial, postings);
                    if first_occurrence {
                        let memo = resp.shards.iter().filter(|o| o.memo_hit).count();
                        self.stats.plans_memoized = self.stats.plans_memoized.saturating_add(memo);
                    }
                }
                Err(_) => {
                    self.stats.queries_failed = self.stats.queries_failed.saturating_add(1);
                }
            }
        }
        self.deliver_ns
            .record(t_deliver.elapsed().as_nanos() as u64);
        responses
    }

    /// [`ServeSession::submit_many`] in profiling mode: shard workers run
    /// one at a time in shard order ([`ShardPool::submit_sequential`]),
    /// so work counters and per-shard busy times are deterministic and
    /// free of scheduler interference. Answers are identical to the
    /// concurrent path. Admission blocks (never sheds).
    pub fn submit_many_sequential(&mut self, queries: &[BatchQuery]) -> BatchReport {
        let t0 = Instant::now();
        let responses =
            self.pool
                .submit_sequential(queries, self.config.mode, self.config.propagate);
        let wall = t0.elapsed();
        self.stats.batches_served = self.stats.batches_served.saturating_add(1);
        for r in &responses {
            match r {
                Ok(resp) => {
                    self.stats
                        .absorb_ok(resp.partial, Some(resp.work.postings_scanned));
                    let memo = resp.shards.iter().filter(|o| o.memo_hit).count();
                    self.stats.plans_memoized = self.stats.plans_memoized.saturating_add(memo);
                }
                Err(_) => {
                    self.stats.queries_failed = self.stats.queries_failed.saturating_add(1);
                }
            }
        }
        BatchReport { responses, wall }
    }

    /// Drain and stop: workers finish everything already admitted, then
    /// hand their shards back (planner calibration and scratch arenas
    /// intact) along with the pool's panic history — teardown never
    /// panics, even if workers did. A [`PendingBatch`] enqueued before
    /// shutdown can still be collected afterwards — no query is dropped
    /// by teardown — though its responses no longer reach the session
    /// counters.
    pub fn shutdown(self) -> PoolShutdown {
        self.pool.shutdown()
    }

    /// Price a query on every shard and render the per-shard plan table —
    /// nothing is executed. Each row is one shard's chosen operator with
    /// its cost and volume estimates from that shard's catalog; the
    /// closing lines summarize partitioning and propagation. Under
    /// [`ServeMode::Fixed`] the pinned operator is shown alongside what
    /// each shard's planner *would* have picked.
    pub fn explain(&mut self, terms: &[u32], n: usize) -> ServeResult<String> {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== sharded retrieval plan ({} shards, {}) ==",
            self.pool.num_shards(),
            self.pool.spec().describe()
        );
        let pinned = match self.config.mode {
            ServeMode::Fixed(p) => Some(p),
            ServeMode::Planned => None,
        };
        if let Some(p) = pinned {
            let _ = writeln!(
                out,
                "   (operator pinned to {}; planner picks shown for comparison)",
                p.name()
            );
        }
        if let Some(cache) = &self.cache {
            match cache.peek(terms, n) {
                Some(epoch) => {
                    let _ = writeln!(
                        out,
                        "   cache: HIT(epoch={epoch}) — this query would be answered \
                         without touching a worker"
                    );
                }
                None => {
                    let _ = writeln!(out, "   cache: MISS");
                }
            }
        }
        let _ = writeln!(
            out,
            "{:>5}  {:>10}  {:<20}  {:>12}  {:>14}  {:>6}",
            "shard", "postings", "operator", "est. cost", "est. postings", "memo"
        );
        for row in self.pool.explain_rows(terms, n)? {
            let _ = writeln!(
                out,
                "{:>5}  {:>10}  {:<20}  {:>12.0}  {:>14.0}  {:>6}",
                row.shard,
                row.postings,
                row.plan_name,
                row.cost,
                row.est_postings,
                if row.memo_hit { "HIT" } else { "-" },
            );
        }
        let _ = writeln!(
            out,
            "   threshold propagation: {}",
            if self.config.propagate { "on" } else { "off" }
        );
        let _ = writeln!(
            out,
            "   merge: tie-stable k-way over shard-local top-{n} heaps (score desc, doc asc)"
        );
        Ok(out)
    }

    /// The cross-batch result cache, when [`ServeConfig::cache`] enabled
    /// one — its stats, epoch, and capacity are readable here.
    pub fn result_cache(&self) -> Option<&Arc<ResultCache>> {
        self.cache.as_ref()
    }

    /// Flash-invalidate the result cache (O(1) epoch bump; see
    /// [`ResultCache::invalidate_epoch`]) — the hook an index snapshot
    /// swap calls. Returns the new epoch, or `None` when no cache is
    /// configured. In-flight batches admitted under the old epoch will
    /// *not* insert their answers (the epoch stamp refuses them), so a
    /// caller observing the bump can never read a pre-bump answer back
    /// out of the cache.
    pub fn invalidate_epoch(&self) -> Option<u64> {
        self.cache.as_ref().map(|c| c.invalidate_epoch())
    }

    /// The metrics registry behind the session: every pool and session
    /// metric (`serve.*`) publishes through it.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.pool.registry()
    }

    /// Text exposition of every metric, sorted by name (stable,
    /// diffable).
    pub fn metrics_text(&self) -> String {
        self.pool.registry().render_text()
    }

    /// JSON exposition of every metric (hand-rolled; no serializer
    /// dependency).
    pub fn metrics_json(&self) -> String {
        self.pool.registry().render_json()
    }

    /// Recent per-query traces from every shard worker's ring, in shard
    /// order. Empty with [`ServeConfig::telemetry`] off.
    pub fn traces(&self) -> Vec<QueryTrace> {
        self.pool.traces()
    }

    /// Drain the slow-query log: the worst-K queries (by shard wall
    /// time) since the last drain, slowest first, full traces attached.
    pub fn drain_slow_queries(&self) -> Vec<SlowQuery> {
        self.pool.drain_slow_queries()
    }

    /// The pool's structured event history (worker panics, respawns),
    /// oldest first with sequence numbers.
    pub fn events(&self) -> Vec<(u64, PoolEvent)> {
        self.pool.events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_ir::PhysicalPlan;

    use crate::shard::ShardOutcome;

    fn outcome(shard: usize, busy_us: u64) -> ShardOutcome {
        ShardOutcome {
            shard,
            plan: PhysicalPlan::ExhaustiveDaat,
            est_cost: None,
            report: ExecReport::default(),
            busy: Duration::from_micros(busy_us),
            phases: moa_obs::PhaseAgg::new(),
            memo_hit: false,
        }
    }

    fn response(shards: Vec<ShardOutcome>) -> ServeResult<QueryResponse> {
        Ok(QueryResponse {
            top: Vec::new(),
            work: ExecReport::default(),
            partial: false,
            shards,
        })
    }

    #[test]
    fn serve_stats_saturate_instead_of_wrapping() {
        // Mirrors ExecReport::absorb: a session that has served near
        // usize::MAX of anything pins at the maximum rather than
        // wrapping back through small values.
        let mut stats = ServeStats {
            queries_served: usize::MAX - 1,
            queries_partial: usize::MAX,
            postings_scanned: usize::MAX - 2,
            ..ServeStats::default()
        };
        stats.absorb_ok(true, Some(100));
        stats.absorb_ok(true, Some(100));
        assert_eq!(stats.queries_served, usize::MAX);
        assert_eq!(stats.queries_partial, usize::MAX);
        assert_eq!(stats.postings_scanned, usize::MAX);
    }

    #[test]
    fn empty_batch_has_no_critical_path() {
        // An empty batch yields no shard outcomes: there is no
        // measurement, and the old code's Duration::ZERO "busiest shard"
        // read as an impossibly fast one.
        let report = BatchReport {
            responses: Vec::new(),
            wall: Duration::from_micros(5),
        };
        assert!(report.shard_busy().is_empty());
        assert_eq!(report.critical_path(), None);
    }

    #[test]
    fn shard_busy_counts_samples_and_sums_busy_time() {
        let report = BatchReport {
            responses: vec![
                response(vec![outcome(0, 10), outcome(1, 40)]),
                response(vec![outcome(0, 30), outcome(1, 5)]),
            ],
            wall: Duration::from_micros(90),
        };
        let busy = report.shard_busy();
        assert_eq!(busy.len(), 2);
        assert_eq!(busy[0].busy, Duration::from_micros(40));
        assert_eq!(busy[0].samples, 2);
        assert_eq!(busy[1].busy, Duration::from_micros(45));
        assert_eq!(busy[1].samples, 2);
        assert_eq!(report.critical_path(), Some(Duration::from_micros(45)));
    }

    #[test]
    fn unsampled_shards_never_win_the_critical_path() {
        // Shard 1 reported no outcome at all (e.g. every response came
        // from a narrower shard set): its zero total must not be offered
        // as the "busiest" figure, and its sample count exposes the gap.
        let report = BatchReport {
            responses: vec![response(vec![outcome(1, 25)])],
            wall: Duration::from_micros(30),
        };
        let busy = report.shard_busy();
        assert_eq!(busy.len(), 2);
        assert_eq!(busy[0].samples, 0);
        assert_eq!(busy[0].busy, Duration::ZERO);
        assert_eq!(busy[1].samples, 1);
        assert_eq!(report.critical_path(), Some(Duration::from_micros(25)));
    }
}
