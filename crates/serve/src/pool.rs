//! The persistent per-shard worker pool: the serving runtime.
//!
//! [`ShardedEngine::execute_batch`] spawns one scoped thread per shard
//! *per batch*. That is correct but pays thread spawn/join on every
//! submission — on this class of host roughly 100–150µs per thread,
//! several times the cost of serving a typical query — which is exactly
//! the wall-time regression E16 measured (0.44–0.76× sequential at 2–8
//! shards). [`ShardPool`] removes the per-batch setup entirely:
//!
//! * **One long-lived worker thread per shard.** Construction parks each
//!   [`EngineShard`] — its fragmented table, engine set, planner, and
//!   zero-allocation `QueryScratch` arena — in a shared slot owned by its
//!   worker thread for the life of the pool. The arena is reused across
//!   every query of every batch of the stream; steady-state submissions
//!   allocate only the per-batch bookkeeping (queries, gates, result
//!   columns), never per-posting or per-candidate state.
//! * **Bounded admission.** Every worker queue carries a
//!   [`QueueGauge`] bounded at [`PoolConfig::queue_depth`];
//!   [`ShardPool::submit`] admits under an [`AdmissionPolicy`] — block
//!   for room (backpressure), shed with [`ServeError::Shed`], or admit
//!   only into idle workers. A saturated pool can no longer grow its
//!   queues (and its memory) without limit; E19 drives this at multiples
//!   of calibrated capacity and gates on the recorded high-water marks.
//! * **Per-query deadlines.** With [`PoolConfig::deadline`] set, every
//!   distinct query is admitted with one `moa_ir` `DeadlineGate` shared
//!   by all shards (queueing time counts against the budget). An expired
//!   query comes back `Ok` with `partial == true`: an exact prefix of
//!   the ranking plus honest work counters, not an error — see
//!   `moa_ir::deadline` for the soundness argument.
//! * **Worker fault isolation.** Each query executes under
//!   `catch_unwind`: a panic fails *that position* with
//!   [`ServeError::ShardFailed`] (the shard's execution scratch is
//!   recovered via its epoch accumulators) and the worker keeps serving.
//!   A worker thread that dies outright (see [`WorkerFault::Crash`])
//!   loses only the jobs on its queue — tickets synthesize
//!   `ShardFailed` columns for them — and the next submission respawns
//!   the worker over the *retained* shard slot: index, planner
//!   calibration, and arena survive the crash. Respawns and captured
//!   panic payloads are observable ([`ShardPool::respawns`],
//!   [`ShardPool::panic_log`]).
//! * **Admission-time request coalescing.** Queries with identical
//!   `(terms, n)` inside one admitted batch execute **once**; the ticket
//!   fans the shared answer out to every duplicate position at
//!   collection. A top-N response is a pure function of the index, model,
//!   and query, so coalescing is answer-preserving by construction — and
//!   under the Zipf-skewed popularity real query streams exhibit (the
//!   paper's "millions of users" regime), the hottest query alone is a
//!   double-digit percentage of traffic, making coalescing the single
//!   biggest throughput lever the admission queue owns.
//! * **Query-lifecycle telemetry.** The pool owns (or is handed) a
//!   [`MetricsRegistry`]: admission counters (batches, admitted,
//!   coalesced, shed), per-shard queue-depth gauges with high-water
//!   marks, query and queue-wait latency histograms, and worker
//!   panic/respawn counters all publish through it. Each worker keeps a
//!   preallocated [`moa_obs::TraceRing`] of recent [`QueryTrace`]s —
//!   per-stage spans fed by the engine's phase clocks — and offers every
//!   query to a shared worst-K [`moa_obs::SlowLog`]. Recording is slot
//!   writes, relaxed atomics, and (for a rejected slow-log offer) one
//!   integer compare, so the steady-state hot path stays
//!   allocation-free; rare structured occurrences (panics, respawns) go
//!   to a bounded [`moa_obs::EventLog`] of [`PoolEvent`]s, which
//!   replaces the ad-hoc panic `Vec` earlier revisions kept.
//! * **Identical answers.** Workers run the same
//!   [`EngineShard::run_one`](crate::shard::EngineShard) column loop and
//!   the ticket folds columns with the same tie-stable
//!   [`merge_columns`] as the scoped and sequential paths, under the same
//!   per-query [`BoundGate`]s — so pooled responses are bit-identical to
//!   both, and (for exact plans) to a single unsharded engine. The
//!   `pool_oracle` differential test pins this across plans × models ×
//!   shard counts × propagation.
//! * **Drain on shutdown.** `mpsc` receivers keep yielding buffered
//!   messages after every sender is dropped, so [`ShardPool::shutdown`]
//!   (drop all job senders, then join) lets each worker finish every job
//!   already queued before it observes disconnect. Shutdown never
//!   panics: workers that died are reported as [`ShardPanic`]s on the
//!   returned [`PoolShutdown`], and every [`EngineShard`] — including a
//!   dead worker's — is recovered from its slot, scratch arenas
//!   included.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use moa_ir::{BoundGate, DeadlineGate, InvertedIndex, RankingModel, ScoreKernel};
use moa_obs::{
    Counter, EventLog, Histogram, MetricsRegistry, Phase, QueryTrace, SlowLog, TraceRing,
};
use parking_lot::Mutex;

use crate::admission::{AdmissionPolicy, QueueGauge};
use crate::fault::{panic_message, ServeError, ServeResult, ShardPanic, WorkerFault};
use crate::shard::{
    gates, merge_columns, BatchQuery, EngineShard, QueryResponse, ServeMode, ShardColumn,
    ShardSpec, ShardedEngine,
};

/// How long a blocked (backpressured) admission waits between queue
/// re-checks; bounded so a worker that dies mid-wait is noticed and
/// respawned instead of deadlocking the submitter.
const BLOCK_RECHECK: Duration = Duration::from_millis(10);

/// Pool runtime configuration: the overload posture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Per-worker queue bound: admitted-but-unfinished batch jobs
    /// (clamped ≥ 1). Queue memory is `O(queue_depth × batch size)` by
    /// construction.
    pub queue_depth: usize,
    /// Per-query deadline budget, applied at admission (queueing time
    /// counts against it). `None` disables deadlines entirely — gates
    /// carry no deadline and the evaluation loops skip even the poll.
    pub deadline: Option<Duration>,
    /// Capture per-query traces and slow-log entries on the workers.
    /// Registry counters, gauges, and histograms are always live (a few
    /// relaxed atomic ops per query); this switch covers the trace-ring
    /// writes and slow-log offers — the parts behind a (worker-local,
    /// uncontended) mutex. E20 measures the difference.
    pub telemetry: bool,
    /// Per-worker trace ring capacity: the most recent query traces each
    /// worker retains (preallocated at spawn; zero disables capture).
    pub trace_ring: usize,
    /// Pool-wide slow-query log capacity: the worst-K queries by shard
    /// wall time, full traces attached (zero disables the log).
    pub slow_log: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            queue_depth: 64,
            deadline: None,
            telemetry: true,
            trace_ring: 128,
            slow_log: 16,
        }
    }
}

/// Retained structured-event history (panics, respawns). Events are rare
/// — a full log means hundreds of worker deaths — so a modest bound
/// keeps memory fixed without losing anything a live deployment would
/// still care about.
const EVENT_LOG_CAP: usize = 256;

/// A rare, structured pool occurrence, retained (with a sequence
/// number) in the pool's bounded [`moa_obs::EventLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolEvent {
    /// A worker thread died; its captured panic payload (or a note that
    /// it exited without one).
    WorkerPanic {
        /// The shard whose worker died.
        shard: usize,
        /// The panic message (or anomaly note).
        message: String,
    },
    /// A worker was respawned over its retained shard slot.
    WorkerRespawn {
        /// The shard respawned.
        shard: usize,
        /// Wall-clock cost of the respawn (join + thread spawn).
        wall: Duration,
    },
}

/// One retained slow-query record: the query, what ran, and the full
/// per-stage trace. Built lazily — only when the query's wall time beats
/// the slow log's admission threshold (see [`moa_obs::SlowLog`]), so
/// steady-state fast queries never pay the clones here.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowQuery {
    /// The shard that executed it.
    pub shard: usize,
    /// The query's terms.
    pub terms: Vec<u32>,
    /// Ranking depth.
    pub n: usize,
    /// Stable name of the physical plan that ran.
    pub plan: &'static str,
    /// The shard planner's cost estimate (`None` under a pinned plan).
    pub est_cost: Option<f64>,
    /// Shard wall time (the slow log's retention key).
    pub wall: Duration,
    /// Whether a deadline cut the execution short.
    pub partial: bool,
    /// The full per-stage trace (queue wait, plan, engine stages).
    pub trace: QueryTrace,
}

/// The telemetry bundle one worker records into, shared between the
/// worker thread and the pool (which drains it). Counter/histogram
/// handles come from the pool's registry — every worker shares the same
/// named metrics; the trace ring is worker-local.
struct WorkerTelemetry {
    /// Trace-ring and slow-log capture on or off (metrics always record).
    enabled: bool,
    /// `serve.shard_queries`: per-shard query executions (Ok outcomes).
    queries: Arc<Counter>,
    /// `serve.shard_partial`: executions a deadline cut short.
    partials: Arc<Counter>,
    /// `serve.plan_memo_hits`: planned executions whose decision came
    /// from the shard planner's plan memo instead of a full alternative
    /// walk.
    memo_hits: Arc<Counter>,
    /// `serve.query_ns`: per-shard query wall time.
    query_ns: Arc<Histogram>,
    /// `serve.queue_wait_ns`: admission-to-pickup wait per batch job.
    queue_wait_ns: Arc<Histogram>,
    /// Recent query traces (preallocated; worker-local, so the mutex is
    /// uncontended except against a drain).
    ring: Mutex<TraceRing>,
    /// The pool-wide worst-K slow-query log.
    slow: Arc<SlowLog<SlowQuery>>,
}

/// Pool-level admission counters, registered once at construction.
struct PoolCounters {
    /// `serve.batches`: batches admitted.
    batches: Arc<Counter>,
    /// `serve.queries_admitted`: queries admitted (before coalescing).
    admitted: Arc<Counter>,
    /// `serve.queries_coalesced`: positions answered by a batch-mate.
    coalesced: Arc<Counter>,
    /// `serve.shed`: queries refused at admission.
    shed: Arc<Counter>,
    /// `serve.worker_respawns`: workers respawned after a crash.
    respawns: Arc<Counter>,
    /// `serve.worker_panics`: panic payloads captured from dead workers.
    panics: Arc<Counter>,
}

/// What [`ShardPool::shutdown`] hands back: every shard (planners
/// calibrated by the stream, scratch arenas carrying their lifetime
/// query counts) plus the full panic history — both workers healed
/// mid-stream and workers found dead at teardown. Teardown itself never
/// panics.
#[must_use = "shutdown hands back the shards and the panic history"]
pub struct PoolShutdown {
    /// The engine shards, in shard order — recovered from their slots
    /// even when their worker died.
    pub shards: Vec<EngineShard>,
    /// Every worker panic the pool observed, in the order captured.
    pub panics: Vec<ShardPanic>,
}

impl PoolShutdown {
    /// Whether no worker ever panicked.
    pub fn is_clean(&self) -> bool {
        self.panics.is_empty()
    }

    /// Take just the shards (asserting nothing about panics).
    pub fn into_shards(self) -> Vec<EngineShard> {
        self.shards
    }
}

/// One priced EXPLAIN row, computed on the owning worker.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRow {
    /// The shard.
    pub shard: usize,
    /// Shard-resident posting volume.
    pub postings: usize,
    /// The operator this shard's planner picks for the query.
    pub plan_name: &'static str,
    /// The planner's cost estimate for that operator.
    pub cost: f64,
    /// The planner's posting-volume estimate for that operator.
    pub est_postings: f64,
    /// Whether the shard planner's plan memo answered the pricing (a
    /// repeated df-band query class; the alternatives were not
    /// re-walked).
    pub memo_hit: bool,
}

/// A unit of work on a worker's queue.
enum Job {
    /// Run the whole batch column and send it to the ticket.
    Batch(Arc<BatchJob>),
    /// Price one query on this shard (EXPLAIN; executes nothing).
    Explain {
        terms: Vec<u32>,
        n: usize,
        reply: Sender<ServeResult<ExplainRow>>,
    },
    /// Adjust the worker's fault state (tests and the E19 resilience
    /// harness). Rides the ordinary queue: takes effect in admission
    /// order, costs no gauge slot.
    Fault(WorkerFault),
}

/// One admitted batch, shared by every worker. The gates are built once
/// at admission so all shards prune against the same per-query
/// [`moa_ir::SharedThreshold`]s (and, with deadlines on, poll the same
/// per-query [`DeadlineGate`]s).
struct BatchJob {
    queries: Arc<[BatchQuery]>,
    mode: ServeMode,
    gates: Vec<BoundGate>,
    /// Monotone batch sequence number, tagged into every trace the batch
    /// produces.
    seq: u64,
    /// When the batch was admitted; the gap to worker pickup is the
    /// queue-wait span.
    admitted: Instant,
    /// Tagged with the worker's shard id so the ticket can order columns
    /// regardless of completion order.
    done: Sender<(usize, ShardColumn)>,
}

/// The shared slot a worker's [`EngineShard`] lives in. The worker locks
/// it per job; the pool takes the shard back out at shutdown — or leaves
/// it in place across a respawn, which is what makes crash recovery
/// O(1): no index rebuild, no planner reset.
type ShardSlot = Arc<Mutex<Option<EngineShard>>>;

struct Worker {
    /// The shard this worker serves (== its index in the pool).
    id: usize,
    tx: Sender<Job>,
    handle: JoinHandle<()>,
    slot: ShardSlot,
    gauge: Arc<QueueGauge>,
    /// Shared with the worker thread; survives respawns (the replacement
    /// thread keeps recording into the same ring and counters).
    tele: Arc<WorkerTelemetry>,
}

fn spawn_worker(
    id: usize,
    slot: ShardSlot,
    rx: Receiver<Job>,
    gauge: Arc<QueueGauge>,
    tele: Arc<WorkerTelemetry>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("moa-shard-{id}"))
        .spawn(move || worker_loop(id, slot, rx, gauge, tele))
        .expect("spawning a shard worker thread")
}

/// Execute one query under the per-query panic guard. A panic — from the
/// engine or from an armed poison term — fails only this position: the
/// shard's execution scratch is recovered (epoch-bump retire, O(1)) and
/// the worker moves on to the next query.
fn run_guarded(
    shard: &mut EngineShard,
    id: usize,
    q: &BatchQuery,
    mode: ServeMode,
    gate: &BoundGate,
    poison: Option<u32>,
) -> ServeResult<crate::shard::ShardOutcome> {
    let poisoned = poison.is_some_and(|t| q.terms.contains(&t));
    match catch_unwind(AssertUnwindSafe(|| {
        if poisoned {
            panic!("injected poison term in query");
        }
        shard.run_one(q, mode, gate)
    })) {
        Ok(Ok(outcome)) => Ok(outcome),
        Ok(Err(e)) => Err(ServeError::Engine(e)),
        Err(payload) => {
            shard.recover();
            Err(ServeError::ShardFailed {
                shard: id,
                panic: panic_message(payload.as_ref()),
            })
        }
    }
}

/// The worker thread body: serve jobs until every sender is gone. The
/// `mpsc` disconnect contract (buffered jobs drain before `recv` errors)
/// is the pool's whole shutdown story. The shard stays in its slot at
/// all times — in particular it is still there if this thread dies, so
/// the respawn path and teardown can always recover it.
fn worker_loop(
    id: usize,
    slot: ShardSlot,
    rx: Receiver<Job>,
    gauge: Arc<QueueGauge>,
    tele: Arc<WorkerTelemetry>,
) {
    // Worker-local fault state; an armed poison term panics inside the
    // per-query guard. A respawned worker starts disarmed.
    let mut poison: Option<u32> = None;
    while let Ok(job) = rx.recv() {
        match job {
            Job::Batch(job) => {
                // Queue wait: admission to the moment this worker picked
                // the job up. One clock read per batch job, not per query.
                let wait_ns = job.admitted.elapsed().as_nanos() as u64;
                tele.queue_wait_ns.record(wait_ns);
                let column: ShardColumn = {
                    let mut guard = slot.lock();
                    let shard = guard
                        .as_mut()
                        .expect("the slot holds the shard while its worker serves");
                    job.queries
                        .iter()
                        .enumerate()
                        .map(|(qi, q)| run_guarded(shard, id, q, job.mode, &job.gates[qi], poison))
                        .collect()
                };
                // Account the column: counters are relaxed atomics, a
                // trace is a ring-slot write of a `Copy` value, and a
                // rejected slow-log offer is one integer compare —
                // nothing here allocates in steady state.
                for (qi, r) in column.iter().enumerate() {
                    let Ok(o) = r else { continue };
                    tele.queries.incr();
                    let wall_ns = o.busy.as_nanos() as u64;
                    tele.query_ns.record(wall_ns);
                    if o.report.partial {
                        tele.partials.incr();
                    }
                    if o.memo_hit {
                        tele.memo_hits.incr();
                    }
                    if tele.enabled {
                        let mut trace = QueryTrace::new(job.seq, qi as u32, id as u32);
                        trace.plan = o.plan.name();
                        trace.wall_ns = wall_ns;
                        trace.partial = o.report.partial;
                        trace.push(Phase::QueueWait, wait_ns);
                        trace.push_phases(&o.phases);
                        tele.ring.lock().record(trace);
                        tele.slow.offer_with(wall_ns, || SlowQuery {
                            shard: id,
                            terms: job.queries[qi].terms.clone(),
                            n: job.queries[qi].n,
                            plan: o.plan.name(),
                            est_cost: o.est_cost,
                            wall: o.busy,
                            partial: o.report.partial,
                            trace,
                        });
                    }
                }
                // Release *before* delivering: a caller that has
                // collected every column can rely on the slots already
                // being free (an idle-only resubmission right after a
                // collect must not race the release).
                gauge.release();
                // The ticket may have been dropped (caller abandoned the
                // batch); the work is done either way.
                let _ = job.done.send((id, column));
            }
            Job::Explain { terms, n, reply } => {
                let row = {
                    let mut guard = slot.lock();
                    let shard = guard
                        .as_mut()
                        .expect("the slot holds the shard while its worker serves");
                    shard
                        .plan_memoized(&terms, n)
                        .map(|(decision, memo_hit)| {
                            let chosen = decision.chosen_alternative();
                            ExplainRow {
                                shard: id,
                                postings: shard.num_postings(),
                                plan_name: chosen.plan.name(),
                                cost: chosen.cost,
                                est_postings: chosen.est_postings,
                                memo_hit,
                            }
                        })
                        .map_err(ServeError::Engine)
                };
                let _ = reply.send(row);
            }
            Job::Fault(fault) => match fault {
                WorkerFault::PoisonTerm(t) => poison = Some(t),
                WorkerFault::ClearPoison => poison = None,
                // Outside the per-query guard: the thread dies with its
                // queue, exercising ticket synthesis and respawn.
                WorkerFault::Crash => panic!("injected worker crash"),
                WorkerFault::Stall(d) => std::thread::sleep(d),
            },
        }
    }
}

/// A column of [`ServeError::ShardFailed`] standing in for a worker that
/// died before answering: its queued jobs vanished with its channel, and
/// the ticket owes every position an answer.
fn lost_column(shard: usize, len: usize) -> ShardColumn {
    (0..len)
        .map(|_| {
            Err(ServeError::ShardFailed {
                shard,
                panic: "worker terminated before answering".to_string(),
            })
        })
        .collect()
}

/// An in-flight batch: redeem it with [`BatchTicket::wait`] for merged
/// per-query results, or [`BatchTicket::wait_columns`] to take the raw
/// per-shard columns and defer the merge off the service critical path
/// (submit the next batch first, then merge — the overlap the E18 pool
/// driver uses). Waiting never fails and never deadlocks: a worker that
/// died mid-batch yields a synthesized [`ServeError::ShardFailed`]
/// column instead of a hang.
#[must_use = "an unredeemed ticket discards the batch's responses"]
pub struct BatchTicket {
    /// The *distinct* queries dispatched to the workers (admission
    /// coalescing already applied), in first-occurrence order.
    queries: Arc<[BatchQuery]>,
    /// Maps each admitted query position to its distinct query's index:
    /// `expand[i]` is the entry of `queries` that answers position `i`.
    expand: Vec<usize>,
    rx: Receiver<(usize, ShardColumn)>,
    num_shards: usize,
}

impl BatchTicket {
    /// Number of queries admitted (before coalescing): the number of
    /// responses [`BatchTicket::wait`] will return.
    pub fn len(&self) -> usize {
        self.expand.len()
    }

    /// Whether the admitted batch was empty.
    pub fn is_empty(&self) -> bool {
        self.expand.is_empty()
    }

    /// The distinct queries actually dispatched to the workers, in
    /// first-occurrence order (duplicates coalesced at admission).
    pub fn queries(&self) -> &Arc<[BatchQuery]> {
        &self.queries
    }

    /// How many admitted queries will be answered by another position's
    /// execution (`len() - queries().len()`).
    pub fn coalesced(&self) -> usize {
        self.expand.len() - self.queries.len()
    }

    /// The coalescing map: `expansion()[i]` is the index into
    /// [`BatchTicket::queries`] whose execution answers admitted position
    /// `i`. Distinct indices are assigned in first-occurrence order, so
    /// position `i` is a first occurrence iff `expansion()[i]` equals the
    /// count of distinct indices seen before it.
    pub fn expansion(&self) -> &[usize] {
        &self.expand
    }

    /// Block until every live shard's column has arrived and return the
    /// columns in shard order, alongside the *distinct* queries they
    /// answer (one column entry per distinct query, not per admitted
    /// position; [`BatchTicket::wait`] re-expands). A shard whose worker
    /// died before answering yields a synthesized all-
    /// [`ServeError::ShardFailed`] column — the dead worker's queued job
    /// dropped its reply sender with the channel, so the disconnect is
    /// observed, not waited out.
    pub fn wait_columns(self) -> (Arc<[BatchQuery]>, Vec<ShardColumn>) {
        let mut columns: Vec<Option<ShardColumn>> = (0..self.num_shards).map(|_| None).collect();
        let mut received = 0usize;
        while received < self.num_shards {
            match self.rx.recv() {
                Ok((shard, column)) => {
                    if columns[shard].replace(column).is_none() {
                        received += 1;
                    }
                }
                // Every sender is gone: the workers that were going to
                // answer have answered; the rest are dead.
                Err(_) => break,
            }
        }
        let len = self.queries.len();
        let columns = columns
            .into_iter()
            .enumerate()
            .map(|(shard, c)| c.unwrap_or_else(|| lost_column(shard, len)))
            .collect();
        (self.queries, columns)
    }

    /// Block until every live shard has finished, fold the columns with
    /// the tie-stable k-way merge, and fan coalesced answers back out:
    /// one result per *admitted* query, in submission order. A duplicate
    /// position's result clones its distinct query's execution — top-N,
    /// work counters, and per-shard outcomes included — because that
    /// execution is what answered it. Per-query failures (engine errors,
    /// shard panics) surface as that position's `Err`; the call itself
    /// cannot fail.
    pub fn wait(mut self) -> Vec<ServeResult<QueryResponse>> {
        let expand = std::mem::take(&mut self.expand);
        let (queries, columns) = self.wait_columns();
        let distinct = merge_columns(&queries, columns);
        if distinct.len() == expand.len() {
            // No duplicates: the expansion is the identity.
            return distinct;
        }
        expand.into_iter().map(|u| distinct[u].clone()).collect()
    }
}

/// The persistent per-shard worker pool. See the module docs.
pub struct ShardPool {
    workers: Vec<Worker>,
    spec: ShardSpec,
    index: Arc<InvertedIndex>,
    kernel: Arc<ScoreKernel>,
    config: PoolConfig,
    /// Every metric the pool publishes; shared with the serving session
    /// (which adds its merge/delivery spans to the same registry).
    registry: Arc<MetricsRegistry>,
    /// Bounded structured history of rare occurrences (panics, respawns).
    events: Arc<EventLog<PoolEvent>>,
    /// The pool-wide worst-K slow-query log, fed by every worker.
    slow: Arc<SlowLog<SlowQuery>>,
    /// Pool-level admission counters (registry handles).
    counters: PoolCounters,
    /// Wall-clock cost of each respawn (join + thread spawn).
    recoveries: Vec<Duration>,
    /// Monotone batch sequence, tagged into traces.
    batch_seq: u64,
}

impl ShardPool {
    /// Stand the pool up from a built engine with the default
    /// [`PoolConfig`] (queue depth 64, no deadline, telemetry on).
    pub fn new(engine: ShardedEngine) -> ShardPool {
        ShardPool::with_config(engine, PoolConfig::default())
    }

    /// Stand the pool up from a built engine with a fresh private
    /// metrics registry. See [`ShardPool::with_config_and_registry`].
    pub fn with_config(engine: ShardedEngine, config: PoolConfig) -> ShardPool {
        ShardPool::with_config_and_registry(engine, config, Arc::new(MetricsRegistry::new()))
    }

    /// Stand the pool up from a built engine: every shard is parked in a
    /// retained slot and served by its own long-lived worker thread,
    /// with admission bounded per `config`. All pool metrics register in
    /// `registry` (per-shard queue-depth gauges as
    /// `serve.queue_depth.shard<i>`; counters and latency histograms
    /// under `serve.*`), so a caller can hand in a shared registry and
    /// read one exposition for the whole stack.
    pub fn with_config_and_registry(
        engine: ShardedEngine,
        config: PoolConfig,
        registry: Arc<MetricsRegistry>,
    ) -> ShardPool {
        let (shards, spec, index, kernel) = engine.into_parts();
        let slow = Arc::new(SlowLog::with_capacity(config.slow_log));
        let events = Arc::new(EventLog::with_capacity(EVENT_LOG_CAP));
        let counters = PoolCounters {
            batches: registry.counter("serve.batches"),
            admitted: registry.counter("serve.queries_admitted"),
            coalesced: registry.counter("serve.queries_coalesced"),
            shed: registry.counter("serve.shed"),
            respawns: registry.counter("serve.worker_respawns"),
            panics: registry.counter("serve.worker_panics"),
        };
        let workers = shards
            .into_iter()
            .map(|shard| {
                let id = shard.id();
                let slot: ShardSlot = Arc::new(Mutex::new(Some(shard)));
                let gauge = Arc::new(QueueGauge::with_metric(
                    config.queue_depth,
                    registry.gauge(&format!("serve.queue_depth.shard{id}")),
                ));
                let tele = Arc::new(WorkerTelemetry {
                    enabled: config.telemetry,
                    queries: registry.counter("serve.shard_queries"),
                    partials: registry.counter("serve.shard_partial"),
                    memo_hits: registry.counter("serve.plan_memo_hits"),
                    query_ns: registry.histogram("serve.query_ns"),
                    queue_wait_ns: registry.histogram("serve.queue_wait_ns"),
                    ring: Mutex::new(TraceRing::with_capacity(config.trace_ring)),
                    slow: Arc::clone(&slow),
                });
                let (tx, rx) = channel();
                let handle = spawn_worker(
                    id,
                    Arc::clone(&slot),
                    rx,
                    Arc::clone(&gauge),
                    Arc::clone(&tele),
                );
                Worker {
                    id,
                    tx,
                    handle,
                    slot,
                    gauge,
                    tele,
                }
            })
            .collect();
        ShardPool {
            workers,
            spec,
            index,
            kernel,
            config,
            registry,
            events,
            slow,
            counters,
            recoveries: Vec::new(),
            batch_seq: 0,
        }
    }

    /// Number of shards (= worker threads).
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// The partitioning in force.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The unsharded source index.
    pub fn index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// The ranking model every shard scores with.
    pub fn model(&self) -> RankingModel {
        self.kernel.model()
    }

    /// The runtime configuration in force.
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// The per-worker queue bound actually enforced (the configured
    /// depth, clamped ≥ 1).
    pub fn queue_bound(&self) -> usize {
        self.workers.first().map_or(1, |w| w.gauge.bound())
    }

    /// The deepest any worker queue has ever been — never exceeds
    /// [`ShardPool::queue_bound`]; the ceiling E19 gates on.
    pub fn queue_high_water(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.gauge.high_water())
            .max()
            .unwrap_or(0)
    }

    /// Current per-worker queue depths (admitted, unfinished jobs), in
    /// shard order.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.workers.iter().map(|w| w.gauge.depth()).collect()
    }

    /// Workers respawned over their retained shard after a crash (read
    /// off the `serve.worker_respawns` registry counter).
    pub fn respawns(&self) -> usize {
        self.counters.respawns.get() as usize
    }

    /// Wall-clock cost of each respawn, in the order they happened.
    pub fn recoveries(&self) -> &[Duration] {
        &self.recoveries
    }

    /// Every worker panic captured so far, derived from the structured
    /// event log (shutdown appends any found at teardown and reports the
    /// full history on [`PoolShutdown`]).
    pub fn panic_log(&self) -> Vec<ShardPanic> {
        self.events
            .snapshot()
            .into_iter()
            .filter_map(|(_, e)| match e {
                PoolEvent::WorkerPanic { shard, message } => Some(ShardPanic { shard, message }),
                PoolEvent::WorkerRespawn { .. } => None,
            })
            .collect()
    }

    /// The registry every pool metric publishes through.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The retained structured events (panics, respawns) with their
    /// sequence numbers, oldest first.
    pub fn events(&self) -> Vec<(u64, PoolEvent)> {
        self.events.snapshot()
    }

    /// Recent query traces from every worker's ring, in shard order
    /// (each worker's slice oldest first). Empty when
    /// [`PoolConfig::telemetry`] is off or the rings have zero capacity.
    pub fn traces(&self) -> Vec<QueryTrace> {
        self.workers
            .iter()
            .flat_map(|w| w.tele.ring.lock().snapshot())
            .collect()
    }

    /// Drain the slow-query log: the worst-K queries by shard wall time
    /// observed since the last drain, slowest first.
    pub fn drain_slow_queries(&self) -> Vec<SlowQuery> {
        self.slow
            .drain_sorted()
            .into_iter()
            .map(|(_, q)| q)
            .collect()
    }

    /// Respawn every dead worker over its retained shard; returns how
    /// many were respawned. Submission paths call this automatically;
    /// it is public so a harness can measure recovery without
    /// submitting.
    pub fn heal(&mut self) -> usize {
        (0..self.workers.len())
            .filter(|&i| self.heal_worker(i))
            .count()
    }

    /// If worker `i` is dead: capture its panic, reset its gauge (its
    /// queued jobs died with its channel), and respawn it over the
    /// retained shard slot. Returns whether a respawn happened.
    fn heal_worker(&mut self, i: usize) -> bool {
        if !self.workers[i].handle.is_finished() {
            return false;
        }
        self.respawn_worker(i);
        true
    }

    /// Unconditionally respawn worker `i` over its retained shard,
    /// joining the old thread (which may still be unwinding — a failed
    /// send proves its receiver is gone before `is_finished` turns true)
    /// and capturing its panic payload.
    fn respawn_worker(&mut self, i: usize) {
        let t0 = Instant::now();
        let w = &mut self.workers[i];
        w.gauge.reset();
        let (tx, rx) = channel();
        let handle = spawn_worker(
            w.id,
            Arc::clone(&w.slot),
            rx,
            Arc::clone(&w.gauge),
            Arc::clone(&w.tele),
        );
        drop(std::mem::replace(&mut w.tx, tx));
        let dead = std::mem::replace(&mut w.handle, handle);
        let id = w.id;
        let message = match dead.join() {
            // A worker only exits cleanly on channel disconnect, which
            // cannot happen while the pool holds its sender; record the
            // anomaly as a panic-free death.
            Ok(()) => "worker exited without a panic payload".to_string(),
            Err(payload) => panic_message(payload.as_ref()),
        };
        self.counters.panics.incr();
        self.events
            .record(PoolEvent::WorkerPanic { shard: id, message });
        let wall = t0.elapsed();
        self.counters.respawns.incr();
        self.events
            .record(PoolEvent::WorkerRespawn { shard: id, wall });
        self.recoveries.push(wall);
    }

    /// Acquire one gauge slot per worker under `policy`. On refusal,
    /// roll back every slot already acquired and report the refusing
    /// shard.
    fn admit(&mut self, policy: AdmissionPolicy) -> ServeResult<()> {
        for i in 0..self.workers.len() {
            let refused = match policy {
                AdmissionPolicy::Block => {
                    loop {
                        if self.workers[i].gauge.try_acquire().is_ok() {
                            break;
                        }
                        // A worker that died mid-wait would never drain
                        // its queue: notice and respawn instead of
                        // blocking forever.
                        if self.workers[i].handle.is_finished() {
                            self.heal_worker(i);
                            continue;
                        }
                        self.workers[i].gauge.wait_for_room(BLOCK_RECHECK);
                    }
                    None
                }
                AdmissionPolicy::Shed => self.workers[i].gauge.try_acquire().err(),
                AdmissionPolicy::TryNow => self.workers[i].gauge.try_acquire_idle().err(),
            };
            if let Some(depth) = refused {
                for w in &self.workers[..i] {
                    w.gauge.release();
                }
                return Err(ServeError::Shed {
                    shard: self.workers[i].id,
                    depth,
                    bound: self.workers[i].gauge.bound(),
                });
            }
        }
        Ok(())
    }

    /// One gate per distinct query: shared thresholds under propagation,
    /// plus one [`DeadlineGate`] per query when the pool runs with a
    /// deadline budget. The gate is shared by every shard, so the query
    /// has *one* budget, not one per shard — and it starts at admission,
    /// so queueing time counts against it.
    fn build_gates(&self, queries: &[BatchQuery], propagate: bool) -> Vec<BoundGate> {
        // With one shard there is no peer to propagate to or from.
        let gs = gates(queries, propagate && self.workers.len() > 1);
        match self.config.deadline {
            None => gs,
            Some(budget) => gs
                .into_iter()
                .map(|g| g.with_deadline(Arc::new(DeadlineGate::after(budget))))
                .collect(),
        }
    }

    /// Send a job to worker `i`, respawning and re-sending if its thread
    /// died since the last heal (e.g. a queued [`WorkerFault::Crash`]
    /// ran). `counted` marks jobs that hold a gauge slot: the respawn
    /// resets the gauge, so the slot is re-acquired before the re-send.
    fn send_job(&mut self, i: usize, job: Job, counted: bool) {
        if let Err(send_err) = self.workers[i].tx.send(job) {
            // The failed send proves the receiver is gone even if the
            // thread is still unwinding: respawn unconditionally.
            self.respawn_worker(i);
            if counted {
                self.workers[i]
                    .gauge
                    .try_acquire()
                    .expect("a freshly respawned worker's queue is empty");
            }
            self.workers[i]
                .tx
                .send(send_err.0)
                .expect("a freshly spawned worker holds its receiver");
        }
    }

    /// Admit a batch: heal any dead workers, acquire one bounded queue
    /// slot per worker under `policy`, coalesce duplicate queries, build
    /// the per-query gates (thresholds, and deadlines when configured),
    /// enqueue the job on every worker, and return a [`BatchTicket`]
    /// without waiting. Workers run their columns concurrently; with
    /// `propagate`, shards prune against each other's running thresholds
    /// exactly as the scoped path does.
    ///
    /// Refusal is all-or-nothing: [`ServeError::Shed`] means *no* worker
    /// received the batch (acquired slots are rolled back), so a shed
    /// batch can be retried verbatim.
    ///
    /// Coalescing: positions with identical `(terms, n)` dispatch **one**
    /// execution; [`BatchTicket::wait`] clones the shared answer back
    /// into every duplicate position. Answers are bit-identical to
    /// executing each position individually — a top-N response is a pure
    /// function of index, model, and query — and under Zipf-skewed
    /// streams the saved executions are the pool's dominant throughput
    /// win (see E18).
    pub fn submit(
        &mut self,
        queries: &[BatchQuery],
        mode: ServeMode,
        propagate: bool,
        policy: AdmissionPolicy,
    ) -> ServeResult<BatchTicket> {
        self.heal();
        if let Err(e) = self.admit(policy) {
            // Refusal is all-or-nothing: every query of the batch shed.
            self.counters.shed.add(queries.len() as u64);
            return Err(e);
        }
        let mut first: HashMap<(&[u32], usize), usize> = HashMap::with_capacity(queries.len());
        let mut distinct: Vec<BatchQuery> = Vec::with_capacity(queries.len());
        let mut expand: Vec<usize> = Vec::with_capacity(queries.len());
        for q in queries {
            let next = distinct.len();
            let slot = *first.entry((q.terms.as_slice(), q.n)).or_insert(next);
            if slot == next {
                distinct.push(q.clone());
            }
            expand.push(slot);
        }
        let queries: Arc<[BatchQuery]> = distinct.into();
        self.counters.batches.incr();
        self.counters.admitted.add(expand.len() as u64);
        self.counters
            .coalesced
            .add((expand.len() - queries.len()) as u64);
        let seq = self.batch_seq;
        self.batch_seq += 1;
        let gates = self.build_gates(&queries, propagate);
        let (done, rx) = channel();
        let job = Arc::new(BatchJob {
            queries: Arc::clone(&queries),
            mode,
            gates,
            seq,
            admitted: Instant::now(),
            done,
        });
        for i in 0..self.workers.len() {
            self.send_job(i, Job::Batch(Arc::clone(&job)), true);
        }
        Ok(BatchTicket {
            queries,
            expand,
            rx,
            num_shards: self.workers.len(),
        })
    }

    /// The profiling twin of [`ShardPool::submit`]: workers run one at a
    /// time in shard order (each finishes its whole column before the
    /// next starts), so with propagation the thresholds published by
    /// earlier shards reach later shards deterministically and per-shard
    /// busy times are reproducible — the same schedule as
    /// [`ShardedEngine::execute_batch_sequential`], on the workers'
    /// threads. No admission coalescing: every position executes, which
    /// is what makes this the per-position bit-identity reference for
    /// [`ShardPool::submit`]'s coalesced fan-out. Admission blocks for
    /// queue room (the submitter waits for each column anyway).
    pub fn submit_sequential(
        &mut self,
        queries: &[BatchQuery],
        mode: ServeMode,
        propagate: bool,
    ) -> Vec<ServeResult<QueryResponse>> {
        self.heal();
        let queries: Arc<[BatchQuery]> = queries.into();
        self.counters.batches.incr();
        self.counters.admitted.add(queries.len() as u64);
        let seq = self.batch_seq;
        self.batch_seq += 1;
        let gates = self.build_gates(&queries, propagate);
        let mut columns: Vec<ShardColumn> = Vec::with_capacity(self.workers.len());
        for i in 0..self.workers.len() {
            loop {
                if self.workers[i].gauge.try_acquire().is_ok() {
                    break;
                }
                if self.workers[i].handle.is_finished() {
                    self.heal_worker(i);
                    continue;
                }
                self.workers[i].gauge.wait_for_room(BLOCK_RECHECK);
            }
            let (done, rx) = channel();
            let job = Arc::new(BatchJob {
                queries: Arc::clone(&queries),
                mode,
                // Gate clones share the underlying thresholds: later
                // shards see what earlier shards published.
                gates: gates.clone(),
                seq,
                admitted: Instant::now(),
                done,
            });
            self.send_job(i, Job::Batch(job), true);
            let column = match rx.recv() {
                Ok((_, column)) => column,
                // The worker died with this job on its queue; the next
                // submission (or heal) respawns it.
                Err(_) => lost_column(i, queries.len()),
            };
            columns.push(column);
        }
        merge_columns(&queries, columns)
    }

    /// Inject a fault into one shard worker (tests and the E19
    /// resilience harness). The fault rides the worker's ordinary job
    /// queue, so it takes effect after everything already admitted. A
    /// dead worker is healed first so the injection always lands.
    pub fn inject_fault(&mut self, shard: usize, fault: WorkerFault) {
        self.heal_worker(shard);
        self.send_job(shard, Job::Fault(fault), false);
    }

    /// Price a query on every shard (nothing executes): one EXPLAIN row
    /// per shard, in shard order. Rows are computed on the workers, so an
    /// EXPLAIN queues behind any batches already admitted (but bypasses
    /// the admission gauges — pricing is not load).
    pub fn explain_rows(&mut self, terms: &[u32], n: usize) -> ServeResult<Vec<ExplainRow>> {
        self.heal();
        let mut pending = Vec::with_capacity(self.workers.len());
        for i in 0..self.workers.len() {
            let (reply, rx) = channel();
            self.send_job(
                i,
                Job::Explain {
                    terms: terms.to_vec(),
                    n,
                    reply,
                },
                false,
            );
            pending.push(rx);
        }
        pending
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                rx.recv().unwrap_or_else(|_| {
                    Err(ServeError::ShardFailed {
                        shard: i,
                        panic: "worker terminated during explain".to_string(),
                    })
                })
            })
            .collect()
    }

    /// Drain and stop: drop every job sender (live workers finish all
    /// queued jobs, then observe disconnect), join the threads *capturing*
    /// any panic payloads instead of re-panicking, and recover every
    /// [`EngineShard`] from its slot — including the shards of workers
    /// that died. The returned [`PoolShutdown`] carries the shards in
    /// shard order plus the pool's full panic history.
    pub fn shutdown(mut self) -> PoolShutdown {
        let workers = std::mem::take(&mut self.workers);
        let mut panics = self.panic_log();
        let healed = panics.len();
        let shards = teardown(workers, &mut panics);
        // Deaths first observed at teardown join the event history and
        // counters too, so a shared registry's exposition agrees with
        // the returned PoolShutdown.
        for p in &panics[healed..] {
            self.counters.panics.incr();
            self.events.record(PoolEvent::WorkerPanic {
                shard: p.shard,
                message: p.message.clone(),
            });
        }
        PoolShutdown { shards, panics }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            let mut panics = Vec::new();
            let _ = teardown(std::mem::take(&mut self.workers), &mut panics);
        }
    }
}

/// Two passes: drop *every* sender before joining *any* worker, so a
/// worker blocked on `recv` is released no matter the join order. Joins
/// capture panic payloads into `panics` instead of propagating them, and
/// the shards come back from their retained slots — present even when
/// the worker died.
fn teardown(workers: Vec<Worker>, panics: &mut Vec<ShardPanic>) -> Vec<EngineShard> {
    let parts: Vec<(usize, JoinHandle<()>, ShardSlot)> = workers
        .into_iter()
        .map(|worker| {
            drop(worker.tx);
            (worker.id, worker.handle, worker.slot)
        })
        .collect();
    parts
        .into_iter()
        .map(|(id, handle, slot)| {
            if let Err(payload) = handle.join() {
                panics.push(ShardPanic {
                    shard: id,
                    message: panic_message(payload.as_ref()),
                });
            }
            slot.lock()
                .take()
                .expect("a stopped worker leaves its shard in the slot")
        })
        .collect()
}
