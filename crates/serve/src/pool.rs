//! The persistent per-shard worker pool: the serving runtime.
//!
//! [`ShardedEngine::execute_batch`] spawns one scoped thread per shard
//! *per batch*. That is correct but pays thread spawn/join on every
//! submission — on this class of host roughly 100–150µs per thread,
//! several times the cost of serving a typical query — which is exactly
//! the wall-time regression E16 measured (0.44–0.76× sequential at 2–8
//! shards). [`ShardPool`] removes the per-batch setup entirely:
//!
//! * **One long-lived worker thread per shard.** Construction moves each
//!   [`EngineShard`] — its fragmented table, engine set, planner, and
//!   zero-allocation `QueryScratch` arena — onto its own thread, where it
//!   stays for the life of the pool. The arena is reused across every
//!   query of every batch of the stream; steady-state submissions
//!   allocate only the per-batch bookkeeping (queries, gates, result
//!   columns), never per-posting or per-candidate state.
//! * **A submission queue with batched admission.** [`ShardPool::submit`]
//!   enqueues one [`Job`] per worker over `std::sync::mpsc` channels and
//!   returns a [`BatchTicket`] immediately. Callers overlap their own
//!   work — merging the *previous* batch, admitting the next — with shard
//!   service; that pipelining is what the E18 load generator drives.
//! * **Admission-time request coalescing.** Queries with identical
//!   `(terms, n)` inside one admitted batch execute **once**; the ticket
//!   fans the shared answer out to every duplicate position at
//!   collection. A top-N response is a pure function of the index, model,
//!   and query, so coalescing is answer-preserving by construction — and
//!   under the Zipf-skewed popularity real query streams exhibit (the
//!   paper's "millions of users" regime), the hottest query alone is a
//!   double-digit percentage of traffic, making coalescing the single
//!   biggest throughput lever the admission queue owns. The scoped and
//!   sequential paths execute every admitted query individually; they are
//!   the baselines E18 measures the pool against.
//! * **Identical answers.** Workers run the same
//!   [`EngineShard::run_one`](crate::shard::EngineShard) column loop and
//!   the ticket folds columns with the same tie-stable
//!   [`merge_columns`] as the scoped and sequential paths, under the same
//!   per-query [`BoundGate`]s — so pooled responses are bit-identical to
//!   both, and (for exact plans) to a single unsharded engine. The
//!   `pool_oracle` differential test pins this across plans × models ×
//!   shard counts × propagation.
//! * **Drain on shutdown.** `mpsc` receivers keep yielding buffered
//!   messages after every sender is dropped, so [`ShardPool::shutdown`]
//!   (drop all job senders, then join) lets each worker finish every job
//!   already queued before it observes disconnect and returns its shard.
//!   No query is ever dropped by teardown: a [`BatchTicket`] collected
//!   *after* `shutdown` still yields the full response set. Shutdown
//!   hands the [`EngineShard`]s back to the caller, scratch arenas
//!   included — their lifetime query counters prove one arena served the
//!   whole stream.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use moa_core::{CoreError, Result};
use moa_ir::{BoundGate, InvertedIndex, RankingModel, ScoreKernel};

use crate::shard::{
    gates, merge_columns, BatchQuery, EngineShard, QueryResponse, ServeMode, ShardOutcome,
    ShardSpec, ShardedEngine,
};

/// One shard's result column for a batch: outcome `i` answers query `i`.
pub type ShardColumn = Vec<Result<ShardOutcome>>;

/// One priced EXPLAIN row, computed on the owning worker.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRow {
    /// The shard.
    pub shard: usize,
    /// Shard-resident posting volume.
    pub postings: usize,
    /// The operator this shard's planner picks for the query.
    pub plan_name: &'static str,
    /// The planner's cost estimate for that operator.
    pub cost: f64,
    /// The planner's posting-volume estimate for that operator.
    pub est_postings: f64,
}

/// A unit of work on a worker's queue.
enum Job {
    /// Run the whole batch column and send it to the ticket.
    Batch(Arc<BatchJob>),
    /// Price one query on this shard (EXPLAIN; executes nothing).
    Explain {
        terms: Vec<u32>,
        n: usize,
        reply: Sender<Result<ExplainRow>>,
    },
}

/// One admitted batch, shared by every worker. The gates are built once
/// at admission so all shards prune against the same per-query
/// [`moa_ir::SharedThreshold`]s.
struct BatchJob {
    queries: Arc<[BatchQuery]>,
    mode: ServeMode,
    gates: Vec<BoundGate>,
    /// Tagged with the worker's shard id so the ticket can order columns
    /// regardless of completion order.
    done: Sender<(usize, ShardColumn)>,
}

struct Worker {
    tx: Sender<Job>,
    handle: JoinHandle<EngineShard>,
}

/// The worker thread body: serve jobs until every sender is gone, then
/// hand the shard back through the join. The `mpsc` disconnect contract
/// (buffered jobs drain before `recv` errors) is the pool's whole
/// shutdown story.
fn worker_loop(mut shard: EngineShard, rx: Receiver<Job>) -> EngineShard {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Batch(job) => {
                let column: ShardColumn = job
                    .queries
                    .iter()
                    .enumerate()
                    .map(|(qi, q)| shard.run_one(q, job.mode, &job.gates[qi]))
                    .collect();
                // The ticket may have been dropped (caller abandoned the
                // batch); the work is done either way.
                let _ = job.done.send((shard.id(), column));
            }
            Job::Explain { terms, n, reply } => {
                let row = shard.plan(&terms, n).map(|decision| {
                    let chosen = decision.chosen_alternative();
                    ExplainRow {
                        shard: shard.id(),
                        postings: shard.num_postings(),
                        plan_name: chosen.plan.name(),
                        cost: chosen.cost,
                        est_postings: chosen.est_postings,
                    }
                });
                let _ = reply.send(row);
            }
        }
    }
    shard
}

/// An in-flight batch: redeem it with [`BatchTicket::wait`] for merged
/// responses, or [`BatchTicket::wait_columns`] to take the raw per-shard
/// columns and defer the merge off the service critical path (submit the
/// next batch first, then merge — the overlap the E18 pool driver uses).
#[must_use = "an unredeemed ticket discards the batch's responses"]
pub struct BatchTicket {
    /// The *distinct* queries dispatched to the workers (admission
    /// coalescing already applied), in first-occurrence order.
    queries: Arc<[BatchQuery]>,
    /// Maps each admitted query position to its distinct query's index:
    /// `expand[i]` is the entry of `queries` that answers position `i`.
    expand: Vec<usize>,
    rx: Receiver<(usize, ShardColumn)>,
    num_shards: usize,
}

impl BatchTicket {
    /// Number of queries admitted (before coalescing): the number of
    /// responses [`BatchTicket::wait`] will return.
    pub fn len(&self) -> usize {
        self.expand.len()
    }

    /// Whether the admitted batch was empty.
    pub fn is_empty(&self) -> bool {
        self.expand.is_empty()
    }

    /// The distinct queries actually dispatched to the workers, in
    /// first-occurrence order (duplicates coalesced at admission).
    pub fn queries(&self) -> &Arc<[BatchQuery]> {
        &self.queries
    }

    /// How many admitted queries will be answered by another position's
    /// execution (`len() - queries().len()`).
    pub fn coalesced(&self) -> usize {
        self.expand.len() - self.queries.len()
    }

    /// The coalescing map: `expansion()[i]` is the index into
    /// [`BatchTicket::queries`] whose execution answers admitted position
    /// `i`. Distinct indices are assigned in first-occurrence order, so
    /// position `i` is a first occurrence iff `expansion()[i]` equals the
    /// count of distinct indices seen before it.
    pub fn expansion(&self) -> &[usize] {
        &self.expand
    }

    /// Block until every shard's column has arrived and return them in
    /// shard order, alongside the *distinct* queries they answer (the
    /// coalesced view — one column entry per distinct query, not per
    /// admitted position; [`BatchTicket::wait`] re-expands).
    pub fn wait_columns(self) -> Result<(Arc<[BatchQuery]>, Vec<ShardColumn>)> {
        let mut columns: Vec<Option<ShardColumn>> = (0..self.num_shards).map(|_| None).collect();
        for _ in 0..self.num_shards {
            let (shard, column) = self
                .rx
                .recv()
                .map_err(|_| CoreError::Type("shard worker disconnected mid-batch".to_string()))?;
            columns[shard] = Some(column);
        }
        let columns = columns
            .into_iter()
            .map(|c| c.expect("each worker reports its own shard id exactly once"))
            .collect();
        Ok((self.queries, columns))
    }

    /// Block until every shard has finished, fold the columns with the
    /// tie-stable k-way merge, and fan coalesced answers back out: one
    /// response per *admitted* query, in submission order. A duplicate
    /// position's response clones its distinct query's execution — top-N,
    /// work counters, and per-shard outcomes included — because that
    /// execution is what answered it.
    pub fn wait(mut self) -> Result<Vec<QueryResponse>> {
        let expand = std::mem::take(&mut self.expand);
        let (queries, columns) = self.wait_columns()?;
        let distinct = merge_columns(&queries, columns)?;
        if distinct.len() == expand.len() {
            // No duplicates: the expansion is the identity.
            return Ok(distinct);
        }
        Ok(expand.into_iter().map(|u| distinct[u].clone()).collect())
    }
}

/// The persistent per-shard worker pool. See the module docs.
pub struct ShardPool {
    workers: Vec<Worker>,
    spec: ShardSpec,
    index: Arc<InvertedIndex>,
    kernel: Arc<ScoreKernel>,
}

impl ShardPool {
    /// Stand the pool up from a built engine: every shard moves onto its
    /// own long-lived worker thread.
    pub fn new(engine: ShardedEngine) -> ShardPool {
        let (shards, spec, index, kernel) = engine.into_parts();
        let workers = shards
            .into_iter()
            .map(|shard| {
                let (tx, rx) = channel();
                let handle = std::thread::Builder::new()
                    .name(format!("moa-shard-{}", shard.id()))
                    .spawn(move || worker_loop(shard, rx))
                    .expect("spawning a shard worker thread");
                Worker { tx, handle }
            })
            .collect();
        ShardPool {
            workers,
            spec,
            index,
            kernel,
        }
    }

    /// Number of shards (= worker threads).
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// The partitioning in force.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The unsharded source index.
    pub fn index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// The ranking model every shard scores with.
    pub fn model(&self) -> RankingModel {
        self.kernel.model()
    }

    /// Admit a batch: coalesce duplicate queries, build the per-query
    /// gates, enqueue the job on every worker, and return a
    /// [`BatchTicket`] without waiting. Workers run their columns
    /// concurrently; with `propagate`, shards prune against each other's
    /// running thresholds exactly as the scoped path does.
    ///
    /// Coalescing: positions with identical `(terms, n)` dispatch **one**
    /// execution; [`BatchTicket::wait`] clones the shared answer back
    /// into every duplicate position. Answers are bit-identical to
    /// executing each position individually — a top-N response is a pure
    /// function of index, model, and query — and under Zipf-skewed
    /// streams the saved executions are the pool's dominant throughput
    /// win (see E18).
    pub fn submit(&self, queries: &[BatchQuery], mode: ServeMode, propagate: bool) -> BatchTicket {
        let mut first: HashMap<(&[u32], usize), usize> = HashMap::with_capacity(queries.len());
        let mut distinct: Vec<BatchQuery> = Vec::with_capacity(queries.len());
        let mut expand: Vec<usize> = Vec::with_capacity(queries.len());
        for q in queries {
            let next = distinct.len();
            let slot = *first.entry((q.terms.as_slice(), q.n)).or_insert(next);
            if slot == next {
                distinct.push(q.clone());
            }
            expand.push(slot);
        }
        let queries: Arc<[BatchQuery]> = distinct.into();
        // With one shard there is no peer to propagate to or from.
        let gates = gates(&queries, propagate && self.workers.len() > 1);
        let (done, rx) = channel();
        let job = Arc::new(BatchJob {
            queries: Arc::clone(&queries),
            mode,
            gates,
            done,
        });
        for worker in &self.workers {
            worker
                .tx
                .send(Job::Batch(Arc::clone(&job)))
                .expect("shard worker outlives the pool that owns it");
        }
        BatchTicket {
            queries,
            expand,
            rx,
            num_shards: self.workers.len(),
        }
    }

    /// The profiling twin of [`ShardPool::submit`]: workers run one at a
    /// time in shard order (each finishes its whole column before the
    /// next starts), so with propagation the thresholds published by
    /// earlier shards reach later shards deterministically and per-shard
    /// busy times are reproducible — the same schedule as
    /// [`ShardedEngine::execute_batch_sequential`], on the workers'
    /// threads. No admission coalescing: every position executes, which
    /// is what makes this the per-position bit-identity reference for
    /// [`ShardPool::submit`]'s coalesced fan-out.
    pub fn submit_sequential(
        &self,
        queries: &[BatchQuery],
        mode: ServeMode,
        propagate: bool,
    ) -> Result<Vec<QueryResponse>> {
        let queries: Arc<[BatchQuery]> = queries.into();
        let gates = gates(&queries, propagate && self.workers.len() > 1);
        let mut columns = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (done, rx) = channel();
            let job = Arc::new(BatchJob {
                queries: Arc::clone(&queries),
                mode,
                // Gate clones share the underlying thresholds: later
                // shards see what earlier shards published.
                gates: gates.clone(),
                done,
            });
            worker
                .tx
                .send(Job::Batch(job))
                .expect("shard worker outlives the pool that owns it");
            let (_, column) = rx
                .recv()
                .map_err(|_| CoreError::Type("shard worker disconnected mid-batch".to_string()))?;
            columns.push(column);
        }
        merge_columns(&queries, columns)
    }

    /// Price a query on every shard (nothing executes): one EXPLAIN row
    /// per shard, in shard order. Rows are computed on the workers, so an
    /// EXPLAIN queues behind any batches already admitted.
    pub fn explain_rows(&self, terms: &[u32], n: usize) -> Result<Vec<ExplainRow>> {
        let mut pending = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (reply, rx) = channel();
            worker
                .tx
                .send(Job::Explain {
                    terms: terms.to_vec(),
                    n,
                    reply,
                })
                .expect("shard worker outlives the pool that owns it");
            pending.push(rx);
        }
        pending
            .into_iter()
            .map(|rx| {
                rx.recv().map_err(|_| {
                    CoreError::Type("shard worker disconnected during explain".to_string())
                })?
            })
            .collect()
    }

    /// Drain and stop: drop every job sender (workers finish all queued
    /// jobs, then observe disconnect), join the threads, and hand back
    /// the [`EngineShard`]s in shard order — planners calibrated by the
    /// stream, scratch arenas carrying their lifetime query counts.
    pub fn shutdown(mut self) -> Vec<EngineShard> {
        teardown(std::mem::take(&mut self.workers))
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            teardown(std::mem::take(&mut self.workers));
        }
    }
}

/// Two passes: drop *every* sender before joining *any* worker, so a
/// worker blocked on `recv` is released no matter the join order.
fn teardown(workers: Vec<Worker>) -> Vec<EngineShard> {
    let handles: Vec<JoinHandle<EngineShard>> = workers
        .into_iter()
        .map(|worker| {
            drop(worker.tx);
            worker.handle
        })
        .collect();
    handles
        .into_iter()
        .map(|handle| handle.join().expect("shard worker panicked"))
        .collect()
}
