//! Fault, overload, and degradation regressions for the serving pool:
//! every failure posture ISSUE 7 introduces is pinned end to end against
//! a healthy reference session.
//!
//! * admission — `Shed` refuses exactly at the configured bound and the
//!   pool recovers after drain; `TryNow` admits only an idle pool;
//!   `Block` backpressures (measurably waits) instead of refusing, and
//!   the queue high-water mark never exceeds the bound;
//! * deadlines — an expired budget degrades to an `Ok` **partial**
//!   response whose every reported score is bit-identical to the full
//!   run's score for that document (exact prefix, honest counters);
//! * isolation — a poison-term panic inside the per-query guard fails
//!   only the poisoned position; a worker crash fails the in-flight
//!   batch with typed errors, the next submission respawns the worker
//!   over the retained shard, and answers return bit-identical;
//! * teardown — dropping an admitted ticket neither deadlocks workers
//!   nor leaks queue slots, and `shutdown` *reports* worker panics
//!   instead of re-panicking the drain.

use std::sync::Arc;
use std::time::{Duration, Instant};

use moa_corpus::{generate_queries, Collection, CollectionConfig, DfBias, Query, QueryConfig};
use moa_ir::{InvertedIndex, PhysicalPlan};
use moa_serve::{
    silence_worker_panics, AdmissionPolicy, BatchQuery, ServeConfig, ServeError, ServeMode,
    ServeSession, WorkerFault,
};

fn fixture() -> (Collection, Arc<InvertedIndex>, Vec<Query>) {
    let c = Collection::generate(CollectionConfig::tiny()).expect("valid preset");
    let idx = Arc::new(InvertedIndex::from_collection(&c));
    let queries = generate_queries(
        &c,
        &QueryConfig {
            num_queries: 8,
            bias: DfBias::TrecLike { high_df_mix: 0.4 },
            seed: 0x51A2,
            ..QueryConfig::default()
        },
    )
    .expect("valid workload");
    (c, idx, queries)
}

/// A session with the overload knobs under test; everything else is the
/// default planned posture.
fn session(
    idx: &Arc<InvertedIndex>,
    shards: usize,
    queue_depth: usize,
    admission: AdmissionPolicy,
    deadline: Option<Duration>,
) -> ServeSession {
    let config = ServeConfig {
        mode: ServeMode::Fixed(PhysicalPlan::PrunedDaat),
        sparse_block: Some(64),
        queue_depth,
        admission,
        deadline,
        ..ServeConfig::planned(shards)
    };
    ServeSession::new(Arc::clone(idx), config).expect("tiny index shards cleanly")
}

fn batch_of(queries: &[Query], n: usize) -> Vec<BatchQuery> {
    queries
        .iter()
        .map(|q| BatchQuery {
            terms: q.terms.clone(),
            n,
        })
        .collect()
}

#[test]
fn dropped_ticket_neither_deadlocks_workers_nor_leaks_queue_slots() {
    // Satellite: a caller that enqueues and walks away abandons its
    // responses, nothing else. The workers still finish the jobs (the
    // queue drains back to zero — no leaked admission slots), and the
    // pool keeps answering correctly afterwards.
    let (_, idx, queries) = fixture();
    let batch = batch_of(&queries, 10);
    let mut svc = session(&idx, 2, 2, AdmissionPolicy::Block, None);
    let mut reference = session(&idx, 2, 2, AdmissionPolicy::Block, None);
    drop(svc.enqueue(&batch).expect("blocking admission"));
    // The abandoned batch's slots must come back without anyone waiting
    // on its ticket.
    let t0 = Instant::now();
    while svc.pool().queue_depths().iter().any(|&d| d > 0) {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "queue never drained after the ticket was dropped: depths {:?}",
            svc.pool().queue_depths()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // The pool is fully live: a fresh batch admits (two slots exist and
    // both are free again) and answers bit-identically.
    let got = svc.submit_many(&batch).expect("queue drained");
    let want = reference.submit_many(&batch).expect("idle pool admits");
    for (qi, (g, w)) in got
        .expect_ok()
        .iter()
        .zip(want.expect_ok().iter())
        .enumerate()
    {
        assert_eq!(
            g.top, w.top,
            "q{qi}: answers diverged after a dropped ticket"
        );
    }
    let outcome = svc.shutdown();
    assert!(
        outcome.is_clean(),
        "no worker panicked: {:?}",
        outcome.panics
    );
}

#[test]
fn shed_policy_refuses_at_the_bound_and_recovers_after_drain() {
    let (_, idx, queries) = fixture();
    let batch = batch_of(&queries[..4], 10);
    let mut svc = session(&idx, 1, 2, AdmissionPolicy::Shed, None);
    let mut reference = session(&idx, 1, 2, AdmissionPolicy::Shed, None);
    // Hold the single worker busy so saturation is deterministic.
    svc.pool_mut()
        .inject_fault(0, WorkerFault::Stall(Duration::from_millis(300)));
    let p1 = svc.enqueue(&batch).expect("depth 0 of bound 2 admits");
    let p2 = svc.enqueue(&batch).expect("depth 1 of bound 2 admits");
    // Third batch: the queue is exactly at its bound. Shed, typed.
    let refused = svc.enqueue(&batch);
    match refused {
        Err(ServeError::Shed {
            shard,
            depth,
            bound,
        }) => {
            assert_eq!(shard, 0);
            assert_eq!(depth, 2);
            assert_eq!(bound, 2);
        }
        Err(other) => panic!("expected Shed at the bound, got {other:?}"),
        Ok(_) => panic!("expected Shed at the bound, got an admission"),
    }
    assert_eq!(svc.stats().queries_shed, batch.len());
    // Nothing executed for the shed batch, and nothing over-admitted:
    // the high-water mark is exactly the bound.
    assert_eq!(svc.pool().queue_high_water(), 2);
    // The admitted batches were untouched by the refusal (all-or-nothing
    // admission): both drain and answer bit-identically.
    let want = reference.submit_many(&batch).expect("idle pool admits");
    for (bi, pending) in [p1, p2].into_iter().enumerate() {
        let got = svc.collect(pending);
        for (qi, (g, w)) in got
            .expect_ok()
            .iter()
            .zip(want.expect_ok().iter())
            .enumerate()
        {
            assert_eq!(g.top, w.top, "batch {bi} q{qi}: admitted batch diverged");
        }
    }
    // After drain the same batch is retriable verbatim.
    let retried = svc.submit_many(&batch).expect("drained pool admits again");
    for (qi, (g, w)) in retried
        .expect_ok()
        .iter()
        .zip(want.expect_ok().iter())
        .enumerate()
    {
        assert_eq!(g.top, w.top, "q{qi}: retried shed batch diverged");
    }
    assert!(svc.pool().queue_high_water() <= 2);
}

#[test]
fn try_now_admits_only_an_idle_pool() {
    let (_, idx, queries) = fixture();
    let batch = batch_of(&queries[..3], 10);
    let mut svc = session(&idx, 2, 4, AdmissionPolicy::TryNow, None);
    for shard in 0..2 {
        svc.pool_mut()
            .inject_fault(shard, WorkerFault::Stall(Duration::from_millis(200)));
    }
    let p1 = svc.enqueue(&batch).expect("idle pool admits");
    // One batch in flight: far below the bound of 4, but not idle.
    let refused = match svc.enqueue(&batch) {
        Ok(_) => panic!("TryNow must refuse a non-idle pool"),
        Err(e) => e,
    };
    assert!(refused.is_shed(), "expected Shed, got {refused:?}");
    let first = svc.collect(p1);
    assert_eq!(first.expect_ok().len(), batch.len());
    // Drained back to idle: admitted again.
    let second = svc.submit_many(&batch).expect("idle pool admits again");
    for (qi, (g, w)) in second
        .expect_ok()
        .iter()
        .zip(first.expect_ok().iter())
        .enumerate()
    {
        assert_eq!(
            g.top, w.top,
            "q{qi}: answers diverged across idle admissions"
        );
    }
}

#[test]
fn block_policy_backpressures_instead_of_refusing() {
    let (_, idx, queries) = fixture();
    let batch = batch_of(&queries[..2], 10);
    let mut svc = session(&idx, 1, 1, AdmissionPolicy::Block, None);
    svc.pool_mut()
        .inject_fault(0, WorkerFault::Stall(Duration::from_millis(250)));
    let p1 = svc.enqueue(&batch).expect("depth 0 of bound 1 admits");
    // The queue is at its bound and the worker is stalled: Block must
    // wait for the slot rather than refuse, so this admission cannot
    // return before the worker finishes the first batch.
    let t0 = Instant::now();
    let p2 = svc.enqueue(&batch).expect("Block never sheds");
    assert!(
        t0.elapsed() >= Duration::from_millis(100),
        "admission returned in {:?} — it cannot have waited for the stalled worker",
        t0.elapsed()
    );
    // Backpressure, not over-admission: the bound held throughout.
    assert_eq!(svc.pool().queue_high_water(), 1);
    let first = svc.collect(p1);
    let second = svc.collect(p2);
    for (qi, (g, w)) in first
        .expect_ok()
        .iter()
        .zip(second.expect_ok().iter())
        .enumerate()
    {
        assert_eq!(g.top, w.top, "q{qi}: backpressured batch diverged");
    }
    assert_eq!(svc.stats().queries_shed, 0);
}

#[test]
fn deadline_expiry_degrades_to_partial_with_honest_exact_scores() {
    let (c, idx, queries) = fixture();
    let batch = batch_of(&queries[..4], 10);
    // A budget of one nanosecond has always expired by the first gate
    // poll: every query degrades instead of erroring.
    let mut svc = session(
        &idx,
        2,
        4,
        AdmissionPolicy::Block,
        Some(Duration::from_nanos(1)),
    );
    let mut full = session(&idx, 2, 4, AdmissionPolicy::Block, None);
    let got = svc.submit_many(&batch).expect("blocking admission");
    // The full-budget reference ranks the entire matching set, giving us
    // every document's exact score to check the partial prefix against.
    let all_docs: Vec<BatchQuery> = batch
        .iter()
        .map(|q| BatchQuery {
            terms: q.terms.clone(),
            n: c.num_docs(),
        })
        .collect();
    let want = full.submit_many(&all_docs).expect("blocking admission");
    for (qi, (g, w)) in got
        .expect_ok()
        .iter()
        .zip(want.expect_ok().iter())
        .enumerate()
    {
        assert!(
            g.partial,
            "q{qi}: expired budget must mark the response partial"
        );
        // Honesty: whatever made it into the heap is exact — each
        // (doc, score) matches the full run bit for bit. The timed-out
        // run performed no more work than the full one.
        for &(doc, score) in &g.top {
            let exact = w
                .top
                .iter()
                .find(|(d, _)| *d == doc)
                .unwrap_or_else(|| panic!("q{qi}: partial doc {doc} not in the full ranking"));
            assert_eq!(
                score.to_bits(),
                exact.1.to_bits(),
                "q{qi} doc {doc}: partial score is not the exact score"
            );
        }
        assert!(
            g.work.postings_scanned <= w.work.postings_scanned,
            "q{qi}: a timed-out query cannot scan more than the full run"
        );
    }
    let stats = svc.stats();
    assert_eq!(stats.queries_partial, batch.len());
    assert_eq!(stats.queries_served, batch.len());
    assert_eq!(stats.queries_failed, 0);
}

#[test]
fn expired_deadline_overshoot_is_bounded_by_the_poll_stride_not_the_volume() {
    // Satellite: the gather and accumulator loops now poll the deadline
    // every SCAN_POLL_STRIDE postings *inside* a pass, so a query whose
    // budget has already expired stops within one stride per shard — not
    // at the end of the fragment volume, which is what the old
    // boundary-only polling allowed. Pin that tighter bound end to end
    // through the pool, on the full-scan fragmented plan (the widest
    // uninterruptible pass the engine used to have).
    use moa_ir::Strategy;
    let (_, idx, queries) = fixture();
    let shards = 2usize;
    let overshoot_bound = shards * moa_ir::fragment::SCAN_POLL_STRIDE;
    assert!(
        idx.num_postings() > overshoot_bound,
        "fixture volume {} must exceed the overshoot bound {} for the \
         tightening to be observable",
        idx.num_postings(),
        overshoot_bound
    );
    let batch = batch_of(&queries[..4], 10);
    let config = ServeConfig {
        mode: ServeMode::Fixed(PhysicalPlan::Fragmented(Strategy::FullScan)),
        sparse_block: Some(64),
        queue_depth: 4,
        admission: AdmissionPolicy::Block,
        deadline: Some(Duration::from_nanos(1)),
        ..ServeConfig::planned(shards)
    };
    let mut svc = ServeSession::new(Arc::clone(&idx), config).expect("tiny index shards cleanly");
    let got = svc.submit_many(&batch).expect("blocking admission");
    for (qi, g) in got.expect_ok().iter().enumerate() {
        assert!(g.partial, "q{qi}: expired budget must degrade to partial");
        assert!(
            g.work.postings_scanned <= overshoot_bound,
            "q{qi}: scanned {} postings after expiry — overshoot must stay \
             within one poll stride per shard ({overshoot_bound}), not run \
             to the fragment volume ({})",
            g.work.postings_scanned,
            idx.num_postings()
        );
    }
    assert_eq!(svc.stats().queries_partial, batch.len());
    assert_eq!(svc.stats().queries_failed, 0);
}

#[test]
fn set_at_a_time_deadline_overshoot_is_bounded_by_the_poll_stride() {
    // Satellite (ROADMAP "deadline check granularity"): the set-at-a-time
    // accumulator streams one run per query term and now polls the gate
    // every SCAN_POLL_STRIDE postings *inside* a run as well as at run
    // boundaries — the last uninterruptible pass in the engine. Mirror
    // the FullScan regression above on the accumulator plan: a budget
    // that expired before the first poll must stop within one stride per
    // shard, not at the end of the longest run.
    let (_, idx, queries) = fixture();
    let shards = 2usize;
    let overshoot_bound = shards * moa_ir::fragment::SCAN_POLL_STRIDE;
    assert!(
        idx.num_postings() > overshoot_bound,
        "fixture volume {} must exceed the overshoot bound {} for the \
         tightening to be observable",
        idx.num_postings(),
        overshoot_bound
    );
    let batch = batch_of(&queries[..4], 10);
    let config = ServeConfig {
        mode: ServeMode::Fixed(PhysicalPlan::SetAtATime),
        sparse_block: Some(64),
        queue_depth: 4,
        admission: AdmissionPolicy::Block,
        deadline: Some(Duration::from_nanos(1)),
        ..ServeConfig::planned(shards)
    };
    let mut svc = ServeSession::new(Arc::clone(&idx), config).expect("tiny index shards cleanly");
    let got = svc.submit_many(&batch).expect("blocking admission");
    for (qi, g) in got.expect_ok().iter().enumerate() {
        assert!(g.partial, "q{qi}: expired budget must degrade to partial");
        assert!(
            g.work.postings_scanned <= overshoot_bound,
            "q{qi}: accumulated {} postings after expiry — overshoot must \
             stay within one poll stride per shard ({overshoot_bound}), \
             not run to the end of a term's run ({} postings total)",
            g.work.postings_scanned,
            idx.num_postings()
        );
        // A truncated accumulation holds only inexact partial sums, so
        // the honest answer is an empty prefix — never a ranked guess.
        assert!(g.top.is_empty(), "q{qi}: partial sums must never be ranked");
    }
    assert_eq!(svc.stats().queries_partial, batch.len());
    assert_eq!(svc.stats().queries_failed, 0);
}

#[test]
fn poison_term_fails_only_its_position_and_the_worker_survives() {
    silence_worker_panics();
    let (_, idx, queries) = fixture();
    let poison = queries[0].terms[0];
    let clean: Vec<Query> = queries
        .iter()
        .filter(|q| !q.terms.contains(&poison))
        .take(2)
        .cloned()
        .collect();
    assert!(
        !clean.is_empty(),
        "fixture needs a query free of the poison term"
    );
    let mut batch = batch_of(&clean, 10);
    batch.insert(
        1,
        BatchQuery {
            terms: queries[0].terms.clone(),
            n: 10,
        },
    );
    let poisoned_pos = 1usize;
    let mut svc = session(&idx, 2, 4, AdmissionPolicy::Block, None);
    let mut reference = session(&idx, 2, 4, AdmissionPolicy::Block, None);
    svc.pool_mut()
        .inject_fault(0, WorkerFault::PoisonTerm(poison));
    let got = svc.submit_many(&batch).expect("blocking admission");
    let want = reference.submit_many(&batch).expect("blocking admission");
    for (qi, (g, w)) in got
        .responses
        .iter()
        .zip(want.expect_ok().iter())
        .enumerate()
    {
        if qi == poisoned_pos {
            match g {
                Err(ServeError::ShardFailed { shard, panic }) => {
                    assert_eq!(*shard, 0, "the poison was armed on shard 0");
                    assert!(
                        panic.contains("injected poison term"),
                        "payload must survive to the caller: {panic:?}"
                    );
                }
                other => panic!("poisoned position must fail typed, got {other:?}"),
            }
        } else {
            let g = g.as_ref().expect("clean positions are unaffected");
            assert_eq!(g.top, w.top, "q{qi}: clean position diverged");
        }
    }
    // The panic was caught inside the per-query guard: the worker never
    // died, so nothing respawned.
    assert_eq!(svc.pool().respawns(), 0);
    assert_eq!(svc.stats().queries_failed, 1);
    assert_eq!(svc.stats().queries_served, batch.len() - 1);
    // Disarmed, the same batch fully succeeds and matches the reference.
    svc.pool_mut().inject_fault(0, WorkerFault::ClearPoison);
    let healed = svc.submit_many(&batch).expect("blocking admission");
    for (qi, (g, w)) in healed
        .expect_ok()
        .iter()
        .zip(want.expect_ok().iter())
        .enumerate()
    {
        assert_eq!(g.top, w.top, "q{qi}: disarmed batch diverged");
    }
}

#[test]
fn crash_fails_the_in_flight_batch_and_the_respawned_worker_matches() {
    silence_worker_panics();
    let (_, idx, queries) = fixture();
    let batch = batch_of(&queries[..3], 10);
    let mut svc = session(&idx, 2, 4, AdmissionPolicy::Block, None);
    let mut reference = session(&idx, 2, 4, AdmissionPolicy::Block, None);
    // The stall keeps worker 1 demonstrably alive while the crash and
    // the batch queue behind it — the batch is always admitted to a
    // doomed worker, never to one already healed.
    svc.pool_mut()
        .inject_fault(1, WorkerFault::Stall(Duration::from_millis(100)));
    svc.pool_mut().inject_fault(1, WorkerFault::Crash);
    let got = svc
        .submit_many(&batch)
        .expect("worker 1 alive at admission");
    // Worker 1 died with the batch queued behind the crash: its column
    // is lost, and every position fails typed (shard 0's fine answers
    // cannot stand in for the missing shard).
    for (qi, r) in got.responses.iter().enumerate() {
        match r {
            Err(ServeError::ShardFailed { shard, panic }) => {
                assert_eq!(*shard, 1, "q{qi}: the lost column is shard 1's");
                assert!(
                    panic.contains("worker terminated before answering"),
                    "q{qi}: {panic:?}"
                );
            }
            other => panic!("q{qi}: lost column must fail typed, got {other:?}"),
        }
    }
    assert_eq!(svc.stats().queries_failed, batch.len());
    // The next submission heals: one respawn over the retained shard,
    // the panic payload preserved in the log, and answers bit-identical
    // to a never-faulted session.
    let healed = svc.submit_many(&batch).expect("respawned pool admits");
    let want = reference.submit_many(&batch).expect("blocking admission");
    for (qi, (g, w)) in healed
        .expect_ok()
        .iter()
        .zip(want.expect_ok().iter())
        .enumerate()
    {
        assert_eq!(g.top, w.top, "q{qi}: respawned worker diverged");
    }
    assert_eq!(svc.pool().respawns(), 1);
    assert_eq!(svc.stats().worker_respawns, 1);
    assert_eq!(svc.pool().recoveries().len(), 1);
    let log = svc.pool().panic_log();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].shard, 1);
    assert!(
        log[0].message.contains("injected worker crash"),
        "payload: {:?}",
        log[0].message
    );
    let outcome = svc.shutdown();
    assert!(
        !outcome.is_clean(),
        "the healed pool still reports its panic history"
    );
    assert_eq!(outcome.shards.len(), 2, "both shards come back");
}

#[test]
fn shutdown_reports_worker_panics_instead_of_repanicking() {
    silence_worker_panics();
    let (_, idx, _) = fixture();
    let mut svc = session(&idx, 2, 4, AdmissionPolicy::Block, None);
    svc.pool_mut().inject_fault(0, WorkerFault::Crash);
    // Teardown joins the dying worker and *captures* its payload — the
    // drain itself must not panic, and the retained shard still comes
    // back for both the dead and the healthy worker.
    let outcome = svc.shutdown();
    assert!(!outcome.is_clean());
    assert_eq!(outcome.panics.len(), 1);
    assert_eq!(outcome.panics[0].shard, 0);
    assert!(
        outcome.panics[0].message.contains("injected worker crash"),
        "payload: {:?}",
        outcome.panics[0].message
    );
    let shards = outcome.into_shards();
    assert_eq!(shards.len(), 2);
    for (s, shard) in shards.iter().enumerate() {
        assert_eq!(shard.id(), s);
    }
}
