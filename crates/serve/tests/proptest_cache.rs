//! Property test for [`moa_serve::ResultCache`]: arbitrary interleavings
//! of inserts, gets, and epoch invalidations against a naive reference
//! model of the segmented-LRU semantics (two `VecDeque` order lists plus
//! a `HashMap`). After **every** operation the real cache and the model
//! must agree on resident bytes, entry count, every counter, hit/miss
//! outcome (with value verification), and per-key membership — which
//! together pin the byte bound, post-invalidation behaviour, and LRU
//! victim selection.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use moa_ir::{ExecReport, RankingModel};
use moa_serve::{approx_entry_bytes, CacheConfig, CacheStats, QueryResponse, ResultCache};
use proptest::collection::vec;
use proptest::prelude::*;

/// Keys are small integers; key `k` queries terms `[k]` at `n = 10`.
const KEYS: u8 = 8;
const N: usize = 10;
/// Mirrors `cache::PROTECTED_NUM / PROTECTED_DEN` (4/5 protected share).
const PROTECTED_NUM: usize = 4;
const PROTECTED_DEN: usize = 5;

/// Per-key answer sizes vary so byte accounting is exercised with mixed
/// entry weights; key 7 is deliberately larger than the whole cache.
fn top_len(k: u8) -> usize {
    if k == 7 {
        64
    } else {
        2 + (usize::from(k) % 3) * 4
    }
}

/// The answer for key `k` at `epoch` — the doc id encodes both, so a
/// stale entry surviving invalidation could never masquerade as fresh.
fn make_resp(k: u8, epoch: u64) -> Arc<QueryResponse> {
    let doc = u32::from(k) * 1_000 + epoch as u32;
    Arc::new(QueryResponse {
        top: (0..top_len(k))
            .map(|i| (doc + i as u32, 1.0 / (i + 1) as f64))
            .collect(),
        work: ExecReport::default(),
        partial: false,
        shards: Vec::new(),
    })
}

fn entry_bytes(k: u8) -> usize {
    approx_entry_bytes(&[u32::from(k)], &make_resp(k, 0))
}

/// Capacity fits roughly three mid-sized entries, so capacity evictions,
/// protected-share demotions, and the oversized-refusal path all fire
/// within a couple hundred operations.
fn capacity() -> usize {
    entry_bytes(0) + entry_bytes(1) + entry_bytes(2) + entry_bytes(0) / 2
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ModelEntry {
    epoch: u64,
    bytes: usize,
    doc: u32,
}

/// The reference model: the cache's documented semantics, written the
/// obvious slow way. Order lists hold keys, front = most recent.
struct Model {
    epoch: u64,
    entries: HashMap<u8, ModelEntry>,
    prob: VecDeque<u8>,
    prot: VecDeque<u8>,
    bytes: usize,
    prot_bytes: usize,
    bound: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl Model {
    fn new(bound: usize) -> Model {
        Model {
            epoch: 0,
            entries: HashMap::new(),
            prob: VecDeque::new(),
            prot: VecDeque::new(),
            bytes: 0,
            prot_bytes: 0,
            bound,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    fn remove(&mut self, k: u8) {
        let e = self.entries.remove(&k).expect("removing a resident key");
        if let Some(pos) = self.prob.iter().position(|&x| x == k) {
            self.prob.remove(pos);
        } else {
            let pos = self
                .prot
                .iter()
                .position(|&x| x == k)
                .expect("resident key is in exactly one list");
            self.prot.remove(pos);
            self.prot_bytes -= e.bytes;
        }
        self.bytes -= e.bytes;
    }

    fn rebalance_protected(&mut self) {
        let share = self.bound / PROTECTED_DEN * PROTECTED_NUM;
        while self.prot_bytes > share {
            let Some(tail) = self.prot.pop_back() else {
                break;
            };
            self.prot_bytes -= self.entries[&tail].bytes;
            self.prob.push_front(tail);
        }
    }

    /// Returns the expected hit value's leading doc id, or `None` on a
    /// miss.
    fn get(&mut self, k: u8) -> Option<u32> {
        let Some(&e) = self.entries.get(&k) else {
            self.misses += 1;
            return None;
        };
        if e.epoch != self.epoch {
            // Stale entries are reclaimed on touch and count as both an
            // eviction and a miss.
            self.remove(k);
            self.evictions += 1;
            self.misses += 1;
            return None;
        }
        if let Some(pos) = self.prob.iter().position(|&x| x == k) {
            self.prob.remove(pos);
            self.prot.push_front(k);
            self.prot_bytes += e.bytes;
            self.rebalance_protected();
        } else {
            let pos = self
                .prot
                .iter()
                .position(|&x| x == k)
                .expect("resident key is in exactly one list");
            self.prot.remove(pos);
            self.prot.push_front(k);
        }
        self.hits += 1;
        Some(e.doc)
    }

    fn insert(&mut self, k: u8) {
        let eb = entry_bytes(k);
        if eb > self.bound {
            // Oversized: refused outright, no counters move.
            return;
        }
        if let Some(&e) = self.entries.get(&k) {
            if e.epoch == self.epoch {
                // Same key, same epoch: the resident entry already *is*
                // this answer; keep it and its LRU position.
                return;
            }
            self.remove(k);
            self.evictions += 1;
        }
        self.entries.insert(
            k,
            ModelEntry {
                epoch: self.epoch,
                bytes: eb,
                doc: u32::from(k) * 1_000 + self.epoch as u32,
            },
        );
        self.prob.push_front(k);
        self.bytes += eb;
        while self.bytes > self.bound {
            let victim = if let Some(&v) = self.prob.back() {
                v
            } else if let Some(&v) = self.prot.back() {
                v
            } else {
                break;
            };
            self.remove(victim);
            self.evictions += 1;
        }
        self.insertions += 1;
    }

    fn invalidate(&mut self) {
        self.epoch += 1;
    }

    fn stats_match(&self, s: &CacheStats) -> bool {
        s.hits == self.hits
            && s.misses == self.misses
            && s.insertions == self.insertions
            && s.evictions == self.evictions
            && s.bytes == self.bytes as u64
            && s.entries == self.entries.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn cache_agrees_with_the_naive_segmented_lru_model(
        ops in vec((0u8..16, 0u8..KEYS), 1..=160)
    ) {
        let bound = capacity();
        // One lock shard so the per-shard bound *is* the capacity and the
        // model's single order list pair mirrors it exactly.
        let cache = ResultCache::new(
            CacheConfig { capacity_bytes: bound, shards: 1 },
            RankingModel::default(),
        );
        let mut model = Model::new(bound);

        for (step, &(sel, k)) in ops.iter().enumerate() {
            let terms = [u32::from(k)];
            match sel {
                // ~44% gets, ~44% inserts, ~12% invalidations: the shim's
                // prop_oneof! has no weights, so the op mix is biased by
                // partitioning an integer range instead.
                0..=6 => {
                    let want = model.get(k);
                    let got = cache.get(&terms, N);
                    prop_assert_eq!(
                        got.as_ref().map(|r| r.top[0].0),
                        want,
                        "step {}: get({}) hit/miss or value diverged",
                        step,
                        k
                    );
                }
                7..=13 => {
                    cache.insert(&terms, N, make_resp(k, model.epoch));
                    model.insert(k);
                }
                _ => {
                    model.invalidate();
                    prop_assert_eq!(cache.invalidate_epoch(), model.epoch);
                }
            }

            let s = cache.stats();
            prop_assert!(
                model.stats_match(&s),
                "step {}: counters diverged\n cache: {:?}\n model: hits={} misses={} ins={} ev={} bytes={} entries={}",
                step, s, model.hits, model.misses, model.insertions,
                model.evictions, model.bytes, model.entries.len()
            );
            prop_assert!(
                s.bytes <= bound as u64,
                "step {}: resident {} bytes exceed the {} bound",
                step, s.bytes, bound
            );
            prop_assert_eq!(cache.len(), model.entries.len());

            // Membership, key by key: peek sees exactly the model's
            // *current-epoch* entries (stale residents are invisible), so
            // any wrong LRU victim shows up as a membership disagreement.
            for key in 0..KEYS {
                let expect = model
                    .entries
                    .get(&key)
                    .filter(|e| e.epoch == model.epoch)
                    .map(|e| e.epoch);
                prop_assert_eq!(
                    cache.peek(&[u32::from(key)], N),
                    expect,
                    "step {}: membership diverged on key {}",
                    step,
                    key
                );
            }
        }
    }
}
