//! The result-cache differential oracle: a cached serving session,
//! driven through arbitrary interleavings of hits, misses, capacity
//! evictions, and epoch invalidations, must return answers
//! **bit-identical** to an identical session with no cache — position
//! for position, score bit for score bit. The cache may only ever
//! change *where* an answer comes from, never what it is.

use std::sync::Arc;

use moa_corpus::{generate_queries, Collection, CollectionConfig, DfBias, Query, QueryConfig};
use moa_ir::InvertedIndex;
use moa_serve::{
    approx_entry_bytes, AdmissionPolicy, BatchQuery, CacheConfig, QueryResponse, ServeConfig,
    ServeSession, ShardSpec,
};

fn fixture() -> (Arc<InvertedIndex>, Vec<Query>) {
    let c = Collection::generate(CollectionConfig::tiny()).expect("valid preset");
    let idx = Arc::new(InvertedIndex::from_collection(&c));
    let queries = generate_queries(
        &c,
        &QueryConfig {
            num_queries: 12,
            bias: DfBias::TrecLike { high_df_mix: 0.4 },
            seed: 0xCAC4E,
            ..QueryConfig::default()
        },
    )
    .expect("valid workload");
    (idx, queries)
}

fn session(idx: &Arc<InvertedIndex>, cache: Option<CacheConfig>) -> ServeSession {
    let config = ServeConfig {
        shard_spec: ShardSpec::Range { shards: 2 },
        sparse_block: Some(64),
        cache,
        // Propagation off: the cross-shard threshold changes how many
        // postings a query scans depending on thread timing, and this
        // oracle compares *work counters* between two sessions. Answers
        // are propagation-independent; making the work deterministic
        // keeps the cached-scans-less-than-fresh assertion exact.
        propagate: false,
        ..ServeConfig::planned(2)
    };
    ServeSession::new(Arc::clone(idx), config).expect("tiny index shards cleanly")
}

fn bits(top: &[(u32, f64)]) -> Vec<(u32, u64)> {
    top.iter().map(|&(d, s)| (d, s.to_bits())).collect()
}

/// A deterministic Zipf-flavored repeat schedule over `k` distinct
/// queries: low indices recur constantly, the tail appears rarely —
/// exactly the cross-batch repetition the cache exists for.
fn schedule(len: usize, k: usize) -> Vec<usize> {
    (0..len)
        .map(|i| {
            let r = (i * 2654435761) % 16;
            match r {
                0..=7 => 0,          // the head: half of all traffic
                8..=11 => 1 + i % 2, // warm middle
                _ => 3 + (i * 7) % (k - 3),
            }
        })
        .collect()
}

#[test]
fn cached_answers_are_bit_identical_under_hits_misses_evictions_and_invalidations() {
    let (idx, queries) = fixture();
    // A deliberately tiny cache (one lock shard, room for only a few
    // entries) so capacity evictions actually interleave with the hits.
    let entry = approx_entry_bytes(
        &queries[0].terms,
        &QueryResponse {
            top: vec![(0, 0.0); 10],
            work: Default::default(),
            partial: false,
            shards: Vec::new(),
        },
    );
    let mut cached = session(
        &idx,
        Some(CacheConfig {
            capacity_bytes: entry * 4,
            shards: 1,
        }),
    );
    let mut fresh = session(&idx, None);

    let plan = schedule(96, queries.len());
    for (round, chunk) in plan.chunks(4).enumerate() {
        // Invalidation storm interleaved with ordinary traffic: every
        // third batch flash-invalidates first.
        if round % 3 == 2 {
            let epoch = cached.invalidate_epoch().expect("cache configured");
            assert!(epoch > 0);
        }
        let batch: Vec<BatchQuery> = chunk
            .iter()
            .map(|&qi| BatchQuery {
                terms: queries[qi].terms.clone(),
                n: 10,
            })
            .collect();
        let got = cached.submit_many(&batch).expect("admission blocks");
        let want = fresh.submit_many(&batch).expect("admission blocks");
        for (pos, (g, w)) in got.responses.iter().zip(&want.responses).enumerate() {
            let g = g.as_ref().expect("no faults in play");
            let w = w.as_ref().expect("no faults in play");
            assert_eq!(
                bits(&g.top),
                bits(&w.top),
                "round {round} position {pos} diverged from fresh execution"
            );
            assert!(!g.partial && !w.partial);
        }
        let stats = cached.result_cache().expect("cache configured").stats();
        assert!(
            stats.bytes <= entry as u64 * 4,
            "round {round}: resident {} bytes exceed the bound",
            stats.bytes
        );
    }

    // The interleaving genuinely exercised every regime.
    let cache_stats = cached.result_cache().expect("cache configured").stats();
    assert!(cache_stats.hits > 0, "schedule produced no hits");
    assert!(cache_stats.misses > 0, "schedule produced no misses");
    assert!(
        cache_stats.evictions > 0,
        "capacity never evicted: the bound was not tight enough to test"
    );
    let stats = cached.stats();
    assert!(stats.queries_cache_hit > 0);
    assert_eq!(
        stats.queries_served,
        plan.len(),
        "every position answered exactly once"
    );
    // The fresh session scanned postings for every position; the cached
    // one skipped the hits entirely.
    assert!(stats.postings_scanned < fresh.stats().postings_scanned);
    // Work counters on a hit replay the original execution's report.
    assert!(stats.plans_memoized > 0, "planned shards memoized nothing");
    assert!(cached.shutdown().is_clean());
    assert!(fresh.shutdown().is_clean());
}

#[test]
fn fully_cached_batches_never_touch_the_pool() {
    let (idx, queries) = fixture();
    let mut s = session(&idx, Some(CacheConfig::default()));
    let batch: Vec<BatchQuery> = queries[..3]
        .iter()
        .map(|q| BatchQuery {
            terms: q.terms.clone(),
            n: 5,
        })
        .collect();
    let first = s.submit_many(&batch).expect("admission blocks");
    let admitted_before = s.metrics().counter("serve.batches").get();
    let second = s.submit_many(&batch).expect("hits bypass admission");
    let admitted_after = s.metrics().counter("serve.batches").get();
    assert_eq!(
        admitted_before, admitted_after,
        "a fully cached batch must submit nothing to the pool"
    );
    for (a, b) in first.responses.iter().zip(&second.responses) {
        let a = a.as_ref().expect("ok");
        let b = b.as_ref().expect("ok");
        assert_eq!(bits(&a.top), bits(&b.top));
    }
    assert_eq!(s.stats().queries_cache_hit, 3);
    // EXPLAIN sees the resident entry without perturbing it.
    let text = s.explain(&queries[0].terms, 5).expect("explain renders");
    assert!(text.contains("cache: HIT(epoch=0)"), "explain: {text}");
    s.invalidate_epoch();
    let text = s.explain(&queries[0].terms, 5).expect("explain renders");
    assert!(text.contains("cache: MISS"), "explain: {text}");
}

#[test]
fn partial_responses_are_never_cached() {
    let (idx, queries) = fixture();
    let config = ServeConfig {
        shard_spec: ShardSpec::Range { shards: 2 },
        sparse_block: Some(64),
        cache: Some(CacheConfig::default()),
        deadline: Some(std::time::Duration::from_nanos(1)),
        admission: AdmissionPolicy::Block,
        ..ServeConfig::planned(2)
    };
    let mut s = ServeSession::new(Arc::clone(&idx), config).expect("builds");
    let q = &queries[0];
    let first = s.submit(&q.terms, 10).expect("ok");
    assert!(first.partial, "a 1ns budget must expire");
    let _second = s.submit(&q.terms, 10).expect("ok");
    assert_eq!(
        s.stats().queries_cache_hit,
        0,
        "a truncated prefix must never be replayed as the full answer"
    );
    assert_eq!(s.result_cache().expect("cache configured").len(), 0);
}
