//! Counting-allocator proof that the result cache's steady-state hit
//! path allocates nothing.
//!
//! The cache PR's contract: once an answer is resident, every further
//! [`ResultCache::get`] hit is an inline hash, a hash-chain probe against
//! stored keys, an `Arc` clone, and an intrusive-list promotion — **zero
//! heap allocations**, including the probationary → protected promotion
//! and any protected-share demotions it triggers. The same
//! `#[global_allocator]` wrapper as `moa-ir`'s `alloc_steady_state` test
//! counts every allocation; the measured hit loop must leave the counter
//! untouched.
//!
//! (Integration test so the counting allocator owns the whole binary;
//! the crate's unit tests keep the system allocator.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use moa_ir::{ExecReport, RankingModel};
use moa_serve::{CacheConfig, QueryResponse, ResultCache};

struct CountingAlloc;

// Per-thread counter: the libtest harness thread allocates (output
// buffering) concurrently with the test thread, so a process-global
// counter would flake. The const initializer keeps thread-local access
// itself allocation-free.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn count_one() {
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

fn resp(doc: u32, width: usize) -> Arc<QueryResponse> {
    Arc::new(QueryResponse {
        top: (0..width)
            .map(|i| (doc + i as u32, 1.0 / (i + 1) as f64))
            .collect(),
        work: ExecReport::default(),
        partial: false,
        shards: Vec::new(),
    })
}

#[test]
fn warm_cache_hits_allocate_nothing() {
    let cache = ResultCache::new(
        CacheConfig {
            capacity_bytes: 1 << 20,
            shards: 4,
        },
        RankingModel::default(),
    );

    // Resident working set: mixed key widths and answer sizes across
    // every lock shard.
    let keys: Vec<(Vec<u32>, usize)> = (0..16u32)
        .map(|k| {
            let terms: Vec<u32> = (0..1 + k as usize % 4).map(|t| k * 10 + t as u32).collect();
            (terms, 5 + k as usize % 20)
        })
        .collect();
    for (i, (terms, n)) in keys.iter().enumerate() {
        cache.insert(terms, *n, resp(i as u32 * 100, 10 + i % 30));
    }

    // Warm-up round: the first hit on each key promotes probationary →
    // protected; later rounds exercise the protected fast path too. Both
    // regimes sit inside the measured loop regardless — neither may
    // allocate — but warming first also proves the *very first* re-touch
    // after the measurement baseline is clean.
    for (terms, n) in &keys {
        assert!(cache.get(terms, *n).is_some(), "warm-up key went missing");
    }

    let before = allocations();
    let mut checksum = 0usize;
    for _ in 0..64 {
        for (terms, n) in &keys {
            let hit = cache.get(terms, *n).expect("resident key");
            checksum += hit.top.len();
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state cache hits performed {} heap allocations",
        after - before
    );
    assert!(checksum > 0, "the measured loop really served hits");
    let stats = cache.stats();
    assert_eq!(stats.hits, (64 + 1) * keys.len() as u64);
    assert_eq!(stats.misses, 0);
}
