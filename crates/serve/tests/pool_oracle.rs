//! The worker-pool differential oracle: the persistent-pool serving
//! runtime is pinned **bit-identical** to the deterministic sequential
//! schedule and to a naive collection-scan oracle across the full matrix
//! — every pinned physical plan × 3 ranking models × shard counts ×
//! propagation on/off — and its drain-on-shutdown contract is proven,
//! not assumed: a batch admitted before teardown is fully answered, and
//! the scratch arenas handed back by `shutdown` carry lifetime query
//! counts equal to the whole stream (one arena per shard served
//! everything; nothing was rebuilt mid-stream).

use std::sync::Arc;

use moa_corpus::{generate_queries, Collection, CollectionConfig, DfBias, Query, QueryConfig};
use moa_ir::{InvertedIndex, PhysicalPlan, RankingModel, Strategy, SwitchPolicy};
use moa_serve::{BatchQuery, ServeConfig, ServeMode, ServeSession, ShardSpec};

fn fixture() -> (Collection, Arc<InvertedIndex>, Vec<Query>) {
    let c = Collection::generate(CollectionConfig::tiny()).expect("valid preset");
    let idx = Arc::new(InvertedIndex::from_collection(&c));
    let queries = generate_queries(
        &c,
        &QueryConfig {
            num_queries: 8,
            bias: DfBias::TrecLike { high_df_mix: 0.4 },
            seed: 0x51A2,
            ..QueryConfig::default()
        },
    )
    .expect("valid workload");
    (c, idx, queries)
}

fn session(
    idx: &Arc<InvertedIndex>,
    shards: usize,
    mode: ServeMode,
    model: RankingModel,
    propagate: bool,
) -> ServeSession {
    let config = ServeConfig {
        shard_spec: ShardSpec::Range { shards },
        model,
        mode,
        propagate,
        sparse_block: Some(64),
        // A strict switch policy: consult fragment B whenever any
        // B-resident query term carries positive score mass. The default
        // 0.2 share threshold is the paper's quality heuristic — under it
        // `frag_switch` may legitimately drop low-mass B terms, which
        // would break this suite's oracle-exactness contract on workloads
        // that happen to produce such queries.
        policy: SwitchPolicy { max_b_share: 0.0 },
        ..ServeConfig::planned(shards)
    };
    ServeSession::new(Arc::clone(idx), config).expect("tiny index shards cleanly")
}

fn models() -> Vec<RankingModel> {
    vec![
        RankingModel::TfIdf,
        RankingModel::HiemstraLm { lambda: 0.15 },
        RankingModel::Bm25 { k1: 1.2, b: 0.75 },
    ]
}

/// Every physical plan the pool must answer identically to the
/// sequential schedule (exact plans *and* the approximate fragmented
/// strategies, which partition consistently).
fn pinned_plans() -> Vec<PhysicalPlan> {
    vec![
        PhysicalPlan::PrunedDaat,
        PhysicalPlan::ExhaustiveDaat,
        PhysicalPlan::SetAtATime,
        PhysicalPlan::Fragmented(Strategy::FullScan),
        PhysicalPlan::Fragmented(Strategy::AOnly { use_a_index: false }),
        PhysicalPlan::Fragmented(Strategy::AOnly { use_a_index: true }),
        PhysicalPlan::Fragmented(Strategy::Switch { use_b_index: false }),
        PhysicalPlan::Fragmented(Strategy::Switch { use_b_index: true }),
    ]
}

/// The plans whose top-N is guaranteed bit-identical to the naive
/// full-scan oracle (everything but the lossy A-only ranking; the switch
/// strategies are exact under the strict policy [`session`] pins).
fn exact_plans() -> Vec<PhysicalPlan> {
    pinned_plans()
        .into_iter()
        .filter(|p| !matches!(p, PhysicalPlan::Fragmented(Strategy::AOnly { .. })))
        .collect()
}

/// Scores every matching document by scanning the *collection's* raw
/// postings — independent of the index, shards, pool, and merge.
fn naive_topn(
    collection: &Collection,
    model: RankingModel,
    terms: &[u32],
    n: usize,
) -> Vec<(u32, f64)> {
    let stats = moa_ir::CollectionStats {
        num_docs: collection.num_docs(),
        avg_doc_len: collection.total_tokens() as f64 / collection.num_docs().max(1) as f64,
        total_tokens: collection.total_tokens(),
    };
    let mut scores = vec![0.0f64; collection.num_docs()];
    let mut touched = vec![false; collection.num_docs()];
    for &term in terms {
        let df = collection.df()[term as usize];
        let cf = collection.cf()[term as usize];
        for p in collection.postings_for_term(term) {
            let doc_len = collection.doc_len()[p.doc as usize];
            scores[p.doc as usize] += model.term_weight(p.tf, df, cf, doc_len, &stats);
            touched[p.doc as usize] = true;
        }
    }
    let mut all: Vec<(u32, f64)> = (0..collection.num_docs() as u32)
        .filter(|&d| touched[d as usize])
        .map(|d| (d, scores[d as usize]))
        .collect();
    all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(n);
    all
}

#[test]
fn pooled_batches_match_sequential_and_oracle_for_every_plan_model_and_shard_count() {
    let (c, idx, queries) = fixture();
    let batch: Vec<BatchQuery> = queries
        .iter()
        .take(5)
        .map(|q| BatchQuery {
            terms: q.terms.clone(),
            n: 10,
        })
        .collect();
    for model in models() {
        for shards in [1usize, 2, 4] {
            for propagate in [false, true] {
                for plan in pinned_plans() {
                    let mode = ServeMode::Fixed(plan);
                    let mut pooled = session(&idx, shards, mode, model, propagate);
                    let mut reference = session(&idx, shards, mode, model, propagate);
                    let got = pooled
                        .submit_many(&batch)
                        .expect("blocking admission never sheds");
                    let want = reference.submit_many_sequential(&batch);
                    for (qi, (g, w)) in got
                        .expect_ok()
                        .iter()
                        .zip(want.expect_ok().iter())
                        .enumerate()
                    {
                        assert_eq!(
                            g.top,
                            w.top,
                            "{model:?} {} x{shards} propagate={propagate} q{qi}: pool != sequential",
                            plan.name()
                        );
                    }
                    if exact_plans().contains(&plan) {
                        for (qi, (q, g)) in batch.iter().zip(got.expect_ok().iter()).enumerate() {
                            let oracle = naive_topn(&c, model, &q.terms, q.n);
                            assert_eq!(
                                g.top,
                                oracle,
                                "{model:?} {} x{shards} propagate={propagate} q{qi}: pool != naive oracle",
                                plan.name()
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn planned_pool_matches_the_naive_oracle_across_shard_counts() {
    // The production posture: per-shard planners picking freely,
    // propagation on, pool admission. Whatever operators win, answers
    // must be the oracle's.
    let (c, idx, queries) = fixture();
    for shards in [1usize, 3, 4] {
        let mut svc = session(
            &idx,
            shards,
            ServeMode::Planned,
            RankingModel::default(),
            true,
        );
        for q in queries.iter().take(6) {
            for n in [1usize, 10, c.num_docs()] {
                let got = svc.submit(&q.terms, n).expect("in-vocabulary query");
                let oracle = naive_topn(&c, RankingModel::default(), &q.terms, n);
                assert_eq!(
                    got.top, oracle,
                    "planned x{shards} n={n} terms {:?}",
                    q.terms
                );
            }
        }
    }
}

#[test]
fn coalesced_duplicates_match_per_position_execution_bit_for_bit() {
    // Admission coalescing: a Zipf-skewed batch carries duplicate
    // queries; the pool executes each distinct (terms, n) once and fans
    // the answer out. Every position's response must equal the
    // non-coalescing sequential schedule executing that position
    // individually — including same-terms queries that differ only in n,
    // which must NOT coalesce with each other.
    let (c, idx, queries) = fixture();
    let hot = &queries[0];
    let warm = &queries[1];
    let batch: Vec<BatchQuery> = vec![
        BatchQuery {
            terms: hot.terms.clone(),
            n: 10,
        },
        BatchQuery {
            terms: warm.terms.clone(),
            n: 10,
        },
        BatchQuery {
            terms: hot.terms.clone(),
            n: 10,
        }, // dup of position 0
        BatchQuery {
            terms: hot.terms.clone(),
            n: 3,
        }, // same terms, different n
        BatchQuery {
            terms: hot.terms.clone(),
            n: 10,
        }, // dup of position 0
        BatchQuery {
            terms: warm.terms.clone(),
            n: 10,
        }, // dup of position 1
    ];
    for shards in [1usize, 3] {
        let mut pooled = session(
            &idx,
            shards,
            ServeMode::Planned,
            RankingModel::default(),
            true,
        );
        let mut reference = session(
            &idx,
            shards,
            ServeMode::Planned,
            RankingModel::default(),
            true,
        );
        let got = pooled
            .submit_many(&batch)
            .expect("blocking admission never sheds");
        let want = reference.submit_many_sequential(&batch);
        assert_eq!(got.responses.len(), batch.len());
        for (qi, (g, w)) in got
            .expect_ok()
            .iter()
            .zip(want.expect_ok().iter())
            .enumerate()
        {
            assert_eq!(g.top, w.top, "x{shards} q{qi}: coalesced != per-position");
            let oracle = naive_topn(&c, RankingModel::default(), &batch[qi].terms, batch[qi].n);
            assert_eq!(g.top, oracle, "x{shards} q{qi}: coalesced != naive oracle");
        }
        // 6 positions, 3 distinct executions (hot n=10, warm n=10, hot n=3).
        assert_eq!(pooled.stats().queries_served, batch.len());
        assert_eq!(pooled.stats().queries_coalesced, 3);
        // The non-coalescing reference executed (and scanned) strictly
        // more than the pool performed.
        assert!(pooled.stats().postings_scanned < reference.stats().postings_scanned);
        assert_eq!(reference.stats().queries_coalesced, 0);
    }
}

#[test]
fn streaming_enqueue_collect_overlap_matches_one_shot_submission() {
    // Two batches in flight at once (the E18 pool driver's pipelining):
    // admission order is preserved per worker, and each collected batch
    // is identical to an isolated submission of the same queries.
    let (_, idx, queries) = fixture();
    let batches: Vec<Vec<BatchQuery>> = queries
        .chunks(2)
        .map(|qs| {
            qs.iter()
                .map(|q| BatchQuery {
                    terms: q.terms.clone(),
                    n: 10,
                })
                .collect()
        })
        .collect();
    let mut streamed = session(
        &idx,
        4,
        ServeMode::Fixed(PhysicalPlan::PrunedDaat),
        RankingModel::default(),
        true,
    );
    let mut oneshot = session(
        &idx,
        4,
        ServeMode::Fixed(PhysicalPlan::PrunedDaat),
        RankingModel::default(),
        true,
    );
    let mut pending = std::collections::VecDeque::new();
    let mut collected = Vec::new();
    for batch in &batches {
        pending.push_back(streamed.enqueue(batch).expect("blocking admission"));
        // Keep two batches in flight: collect the older one only after
        // the newer is already admitted.
        if pending.len() > 2 {
            let report = streamed.collect(pending.pop_front().expect("non-empty"));
            collected.push(report);
        }
    }
    while let Some(p) = pending.pop_front() {
        collected.push(streamed.collect(p));
    }
    assert_eq!(collected.len(), batches.len());
    for (bi, (batch, report)) in batches.iter().zip(collected.iter()).enumerate() {
        let want = oneshot
            .submit_many(batch)
            .expect("blocking admission never sheds");
        assert_eq!(report.responses.len(), batch.len());
        for (qi, (g, w)) in report
            .expect_ok()
            .iter()
            .zip(want.expect_ok().iter())
            .enumerate()
        {
            assert_eq!(g.top, w.top, "batch {bi} q{qi}: streamed != one-shot");
        }
    }
    let stats = streamed.stats();
    assert_eq!(stats.queries_served, queries.len());
    assert_eq!(stats.batches_served, batches.len());
}

#[test]
fn shutdown_drains_in_flight_batches_and_returns_the_calibrated_shards() {
    // The teardown contract, proven end to end: a batch enqueued before
    // shutdown is still fully answered afterwards (no query dropped),
    // and the shards handed back are the *same* engines that served the
    // stream — their scratch arenas' lifetime query counters equal the
    // total number of DAAT queries each worker saw.
    let (_, idx, queries) = fixture();
    let shards = 3usize;
    // PrunedDaat pins every query through the per-shard scratch arena,
    // so the arenas' lifetime counters account for the whole stream.
    let mut svc = session(
        &idx,
        shards,
        ServeMode::Fixed(PhysicalPlan::PrunedDaat),
        RankingModel::default(),
        true,
    );
    let batch: Vec<BatchQuery> = queries
        .iter()
        .map(|q| BatchQuery {
            terms: q.terms.clone(),
            n: 10,
        })
        .collect();
    // A warm batch through the normal path...
    let warm = svc
        .submit_many(&batch)
        .expect("blocking admission never sheds");
    // ...then one admitted but NOT collected before teardown begins.
    let in_flight = svc.enqueue(&batch).expect("blocking admission");
    let outcome = svc.shutdown();
    assert!(
        outcome.is_clean(),
        "no worker panicked: {:?}",
        outcome.panics
    );
    let engines = outcome.shards;
    // The drained responses match the warm replay answer for answer.
    let drained = in_flight.wait();
    assert_eq!(drained.responses.len(), batch.len());
    for (qi, (g, w)) in drained
        .expect_ok()
        .iter()
        .zip(warm.expect_ok().iter())
        .enumerate()
    {
        assert_eq!(g.top, w.top, "q{qi}: drained batch diverged");
    }
    // Same engines back, in shard order, each having served every query
    // of both batches out of one persistent arena.
    assert_eq!(engines.len(), shards);
    for (s, shard) in engines.iter().enumerate() {
        assert_eq!(shard.id(), s);
        assert_eq!(
            shard.scratch_queries(),
            2 * batch.len() as u64,
            "shard {s}: scratch arena did not serve the whole stream"
        );
    }
}
