//! Property test pinning admission-time request coalescing against
//! adversarial duplicate batches.
//!
//! The pool coalesces batch positions with identical `(terms, n)` into
//! one execution and fans the shared answer back out
//! ([`moa_serve::ShardPool::submit`]). The property: for *any* batch —
//! duplicates in any arrangement, the same term set in permuted order
//! (which must NOT coalesce: the key is the exact term sequence, and
//! `f64` summation order is semantic), the same terms under a different
//! `n` (must not coalesce either), and empty queries included — the
//! coalesced answers are **bit-identical**, position for position, to
//! the non-coalescing sequential schedule executing every position
//! individually.

use std::sync::{Arc, Mutex, OnceLock};

use proptest::prelude::*;

use moa_corpus::{generate_queries, Collection, CollectionConfig, DfBias, Query, QueryConfig};
use moa_ir::{InvertedIndex, PhysicalPlan, RankingModel};
use moa_serve::{BatchQuery, ServeConfig, ServeMode, ServeSession, ShardSpec};

struct Ctx {
    pooled: ServeSession,
    reference: ServeSession,
    queries: Vec<Query>,
}

/// One fixture for every case: the index build dominates a case's cost,
/// and under a pinned plan both sessions are pure in their answers, so
/// reuse cannot leak state between cases.
fn ctx() -> &'static Mutex<Ctx> {
    static CTX: OnceLock<Mutex<Ctx>> = OnceLock::new();
    CTX.get_or_init(|| {
        let c = Collection::generate(CollectionConfig::tiny()).expect("valid preset");
        let idx = Arc::new(InvertedIndex::from_collection(&c));
        let queries = generate_queries(
            &c,
            &QueryConfig {
                num_queries: 6,
                bias: DfBias::TrecLike { high_df_mix: 0.4 },
                seed: 0xC0A1,
                ..QueryConfig::default()
            },
        )
        .expect("valid workload");
        let session = || {
            let config = ServeConfig {
                shard_spec: ShardSpec::Range { shards: 3 },
                model: RankingModel::default(),
                mode: ServeMode::Fixed(PhysicalPlan::PrunedDaat),
                sparse_block: Some(64),
                ..ServeConfig::planned(3)
            };
            ServeSession::new(Arc::clone(&idx), config).expect("tiny index shards cleanly")
        };
        Mutex::new(Ctx {
            pooled: session(),
            reference: session(),
            queries,
        })
    })
}

const N_CHOICES: [usize; 3] = [1, 5, 10];

/// Decode one generated position: `slot == queries.len()` is the empty
/// query; `reverse` permutes the term order (same term *set*, different
/// coalescing key and different `f64` summation order).
fn decode(queries: &[Query], slot: usize, n_sel: usize, reverse: bool) -> BatchQuery {
    let mut terms = if slot == queries.len() {
        Vec::new()
    } else {
        queries[slot].terms.clone()
    };
    if reverse {
        terms.reverse();
    }
    BatchQuery {
        terms,
        n: N_CHOICES[n_sel],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Coalesced execution of an arbitrary duplicate-laden batch is
    /// bit-identical, per position, to executing every position
    /// individually on the deterministic sequential schedule.
    #[test]
    fn coalesced_batches_match_per_position_execution_bit_for_bit(
        shape in proptest::collection::vec(
            (0usize..=6, 0usize..3, 0usize..2),
            0..12,
        ),
    ) {
        let mut guard = ctx().lock().expect("no prior case panicked");
        let Ctx { pooled, reference, queries } = &mut *guard;
        let batch: Vec<BatchQuery> = shape
            .iter()
            .map(|&(slot, n_sel, rev)| decode(queries, slot.min(queries.len()), n_sel, rev == 1))
            .collect();
        let got = pooled
            .submit_many(&batch)
            .expect("blocking admission never sheds");
        let want = reference.submit_many_sequential(&batch);
        prop_assert_eq!(got.responses.len(), batch.len());
        prop_assert_eq!(want.responses.len(), batch.len());
        for (qi, (g, w)) in got.responses.iter().zip(want.responses.iter()).enumerate() {
            match (g, w) {
                (Ok(g), Ok(w)) => {
                    prop_assert!(!g.partial, "q{}: no deadline is configured", qi);
                    prop_assert_eq!(
                        g.top.len(),
                        w.top.len(),
                        "q{} (terms {:?}, n {}): result sizes diverged",
                        qi,
                        &batch[qi].terms,
                        batch[qi].n
                    );
                    for (ri, (a, b)) in g.top.iter().zip(w.top.iter()).enumerate() {
                        prop_assert_eq!(a.0, b.0, "q{} rank {}: docs diverged", qi, ri);
                        prop_assert_eq!(
                            a.1.to_bits(),
                            b.1.to_bits(),
                            "q{} rank {} doc {}: {:e} != {:e}",
                            qi, ri, a.0, a.1, b.1
                        );
                    }
                }
                (g, w) => prop_assert_eq!(
                    g, w,
                    "q{} (terms {:?}, n {}): outcomes diverged",
                    qi,
                    &batch[qi].terms,
                    batch[qi].n
                ),
            }
        }
    }
}
