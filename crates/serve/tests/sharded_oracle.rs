//! The sharded differential oracle: merged shard execution is pinned
//! **bit-identical** to single-shard execution across the full matrix —
//! every exact physical strategy × 3 ranking models × N ∈ {1, 10,
//! ≥ matches} × shard counts × both partitionings × propagation on/off.
//! The approximate fragmented strategies are pinned too: document
//! partitioning preserves the df-fragment split (residency is decided on
//! the global catalog), so even the unsafe A-only ranking must come out
//! of the merge unchanged.

use std::sync::Arc;

use moa_corpus::{generate_queries, Collection, CollectionConfig, DfBias, Query, QueryConfig};
use moa_ir::{FragmentSpec, InvertedIndex, PhysicalPlan, RankingModel, Strategy, SwitchPolicy};
use moa_serve::{BatchQuery, ServeMode, ShardSpec, ShardedEngine};

fn fixture() -> (Collection, Arc<InvertedIndex>, Vec<Query>) {
    let c = Collection::generate(CollectionConfig::tiny()).expect("valid preset");
    let idx = Arc::new(InvertedIndex::from_collection(&c));
    let queries = generate_queries(
        &c,
        &QueryConfig {
            num_queries: 8,
            bias: DfBias::TrecLike { high_df_mix: 0.4 },
            seed: 0x51A2,
            ..QueryConfig::default()
        },
    )
    .expect("valid workload");
    (c, idx, queries)
}

fn engine(idx: &Arc<InvertedIndex>, spec: ShardSpec) -> ShardedEngine {
    ShardedEngine::build(
        Arc::clone(idx),
        spec,
        FragmentSpec::TermFraction(0.9),
        RankingModel::default(),
        SwitchPolicy::default(),
        Some(64),
    )
    .expect("tiny index shards cleanly")
}

fn engine_for_model(
    idx: &Arc<InvertedIndex>,
    spec: ShardSpec,
    model: RankingModel,
) -> ShardedEngine {
    ShardedEngine::build(
        Arc::clone(idx),
        spec,
        FragmentSpec::TermFraction(0.9),
        model,
        SwitchPolicy::default(),
        Some(64),
    )
    .expect("tiny index shards cleanly")
}

fn models() -> Vec<RankingModel> {
    vec![
        RankingModel::TfIdf,
        RankingModel::HiemstraLm { lambda: 0.15 },
        RankingModel::Bm25 { k1: 1.2, b: 0.75 },
    ]
}

/// Every physical plan whose sharded merge must be bit-identical to the
/// same plan on one shard (exact plans *and* the approximate fragmented
/// strategies, which partition consistently).
fn pinned_plans() -> Vec<PhysicalPlan> {
    vec![
        PhysicalPlan::PrunedDaat,
        PhysicalPlan::ExhaustiveDaat,
        PhysicalPlan::SetAtATime,
        PhysicalPlan::Fragmented(Strategy::FullScan),
        PhysicalPlan::Fragmented(Strategy::AOnly { use_a_index: false }),
        PhysicalPlan::Fragmented(Strategy::AOnly { use_a_index: true }),
        PhysicalPlan::Fragmented(Strategy::Switch { use_b_index: false }),
        PhysicalPlan::Fragmented(Strategy::Switch { use_b_index: true }),
    ]
}

#[test]
fn every_strategy_model_and_n_is_bit_identical_across_shard_counts() {
    let (c, idx, queries) = fixture();
    for model in models() {
        let mut single = engine_for_model(&idx, ShardSpec::Range { shards: 1 }, model);
        for shards in [2usize, 3, 5] {
            let mut sharded = engine_for_model(&idx, ShardSpec::Range { shards }, model);
            for q in queries.iter().take(5) {
                for n in [1usize, 10, c.num_docs()] {
                    for plan in pinned_plans() {
                        let want = single
                            .execute(&q.terms, n, ServeMode::Fixed(plan), false)
                            .expect("in-vocabulary query");
                        let got = sharded
                            .execute(&q.terms, n, ServeMode::Fixed(plan), true)
                            .expect("in-vocabulary query");
                        assert_eq!(
                            got.top,
                            want.top,
                            "{model:?} {} x{shards} n={n} terms {:?}",
                            plan.name(),
                            q.terms
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn round_robin_partitioning_is_bit_identical_too() {
    let (c, idx, queries) = fixture();
    let mut single = engine(&idx, ShardSpec::Range { shards: 1 });
    let mut sharded = engine(&idx, ShardSpec::RoundRobin { shards: 4 });
    for q in queries.iter().take(6) {
        for n in [1usize, 10, c.num_docs()] {
            let want = single
                .execute(&q.terms, n, ServeMode::Planned, false)
                .expect("in-vocabulary query");
            let got = sharded
                .execute(&q.terms, n, ServeMode::Planned, true)
                .expect("in-vocabulary query");
            assert_eq!(got.top, want.top, "round-robin n={n} terms {:?}", q.terms);
        }
    }
}

#[test]
fn propagation_ablation_preserves_answers_for_every_plan() {
    let (_, idx, queries) = fixture();
    let mut with = engine(&idx, ShardSpec::Range { shards: 4 });
    let mut without = engine(&idx, ShardSpec::Range { shards: 4 });
    for q in queries.iter().take(5) {
        for plan in pinned_plans() {
            let a = with
                .execute(&q.terms, 10, ServeMode::Fixed(plan), true)
                .expect("in-vocabulary query");
            let b = without
                .execute(&q.terms, 10, ServeMode::Fixed(plan), false)
                .expect("in-vocabulary query");
            assert_eq!(a.top, b.top, "{} terms {:?}", plan.name(), q.terms);
        }
    }
}

#[test]
fn batched_and_planned_execution_matches_the_pinned_reference() {
    // The production posture (planner per shard, propagation on, batched
    // submission) answers exactly like the pinned exhaustive reference.
    let (c, idx, queries) = fixture();
    let mut reference = engine(&idx, ShardSpec::Range { shards: 1 });
    let mut serving = engine(&idx, ShardSpec::Range { shards: 4 });
    let batch: Vec<BatchQuery> = queries
        .iter()
        .map(|q| BatchQuery {
            terms: q.terms.clone(),
            n: 10,
        })
        .collect();
    let responses = serving
        .execute_batch(&batch, ServeMode::Planned, true)
        .expect("in-vocabulary batch");
    assert_eq!(responses.len(), batch.len());
    for (i, q) in queries.iter().enumerate() {
        let want = reference
            .execute(
                &q.terms,
                10,
                ServeMode::Fixed(PhysicalPlan::ExhaustiveDaat),
                false,
            )
            .expect("in-vocabulary query");
        assert_eq!(responses[i].top, want.top, "query {i}");
        // Every shard reported, and the planner priced its pick.
        assert_eq!(responses[i].shards.len(), 4);
        for o in &responses[i].shards {
            assert!(o.est_cost.is_some());
        }
    }
    let _ = c;
}

#[test]
fn local_heaps_cover_the_merged_ranking() {
    // Whatever the gates pruned, the merged top-N must be drawn from the
    // union of the shard-local heaps — i.e. each merged entry appears in
    // exactly one shard's local top (partitioned documents).
    let (_, idx, queries) = fixture();
    let mut sharded = engine(&idx, ShardSpec::Range { shards: 4 });
    for q in queries.iter().take(6) {
        let resp = sharded
            .execute(&q.terms, 10, ServeMode::Planned, true)
            .expect("in-vocabulary query");
        for &(doc, score) in &resp.top {
            let holders: Vec<usize> = resp
                .shards
                .iter()
                .filter(|o| o.report.top.contains(&(doc, score)))
                .map(|o| o.shard)
                .collect();
            assert_eq!(
                holders.len(),
                1,
                "doc {doc} appears in shards {holders:?} (must be exactly one)"
            );
        }
    }
}
