//! Precomputed term scorers: the shared scoring kernel of all three
//! engine paths.
//!
//! [`RankingModel::term_weight`] re-derives per-term constants (idf, the
//! Hiemstra λ·|C|/((1−λ)·cf) factor, BM25 norm pieces) and the
//! per-document length normalization on *every posting*. That is fine for
//! a reference implementation, but it is exactly the per-element overhead
//! the paper's bounds-based program wants out of the hot loop. This module
//! splits the computation by variability:
//!
//! * [`TermScorer`] — per *query term* constants, computed once per query,
//! * [`ScoreKernel`] — per *index + model* state: a cached per-document
//!   length-norm table, computed once per searcher,
//!
//! so the per-posting work collapses to a multiply-add (plus one `ln`
//! where the model's formula demands it).
//!
//! **Bit-exactness contract:** [`RankingModel::term_weight`] *delegates*
//! to this module, so the naive paths and the precomputed hot paths
//! execute the identical floating-point operations and produce identical
//! `f64` results — the differential oracle can require exact equality
//! instead of tolerances. A proptest in `crates/ir/tests/proptest_scorer.rs`
//! pins this down.

use crate::blocks::{CursorBuf, BLOCK_LEN, MINIS_PER_BLOCK, MINI_LEN};
use crate::index::{CollectionStats, InvertedIndex};
use crate::ranking::RankingModel;

/// Per-query-term precomputed scoring constants for one ranking model.
///
/// Construct via [`ScoreKernel::term_scorer`] (hot path, shares the
/// kernel's statistics) or [`TermScorer::new`] (standalone). The weight of
/// a posting is [`TermScorer::weight`] given the document's norm from the
/// model's [`RankingModel::doc_norm`] — precomputed per document by
/// [`ScoreKernel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TermScorer {
    /// Degenerate term (df = 0): every weight is 0.
    Zero,
    /// TF-IDF: weight = `(1 + ln tf) · idf · norm`, norm = `1/√dl`.
    TfIdf {
        /// Precomputed `ln(N / df)`.
        idf: f64,
    },
    /// Hiemstra LM: weight = `ln(1 + factor · tf · norm)`, norm = `1/dl`.
    Hiemstra {
        /// Precomputed `λ·|C| / ((1−λ)·cf)`.
        factor: f64,
    },
    /// BM25: weight = `idf · tf·(k1+1) / (tf + norm)`,
    /// norm = `k1·(1 − b + b·dl/avgdl)`.
    Bm25 {
        /// Precomputed Robertson/Sparck-Jones idf.
        idf: f64,
        /// Precomputed `k1 + 1`.
        k1_plus_1: f64,
    },
}

impl TermScorer {
    /// Precompute the per-term constants of `model` for a term with the
    /// given document and collection frequencies.
    pub fn new(model: RankingModel, df: u32, cf: u64, stats: &CollectionStats) -> TermScorer {
        if df == 0 {
            return TermScorer::Zero;
        }
        let df = f64::from(df);
        let n = stats.num_docs as f64;
        match model {
            RankingModel::TfIdf => TermScorer::TfIdf { idf: (n / df).ln() },
            RankingModel::HiemstraLm { lambda } => {
                let lambda = lambda.clamp(1e-6, 1.0 - 1e-6);
                let cf = cf.max(1) as f64;
                let c = stats.total_tokens.max(1) as f64;
                TermScorer::Hiemstra {
                    factor: (lambda * c) / ((1.0 - lambda) * cf),
                }
            }
            RankingModel::Bm25 { k1, .. } => TermScorer::Bm25 {
                idf: ((n - df + 0.5) / (df + 0.5) + 1.0).ln(),
                k1_plus_1: k1 + 1.0,
            },
        }
    }

    /// The score contribution of a posting with term frequency `tf` in a
    /// document whose precomputed norm (see [`RankingModel::doc_norm`]) is
    /// `norm`. A multiply-add, plus one `ln` for TF-IDF and Hiemstra.
    #[inline]
    pub fn weight(&self, tf: u32, norm: f64) -> f64 {
        if tf == 0 {
            return 0.0;
        }
        let tf = f64::from(tf);
        match *self {
            TermScorer::Zero => 0.0,
            TermScorer::TfIdf { idf } => (1.0 + tf.ln()) * idf * norm,
            TermScorer::Hiemstra { factor } => (1.0 + factor * tf * norm).ln(),
            TermScorer::Bm25 { idf, k1_plus_1 } => idf * (tf * k1_plus_1) / (tf + norm),
        }
    }
}

/// Per-index, per-model scoring state: the cached per-document length-norm
/// table plus the collection statistics and the dl = 1 norm that upper
/// bounds sit on. Cheap to build — O(num_docs).
///
/// Build once per searcher ([`crate::eval::Searcher`],
/// [`crate::daat::DaatSearcher`], [`crate::fragment::FragSearcher`] all
/// own one); queries then pay only [`ScoreKernel::term_scorer`] per term
/// and [`ScoreKernel::weight`] per posting. The heavier per-term bound
/// tables live in [`ScoreBounds`], built only by the evaluators that
/// prune on them.
#[derive(Debug, Clone)]
pub struct ScoreKernel {
    model: RankingModel,
    stats: CollectionStats,
    /// `norms[doc]` = `model.doc_norm(doc_len(doc), stats)`.
    norms: Vec<f64>,
    /// The norm of the shortest plausible document (dl = 1) — every
    /// model's weight is maximized there, so analytic upper bounds
    /// (`max_tf` at dl = 1, the safety check's estimate) use it.
    norm_dl1: f64,
}

/// One block's skip-decision record: the block's last document id, the
/// exact maximum score contribution of any posting inside it, and eight
/// 4-bit quantized maxima — one per [`MINI_LEN`]-entry **mini-block** —
/// packed into four bytes that ride in the struct's former padding. The
/// record stays exactly 16 bytes, so a block decision still touches one
/// cache line of one contiguous array, and a *passed* block gate can be
/// refined against the candidate's mini-block without any further load.
///
/// Quantization is conservative round-up on the scale `max_score / 15`:
/// nibble `q` dequantizes to `max_score · q / 15`, and the builder bumps
/// `q` until the dequantized value covers the mini-block's exact maximum
/// (at `q = 15` it equals `max_score`, which covers by construction), so
/// `mini_bound(i) ≥` the exact maximum of mini-block `i ∕ 16`
/// **unconditionally** — refinement can only prune documents that provably
/// cannot enter the heap, never change a result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockBound {
    /// Last document id of the block (the horizon this bound covers).
    pub last_doc: u32,
    /// Packed 4-bit mini-block score maxima: nibble `m` (low nibble of
    /// byte `m / 2` for even `m`) covers postings `m·16 .. (m+1)·16` of
    /// the block. Quantized round-up against `max_score`.
    pub minis: [u8; 4],
    /// Exact maximum contribution of any posting in the block.
    pub max_score: f64,
}

/// `QUANT_STEP[q] = q / 15.0`, rounded once at compile time. A lookup
/// keeps the per-candidate dequantization a single multiply — a variable
/// `q / 15.0` at query time would be an fdiv in the gate's hot loop that
/// the compiler cannot strength-reduce.
const QUANT_STEP: [f64; 16] = {
    let mut t = [0.0f64; 16];
    let mut q = 0;
    while q < 16 {
        t[q] = q as f64 / 15.0;
        q += 1;
    }
    t
};

/// Dequantize a mini-block nibble against its block maximum. The one
/// floating-point expression both the builder's soundness guard and the
/// query-time refinement use, so the guard proves exactly the bound the
/// gates consult.
#[inline]
fn dequant(max_score: f64, nibble: u8) -> f64 {
    max_score * QUANT_STEP[usize::from(nibble) & 0xF]
}

/// Conservative round-up quantization of one mini-block maximum: the
/// smallest nibble whose dequantized value covers `mini_max`. The final
/// `while` absorbs any floating-point rounding in the ceil path — at
/// `q = 15` the dequantized bound is exactly `block_max`, which covers
/// every mini-block by construction.
fn quantize_mini(mini_max: f64, block_max: f64) -> u8 {
    if mini_max <= 0.0 {
        return 0;
    }
    let mut q = (((mini_max / block_max) * 15.0).ceil() as u8).min(15);
    while dequant(block_max, q) < mini_max {
        q += 1;
    }
    q
}

impl BlockBound {
    /// Upper bound on the contribution of the posting at offset
    /// `idx_in_block` (0..[`BLOCK_LEN`]) within this block: the
    /// dequantized 4-bit maximum of the posting's 16-entry mini-block.
    /// Always `≤ max_score` and always `≥` the exact maximum weight of
    /// any posting in that mini-block.
    #[inline]
    pub fn mini_bound(&self, idx_in_block: usize) -> f64 {
        let m = idx_in_block / MINI_LEN;
        let nibble = (self.minis[m >> 1] >> ((m & 1) * 4)) & 0xF;
        dequant(self.max_score, nibble)
    }
}

// The skip record must stay one 16-byte load: the nibbles ride in what
// was previously alignment padding.
const _: () = assert!(std::mem::size_of::<BlockBound>() == 16);

/// Per-term score upper bounds for one `(index, model)` pair: exact
/// per-term contribution maxima plus per-block maxima **colocated with
/// the storage geometry** — one [`BlockBound`] per
/// [`crate::blocks::BLOCK_LEN`]-posting storage block, in the same order
/// as the block headers. The earlier two-level (8/64-posting) block-max
/// side tables are folded into this single array: the skip machinery now
/// reasons at exactly the granularity the payload is packed at, so a
/// failing bound always clears a whole storage block (no partially
/// decoded blocks), and the gate's data is one load away.
///
/// Building the tables costs one scoring pass over every posting, so only
/// evaluators that prune on bounds construct them
/// ([`crate::daat::DaatSearcher`], [`crate::fragment::FragSearcher`]);
/// the plain accumulating searchers get by with the cheap [`ScoreKernel`].
#[derive(Debug, Clone)]
pub struct ScoreBounds {
    /// `term_max[t]` = the exact maximum contribution any posting of term
    /// `t` makes — far tighter than the `max_tf`-at-dl-1 analytic bound
    /// while remaining sound: it is a *reachable* maximum of the very
    /// same floating-point evaluation the hot loop performs.
    term_max: Vec<f64>,
    /// All terms' block bounds, term-major, aligned with the storage
    /// blocks of [`InvertedIndex::blocks`].
    blocks: Vec<BlockBound>,
    /// `offsets[t]..offsets[t + 1]` is term `t`'s bound range.
    offsets: Vec<usize>,
}

impl ScoreBounds {
    /// Postings per block-max block — the storage block length: bounds are
    /// colocated with the physical blocks.
    pub const BLOCK_POSTINGS: usize = BLOCK_LEN;

    /// Build the bound tables for `kernel` over `index`: one streaming
    /// scoring pass over every posting, block by block.
    pub fn new(kernel: &ScoreKernel, index: &InvertedIndex) -> ScoreBounds {
        let store = index.blocks();
        let vocab = index.vocab_size();
        let mut bounds = ScoreBounds {
            term_max: Vec::with_capacity(vocab),
            blocks: Vec::new(),
            offsets: Vec::with_capacity(vocab + 1),
        };
        bounds.offsets.push(0);
        let mut buf = CursorBuf::new();
        for t in 0..vocab as u32 {
            let view = store.view(t);
            let mut tmax = 0.0f64;
            if !view.is_empty() {
                let scorer = TermScorer::new(
                    kernel.model,
                    index.df(t).expect("term id in range"),
                    index.cf(t).expect("term id in range"),
                    &kernel.stats,
                );
                for (b, header) in view.headers().iter().enumerate() {
                    view.decode_docs(b, &mut buf);
                    view.decode_tfs(b, &mut buf);
                    let mut bmax = 0.0f64;
                    let mut mini_max = [0.0f64; MINIS_PER_BLOCK];
                    for i in 0..usize::from(header.len) {
                        let w = scorer.weight(buf.tfs[i], kernel.norms[buf.docs[i] as usize]);
                        bmax = bmax.max(w);
                        let m = i / MINI_LEN;
                        mini_max[m] = mini_max[m].max(w);
                    }
                    let mut minis = [0u8; 4];
                    for (m, &mm) in mini_max.iter().enumerate() {
                        minis[m >> 1] |= quantize_mini(mm, bmax) << ((m & 1) * 4);
                    }
                    bounds.blocks.push(BlockBound {
                        last_doc: header.last_doc,
                        minis,
                        max_score: bmax,
                    });
                    tmax = tmax.max(bmax);
                }
            }
            bounds.term_max.push(tmax);
            bounds.offsets.push(bounds.blocks.len());
        }
        bounds
    }

    /// The exact maximum contribution any posting of `term` makes under
    /// the kernel's model — the per-term upper bound MaxScore pruning
    /// runs on. 0.0 for unobserved or out-of-range terms.
    #[inline]
    pub fn term_max_weight(&self, term: u32) -> f64 {
        self.term_max.get(term as usize).copied().unwrap_or(0.0)
    }

    /// The block bounds of a term, aligned with its storage blocks: entry
    /// `b` covers postings `b * BLOCK_POSTINGS ..` of the term's run.
    /// Empty for unobserved or out-of-range terms.
    #[inline]
    pub fn term_blocks(&self, term: u32) -> &[BlockBound] {
        let t = term as usize;
        if t + 1 >= self.offsets.len() {
            return &[];
        }
        &self.blocks[self.offsets[t]..self.offsets[t + 1]]
    }

    /// A term's `(start, len)` range within the flat bound array — cached
    /// per query term so the hot gates index with [`ScoreBounds::at`] /
    /// [`ScoreBounds::slice`] instead of re-resolving the offsets.
    #[inline]
    pub(crate) fn term_range(&self, term: u32) -> (u32, u32) {
        let t = term as usize;
        if t + 1 >= self.offsets.len() {
            return (0, 0);
        }
        let s = self.offsets[t];
        (s as u32, (self.offsets[t + 1] - s) as u32)
    }

    /// One entry of the flat bound array (see [`ScoreBounds::term_range`]).
    #[inline]
    pub(crate) fn at(&self, idx: usize) -> BlockBound {
        self.blocks[idx]
    }

    /// A cached range of the flat bound array.
    #[inline]
    pub(crate) fn slice(&self, start: u32, len: u32) -> &[BlockBound] {
        &self.blocks[start as usize..(start + len) as usize]
    }
}

impl ScoreKernel {
    /// Build the kernel for `model` over `index`, materializing the
    /// per-document norm table.
    pub fn new(model: RankingModel, index: &InvertedIndex) -> ScoreKernel {
        let stats = index.stats();
        let norms: Vec<f64> = index
            .doc_lens()
            .iter()
            .map(|&dl| model.doc_norm(dl, &stats))
            .collect();
        ScoreKernel {
            model,
            stats,
            norms,
            norm_dl1: model.doc_norm(1, &stats),
        }
    }

    /// The ranking model this kernel scores with.
    pub fn model(&self) -> RankingModel {
        self.model
    }

    /// The collection statistics the kernel was built from.
    pub fn stats(&self) -> CollectionStats {
        self.stats
    }

    /// Precompute the scorer of one query term.
    pub fn term_scorer(&self, df: u32, cf: u64) -> TermScorer {
        TermScorer::new(self.model, df, cf, &self.stats)
    }

    /// The cached length norm of a document.
    #[inline]
    pub fn norm(&self, doc: u32) -> f64 {
        self.norms[doc as usize]
    }

    /// Score one posting: `scorer`'s weight for `tf` occurrences in `doc`.
    #[inline]
    pub fn weight(&self, scorer: &TermScorer, tf: u32, doc: u32) -> f64 {
        scorer.weight(tf, self.norms[doc as usize])
    }

    /// An upper bound on the contribution any posting of this term can
    /// make, given the term's maximum within-document tf. Identical
    /// floating-point path to [`RankingModel::max_term_weight`].
    pub fn max_weight(&self, scorer: &TermScorer, max_tf: u32) -> f64 {
        scorer.weight(max_tf, self.norm_dl1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_corpus::{Collection, CollectionConfig};

    fn stats() -> CollectionStats {
        CollectionStats {
            num_docs: 1_000,
            avg_doc_len: 100.0,
            total_tokens: 100_000,
        }
    }

    fn models() -> Vec<RankingModel> {
        vec![
            RankingModel::TfIdf,
            RankingModel::HiemstraLm { lambda: 0.15 },
            RankingModel::Bm25 { k1: 1.2, b: 0.75 },
        ]
    }

    #[test]
    fn scorer_is_bit_exact_with_term_weight() {
        let s = stats();
        for m in models() {
            for (tf, df, cf, dl) in [
                (1u32, 1u32, 1u64, 1u32),
                (3, 10, 50, 100),
                (100, 999, 99_999, 10_000),
                (0, 10, 50, 100),
                (5, 0, 0, 100),
            ] {
                let scorer = TermScorer::new(m, df, cf, &s);
                let got = scorer.weight(tf, m.doc_norm(dl, &s));
                let want = m.term_weight(tf, df, cf, dl, &s);
                assert_eq!(got.to_bits(), want.to_bits(), "{m:?} ({tf},{df},{cf},{dl})");
            }
        }
    }

    #[test]
    fn kernel_norm_table_matches_doc_norm() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        for m in models() {
            let kernel = ScoreKernel::new(m, &idx);
            let s = idx.stats();
            for doc in 0..idx.num_docs() as u32 {
                assert_eq!(
                    kernel.norm(doc).to_bits(),
                    m.doc_norm(idx.doc_len(doc), &s).to_bits()
                );
            }
        }
    }

    #[test]
    fn kernel_weight_matches_term_weight_on_real_postings() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        let s = idx.stats();
        for m in models() {
            let kernel = ScoreKernel::new(m, &idx);
            for term in idx.terms_by_df_asc().iter().take(50) {
                let df = idx.df(*term).unwrap();
                let cf = idx.cf(*term).unwrap();
                let scorer = kernel.term_scorer(df, cf);
                let (docs, tfs) = idx.decode_postings(*term).unwrap();
                for (i, &doc) in docs.iter().enumerate() {
                    let got = kernel.weight(&scorer, tfs[i], doc);
                    let want = m.term_weight(tfs[i], df, cf, idx.doc_len(doc), &s);
                    assert_eq!(got.to_bits(), want.to_bits(), "{m:?} term {term} doc {doc}");
                }
            }
        }
    }

    #[test]
    fn max_weight_bounds_every_posting() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        for m in models() {
            let kernel = ScoreKernel::new(m, &idx);
            for term in idx.terms_by_df_asc() {
                let scorer = kernel.term_scorer(idx.df(term).unwrap(), idx.cf(term).unwrap());
                let bound = kernel.max_weight(&scorer, idx.max_tf(term).unwrap());
                let (docs, tfs) = idx.decode_postings(term).unwrap();
                for (i, &doc) in docs.iter().enumerate() {
                    let w = kernel.weight(&scorer, tfs[i], doc);
                    assert!(w <= bound, "{m:?} term {term}: {w} > {bound}");
                }
            }
        }
    }

    #[test]
    fn term_max_weight_is_tight_and_bounded_by_analytic_max() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        for m in models() {
            let kernel = ScoreKernel::new(m, &idx);
            let bounds = ScoreBounds::new(&kernel, &idx);
            for term in idx.terms_by_df_asc() {
                let scorer = kernel.term_scorer(idx.df(term).unwrap(), idx.cf(term).unwrap());
                let (docs, tfs) = idx.decode_postings(term).unwrap();
                let observed = docs
                    .iter()
                    .enumerate()
                    .map(|(i, &doc)| kernel.weight(&scorer, tfs[i], doc))
                    .fold(0.0f64, f64::max);
                // Tight: the bound is exactly the observed maximum...
                assert_eq!(bounds.term_max_weight(term).to_bits(), observed.to_bits());
                // ...and never looser than the max_tf @ dl=1 analytic bound.
                let analytic = kernel.max_weight(&scorer, idx.max_tf(term).unwrap());
                assert!(bounds.term_max_weight(term) <= analytic);
            }
        }
        let kernel = ScoreKernel::new(RankingModel::default(), &idx);
        let bounds = ScoreBounds::new(&kernel, &idx);
        assert_eq!(bounds.term_max_weight(u32::MAX), 0.0);
        assert!(bounds.term_blocks(u32::MAX).is_empty());
    }

    #[test]
    fn block_bounds_align_with_storage_blocks_and_cover_them() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        for m in models() {
            let kernel = ScoreKernel::new(m, &idx);
            let bounds = ScoreBounds::new(&kernel, &idx);
            for term in idx.terms_by_df_asc() {
                let scorer = kernel.term_scorer(idx.df(term).unwrap(), idx.cf(term).unwrap());
                let (docs, tfs) = idx.decode_postings(term).unwrap();
                let bb = bounds.term_blocks(term);
                let headers = idx.blocks().view(term).headers();
                assert_eq!(bb.len(), docs.len().div_ceil(ScoreBounds::BLOCK_POSTINGS));
                assert_eq!(bb.len(), headers.len());
                for (b, chunk) in docs.chunks(ScoreBounds::BLOCK_POSTINGS).enumerate() {
                    // Colocated geometry: the bound's horizon is the
                    // storage block's last document.
                    assert_eq!(bb[b].last_doc, *chunk.last().unwrap());
                    assert_eq!(bb[b].last_doc, headers[b].last_doc);
                    for (i, &doc) in chunk.iter().enumerate() {
                        let w =
                            kernel.weight(&scorer, tfs[b * ScoreBounds::BLOCK_POSTINGS + i], doc);
                        assert!(w <= bb[b].max_score, "{m:?} term {term} block {b}");
                    }
                    // Every block bound is itself bounded by the term max.
                    assert!(bb[b].max_score <= bounds.term_max_weight(term));
                }
            }
        }
    }

    #[test]
    fn mini_block_bounds_cover_postings_and_stay_within_block_max() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        for m in models() {
            let kernel = ScoreKernel::new(m, &idx);
            let bounds = ScoreBounds::new(&kernel, &idx);
            for term in idx.terms_by_df_asc() {
                let scorer = kernel.term_scorer(idx.df(term).unwrap(), idx.cf(term).unwrap());
                let (docs, tfs) = idx.decode_postings(term).unwrap();
                let bb = bounds.term_blocks(term);
                for (b, chunk) in docs.chunks(ScoreBounds::BLOCK_POSTINGS).enumerate() {
                    for (i, &doc) in chunk.iter().enumerate() {
                        let w =
                            kernel.weight(&scorer, tfs[b * ScoreBounds::BLOCK_POSTINGS + i], doc);
                        let mini = bb[b].mini_bound(i);
                        assert!(
                            w <= mini,
                            "{m:?} term {term} block {b} idx {i}: {w} > mini {mini}"
                        );
                        assert!(mini <= bb[b].max_score);
                    }
                }
                // Empty mini-blocks of a partial final block bound to 0.
                if let Some(last) = bb.last() {
                    let tail = docs.len() - (bb.len() - 1) * ScoreBounds::BLOCK_POSTINGS;
                    let first_empty_mini = tail.div_ceil(MINI_LEN);
                    if first_empty_mini < MINIS_PER_BLOCK {
                        assert_eq!(last.mini_bound(first_empty_mini * MINI_LEN), 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn quantization_rounds_up_and_is_tight_at_the_top() {
        // The block's own maximum always quantizes to 15 (dequantizes to
        // exactly max_score); a zero mini quantizes to 0.
        assert_eq!(quantize_mini(0.0, 3.7), 0);
        assert_eq!(quantize_mini(3.7, 3.7), 15);
        // Round-up: every dequantized bound covers the input.
        for frac in [1e-9, 0.001, 0.1, 1.0 / 3.0, 0.5, 0.9, 0.999_999] {
            for max in [1e-6, 1.0, std::f64::consts::PI, 1e12] {
                let mini = frac * max;
                let q = quantize_mini(mini, max);
                assert!(
                    dequant(max, q) >= mini,
                    "q={q} dequant {} < mini {mini}",
                    dequant(max, q)
                );
                if q > 0 {
                    // Minimal: the next smaller nibble would not cover.
                    assert!(
                        dequant(max, q - 1) < mini,
                        "q={q} not minimal for {mini}/{max}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_scorer_for_dead_terms() {
        let s = stats();
        for m in models() {
            let scorer = TermScorer::new(m, 0, 0, &s);
            assert_eq!(scorer, TermScorer::Zero);
            assert_eq!(scorer.weight(5, 1.0), 0.0);
        }
    }
}
