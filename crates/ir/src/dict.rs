//! Term dictionary: the string ↔ term-id mapping.
//!
//! The synthetic corpus works directly in term ids, but a real engine (and
//! the examples) need interning. Ids are dense and stable in insertion
//! order.
//!
//! The name table hashes with `fxhash` instead of std's SipHash: term
//! lookup sits on the query front end's hot path (every query term is one
//! probe), the vocabulary is trusted bounded input (no hash-flooding
//! surface), and the Fx multiply-rotate hash is a few instructions per
//! 8-byte word.

use fxhash::FxHashMap;

/// A bidirectional term dictionary with dense `u32` ids.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    by_name: FxHashMap<String, u32>,
    by_id: Vec<String>,
}

impl Dictionary {
    /// Create an empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Intern a term, returning its id (existing or freshly assigned).
    #[inline]
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.by_name.get(term) {
            return id;
        }
        let id = self.by_id.len() as u32;
        self.by_id.push(term.to_owned());
        self.by_name.insert(term.to_owned(), id);
        id
    }

    /// Look up an existing term's id — the query-front-end hot path.
    #[inline]
    pub fn lookup(&self, term: &str) -> Option<u32> {
        self.by_name.get(term).copied()
    }

    /// The term string for an id.
    pub fn term(&self, id: u32) -> Option<&str> {
        self.by_id.get(id as usize).map(String::as_str)
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Build a dictionary of synthetic names (`term000000` …) covering a
    /// generated collection's vocabulary, so ids align with the collection's
    /// term ids.
    pub fn synthetic(vocab_size: usize) -> Dictionary {
        let mut d = Dictionary::new();
        for i in 0..vocab_size {
            d.intern(&format!("term{i:06}"));
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("database");
        let b = d.intern("retrieval");
        let a2 = d.intern("database");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn lookup_and_term_roundtrip() {
        let mut d = Dictionary::new();
        let id = d.intern("multimedia");
        assert_eq!(d.lookup("multimedia"), Some(id));
        assert_eq!(d.term(id), Some("multimedia"));
        assert_eq!(d.lookup("missing"), None);
        assert_eq!(d.term(999), None);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("c"), 2);
    }

    #[test]
    fn synthetic_covers_vocab() {
        let d = Dictionary::synthetic(100);
        assert_eq!(d.len(), 100);
        assert_eq!(d.lookup("term000042"), Some(42));
        assert!(!d.is_empty());
        assert!(Dictionary::new().is_empty());
    }
}
