//! Block-compressed posting storage.
//!
//! The flat `Vec<u32>` posting arrays the index shipped with until now make
//! every posting cost two 4-byte loads from two parallel arrays, and every
//! skip decision cost extra loads from *separate* block-max tables — at
//! memory-bandwidth speed the constant factor per posting dominates the
//! pruned DAAT kernel (BENCH_daat.json: 2.3–3.4x fewer postings scanned,
//! only 1.1–1.8x wall-time). This module is the storage-format fix, after
//! the block layouts of the MonetDB/BAT lineage:
//!
//! * postings are split into fixed [`BLOCK_LEN`]-entry **blocks**; document
//!   ids are delta-encoded (`gap − 1`, strictly increasing ids) and
//!   bit-packed at a per-block width, term frequencies bit-packed alongside,
//! * each block's [`BlockHeader`] (first/last doc, bit widths, max tf,
//!   payload offset) lives in one contiguous header array — the skip
//!   machinery never touches the packed payload of a block it rejects,
//! * decoding is **on demand** into a caller-owned [`CursorBuf`]
//!   ([`BLOCK_LEN`] doc slots + [`BLOCK_LEN`] tf slots): document ids
//!   decode when a cursor enters a block, term frequencies only when a
//!   posting is actually scored, so skipped blocks pay zero unpack work
//!   and pruned blocks pay only the doc half.
//!
//! The per-model block-max *score* bounds are colocated in the same
//! block-granular geometry by [`crate::scorer::ScoreBounds`]
//! (`BlockBound { last_doc, max_score }`), so one 16-byte load answers the
//! DAAT gate's "can this block matter, and how far may I skip?" — exactly
//! one cache line per block decision.
//!
//! Encoding is lossless, so every evaluator built on top remains
//! bit-identical to the flat layout (pinned by the round-trip proptest in
//! `crates/ir/tests/proptest_blocks.rs` and the differential oracle).

use moa_storage::pack::{
    bits_for, pack_into, unpack_deltas_prefix_sum, unpack_from, unpack_slice, words_for,
};

/// Postings per block. 128 keeps a block's decoded image (two 512-byte
/// arrays) inside L1 while making the header array 1/128th of the posting
/// count — small enough to stay cache-resident across a query.
pub const BLOCK_LEN: usize = 128;

/// Postings per mini-block: the granularity of the cursor's lazy tf
/// decode and of the quantized sub-block score bounds
/// (`crate::scorer::BlockBound` carries one 4-bit score maximum per
/// mini-block). 16 entries × 8 mini-blocks tile one [`BLOCK_LEN`] block.
pub const MINI_LEN: usize = 16;

/// Mini-blocks per block (`BLOCK_LEN / MINI_LEN`).
pub const MINIS_PER_BLOCK: usize = BLOCK_LEN / MINI_LEN;

/// Per-block layout metadata, stored contiguously (one array per list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeader {
    /// Document id of the block's first posting.
    pub first_doc: u32,
    /// Document id of the block's last posting — the skip horizon.
    pub last_doc: u32,
    /// Offset of the block's packed payload, in `u64` words.
    pub payload_off: u32,
    /// Bit width of the packed doc-id deltas.
    pub doc_bits: u8,
    /// Bit width of the packed term frequencies.
    pub tf_bits: u8,
    /// Postings in this block (`BLOCK_LEN` except for a final partial
    /// block).
    pub len: u16,
}

// Headers are pure per-block overhead, paid once per (term, 128-posting
// block) — on a large vocabulary most terms have short runs, so every
// byte here is a direct bytes-per-posting cost. Keep the record at
// exactly 16 bytes: anything derivable at build time (e.g. the block's
// max tf, which only ever fed `tf_bits`) stays out.
const _: () = assert!(std::mem::size_of::<BlockHeader>() == 16);

/// Decode scratch for one cursor: one block's worth of document ids and
/// term frequencies. ~1 KiB; owned by [`crate::scratch::QueryScratch`] (one
/// per query term, reused across queries) or boxed inside a standalone
/// [`crate::index::PostingCursor`].
#[derive(Debug, Clone)]
pub struct CursorBuf {
    /// Decoded document ids of the current block (valid only while
    /// [`CursorPos::docs_ready`]).
    pub docs: [u32; BLOCK_LEN],
    /// Decoded term frequencies. Whole-block consumers
    /// ([`BlockPostingList::for_each`], the bound-table builder) fill all
    /// of it at once; cursor paths fill it one [`MINI_LEN`]-entry
    /// mini-block at a time, on the first tf read inside that mini-block
    /// (tracked by [`CursorPos::tf_ready`]), so a scored posting costs an
    /// amortized 16-value lookahead decode instead of a point unpack per
    /// posting.
    pub tfs: [u32; BLOCK_LEN],
}

impl CursorBuf {
    /// A zeroed buffer.
    pub fn new() -> CursorBuf {
        CursorBuf {
            docs: [0; BLOCK_LEN],
            tfs: [0; BLOCK_LEN],
        }
    }
}

impl Default for CursorBuf {
    fn default() -> Self {
        CursorBuf::new()
    }
}

/// Plain-data cursor position within one term's block run. Separate from
/// the buffer so the query scratch can keep both in flat reusable arrays.
#[derive(Debug, Clone, Copy)]
pub struct CursorPos {
    /// Current block index within the term's run.
    pub block: usize,
    /// Offset within the current block.
    pub idx: usize,
    /// Absolute posting position of the current block's first entry
    /// (`block * BLOCK_LEN`, cached).
    pub base: usize,
    /// Whether the doc half of the current block has been decoded into
    /// the buffer. A cursor parked at a block's first posting needs no
    /// decode at all (`first_doc` lives in the header), so blocks that
    /// are entered and immediately skipped past never touch the payload.
    pub docs_ready: bool,
    /// Bitmask of which [`MINI_LEN`]-entry mini-blocks of the current
    /// block's tf half are decoded into the buffer (bit `m` covers
    /// entries `m*16..(m+1)*16`). Cleared on every block change; a block
    /// whose postings are never scored never touches its tf payload.
    pub tf_ready: u8,
}

/// One term's slice of a [`BlockPostingList`]: its headers, the shared
/// payload, and the run length. Cheap to construct (two offset loads), so
/// long-lived state needs to remember only the term id.
#[derive(Debug, Clone, Copy)]
pub struct TermView<'a> {
    headers: &'a [BlockHeader],
    payload: &'a [u64],
    len: usize,
}

impl<'a> TermView<'a> {
    /// Total postings in the run.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the run has no postings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The run's block headers.
    #[inline]
    pub fn headers(&self) -> &'a [BlockHeader] {
        self.headers
    }

    /// Number of blocks in the run.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.headers.len()
    }

    /// Decode block `b`'s document ids into `buf.docs[..len]` — one fused
    /// unpack + prefix-sum pass (deltas store `gap − 1` with a leading 0).
    pub fn decode_docs(&self, b: usize, buf: &mut CursorBuf) {
        let h = &self.headers[b];
        let n = h.len as usize;
        unpack_deltas_prefix_sum(
            &self.payload[h.payload_off as usize..],
            h.doc_bits,
            n,
            h.first_doc,
            &mut buf.docs,
        );
    }

    /// Decode block `b`'s term frequencies into `buf.tfs[..len]`.
    pub fn decode_tfs(&self, b: usize, buf: &mut CursorBuf) {
        let h = &self.headers[b];
        let n = h.len as usize;
        let off = h.payload_off as usize + words_for(n, h.doc_bits);
        unpack_from(&self.payload[off..], h.tf_bits, n, &mut buf.tfs);
    }

    /// Decode one [`MINI_LEN`]-entry mini-block of block `b`'s term
    /// frequencies into the matching slots of `buf.tfs` — the cursor
    /// lookahead decode.
    fn decode_tf_mini(&self, b: usize, mini: usize, buf: &mut CursorBuf) {
        let h = &self.headers[b];
        let n = h.len as usize;
        let off = h.payload_off as usize + words_for(n, h.doc_bits);
        let start = mini * MINI_LEN;
        let count = n.saturating_sub(start).min(MINI_LEN);
        unpack_slice(
            &self.payload[off..],
            h.tf_bits,
            start,
            count,
            &mut buf.tfs[start..start + count],
        );
    }

    /// Position a fresh cursor at the run's first posting. No payload is
    /// decoded: the first posting's document id is the first block's
    /// header `first_doc`.
    pub fn start(&self, _buf: &mut CursorBuf) -> CursorPos {
        CursorPos {
            block: 0,
            idx: 0,
            base: 0,
            docs_ready: false,
            tf_ready: 0,
        }
    }

    /// The current posting's document id, or `None` when exhausted. A
    /// cursor at a block's first posting reads the header's `first_doc`;
    /// deeper positions read the decoded ids (the decode invariant is
    /// maintained by [`TermView::advance`] / [`TermView::seek`]).
    #[inline]
    pub fn doc_at(&self, pos: &CursorPos, buf: &CursorBuf) -> Option<u32> {
        if pos.base + pos.idx >= self.len {
            None
        } else if pos.idx == 0 {
            Some(self.headers[pos.block].first_doc)
        } else {
            Some(buf.docs[pos.idx])
        }
    }

    /// The current posting's term frequency (0 when exhausted). The first
    /// tf read inside a [`MINI_LEN`]-entry mini-block decodes that whole
    /// mini-block into the lookahead buffer; subsequent reads in the same
    /// mini-block are plain array loads — a pruned query that scores one
    /// posting of a block pays a 16-value decode, never the 128-value
    /// bulk unpack, while dense scoring amortizes to bulk-decode cost.
    #[inline]
    pub fn tf_at(&self, pos: &mut CursorPos, buf: &mut CursorBuf) -> u32 {
        if pos.base + pos.idx >= self.len {
            return 0;
        }
        let mini = pos.idx / MINI_LEN;
        let bit = 1u8 << mini;
        if pos.tf_ready & bit == 0 {
            self.decode_tf_mini(pos.block, mini, buf);
            pos.tf_ready |= bit;
        }
        buf.tfs[pos.idx]
    }

    /// Advance one posting. Entering the body of a block (offset ≥ 1)
    /// decodes its doc ids once; crossing into a new block decodes
    /// nothing (the next id is the header's `first_doc`). Safe (and a
    /// no-op beyond bookkeeping) when already exhausted.
    #[inline]
    pub fn advance(&self, pos: &mut CursorPos, buf: &mut CursorBuf) {
        pos.idx += 1;
        let block_len = self
            .headers
            .get(pos.block)
            .map_or(0, |h| usize::from(h.len));
        if pos.idx >= block_len {
            pos.base += block_len;
            pos.block += 1;
            pos.idx = 0;
            pos.docs_ready = false;
            pos.tf_ready = 0;
        } else if !pos.docs_ready {
            self.decode_docs(pos.block, buf);
            pos.docs_ready = true;
        }
    }

    /// Advance to the first posting with document id ≥ `target`: binary
    /// search over the contiguous header array (touching only `last_doc`
    /// fields), then at most a single block unpack and an in-block
    /// search — a seek that lands on a block's first posting decodes
    /// nothing at all. Never moves backwards. Returns the number of
    /// postings skipped over.
    pub fn seek(&self, pos: &mut CursorPos, buf: &mut CursorBuf, target: u32) -> usize {
        let start_abs = pos.base + pos.idx;
        if start_abs >= self.len {
            return 0;
        }
        let h = &self.headers[pos.block];
        let here = if pos.idx == 0 {
            h.first_doc
        } else {
            buf.docs[pos.idx]
        };
        if here >= target {
            return 0;
        }
        // Still inside the current block? In-block binary search over the
        // decoded ids (decode now if this block was never entered).
        if target <= h.last_doc {
            if !pos.docs_ready {
                self.decode_docs(pos.block, buf);
                pos.docs_ready = true;
            }
            let block_len = usize::from(h.len);
            let rest = &buf.docs[pos.idx + 1..block_len];
            pos.idx += 1 + rest.partition_point(|&d| d < target);
            return pos.base + pos.idx - start_abs;
        }
        // Header search: first block whose last_doc reaches the target.
        let k =
            pos.block + 1 + self.headers[pos.block + 1..].partition_point(|h| h.last_doc < target);
        if k >= self.headers.len() {
            // Exhausted: park one past the end.
            let skipped = self.len - start_abs;
            pos.block = self.headers.len();
            pos.base = self.len;
            pos.idx = 0;
            pos.docs_ready = false;
            pos.tf_ready = 0;
            return skipped;
        }
        pos.block = k;
        pos.base = k * BLOCK_LEN; // all blocks before a run's last are full
        pos.docs_ready = false;
        pos.tf_ready = 0;
        if target <= self.headers[k].first_doc {
            // Landed on the block's first posting: header data suffices.
            pos.idx = 0;
            return pos.base - start_abs;
        }
        self.decode_docs(k, buf);
        pos.docs_ready = true;
        let block_len = usize::from(self.headers[k].len);
        pos.idx = buf.docs[..block_len].partition_point(|&d| d < target);
        pos.base + pos.idx - start_abs
    }
}

/// Append-only builder: push each term's `(docs, tfs)` run in term order.
#[derive(Debug, Default)]
pub struct BlockListBuilder {
    headers: Vec<BlockHeader>,
    term_blocks: Vec<usize>,
    term_lens: Vec<u32>,
    payload: Vec<u64>,
    num_postings: usize,
}

impl BlockListBuilder {
    /// An empty builder.
    pub fn new() -> BlockListBuilder {
        BlockListBuilder {
            term_blocks: vec![0],
            ..BlockListBuilder::default()
        }
    }

    /// Append the next term's posting run (`docs` strictly increasing,
    /// `tfs` aligned). An empty run records a term with no postings.
    pub fn push_run(&mut self, docs: &[u32], tfs: &[u32]) {
        debug_assert_eq!(docs.len(), tfs.len());
        debug_assert!(docs.windows(2).all(|w| w[0] < w[1]));
        let mut deltas = [0u32; BLOCK_LEN];
        for (block_docs, block_tfs) in docs.chunks(BLOCK_LEN).zip(tfs.chunks(BLOCK_LEN)) {
            let n = block_docs.len();
            deltas[0] = 0;
            let mut max_delta = 0u32;
            for i in 1..n {
                let d = block_docs[i] - block_docs[i - 1] - 1;
                deltas[i] = d;
                max_delta = max_delta.max(d);
            }
            let max_tf = block_tfs.iter().copied().max().unwrap_or(0);
            let doc_bits = bits_for(max_delta);
            let tf_bits = bits_for(max_tf);
            let payload_off =
                u32::try_from(self.payload.len()).expect("payload below 32 GiB of words");
            pack_into(&deltas[..n], doc_bits, &mut self.payload);
            pack_into(block_tfs, tf_bits, &mut self.payload);
            self.headers.push(BlockHeader {
                first_doc: block_docs[0],
                last_doc: block_docs[n - 1],
                payload_off,
                doc_bits,
                tf_bits,
                len: n as u16,
            });
        }
        self.term_blocks.push(self.headers.len());
        self.term_lens.push(docs.len() as u32);
        self.num_postings += docs.len();
    }

    /// Seal the builder into an immutable list.
    pub fn finish(self) -> BlockPostingList {
        BlockPostingList {
            headers: self.headers,
            term_blocks: self.term_blocks,
            term_lens: self.term_lens,
            payload: self.payload,
            num_postings: self.num_postings,
        }
    }
}

/// The block-compressed posting store of a whole index: per-term block
/// runs over one contiguous header array and one packed payload.
#[derive(Debug, Clone)]
pub struct BlockPostingList {
    headers: Vec<BlockHeader>,
    /// `term_blocks[t]..term_blocks[t + 1]` is term `t`'s header range.
    term_blocks: Vec<usize>,
    term_lens: Vec<u32>,
    payload: Vec<u64>,
    num_postings: usize,
}

impl BlockPostingList {
    /// Number of terms (the vocabulary size the list was built over).
    pub fn num_terms(&self) -> usize {
        self.term_lens.len()
    }

    /// Total postings across all terms.
    pub fn num_postings(&self) -> usize {
        self.num_postings
    }

    /// Posting count of one term's run (0 for out-of-range terms).
    #[inline]
    pub fn run_len(&self, term: u32) -> usize {
        self.term_lens.get(term as usize).map_or(0, |&l| l as usize)
    }

    /// One term's view. Panics if `term` is out of range (callers validate
    /// against the catalog first).
    #[inline]
    pub fn view(&self, term: u32) -> TermView<'_> {
        let t = term as usize;
        let (s, e) = (self.term_blocks[t], self.term_blocks[t + 1]);
        TermView {
            headers: &self.headers[s..e],
            payload: &self.payload,
            len: self.term_lens[t] as usize,
        }
    }

    /// Stream one term's postings in document order through `f(doc, tf)`,
    /// decoding block by block on a stack buffer — the zero-allocation
    /// full-run path the set-at-a-time evaluator and the builders use.
    pub fn for_each(&self, term: u32, mut f: impl FnMut(u32, u32)) {
        self.for_each_while(term, |d, t| {
            f(d, t);
            true
        });
    }

    /// Like [`BlockPostingList::for_each`], but `f` returns whether to
    /// continue: a `false` stops the stream mid-block. Returns `true` when
    /// the run was streamed to completion — the breakable variant the
    /// deadline-gated accumulator loops use so an expired budget no
    /// longer overshoots by one whole uninterruptible term run.
    pub fn for_each_while(&self, term: u32, mut f: impl FnMut(u32, u32) -> bool) -> bool {
        let view = self.view(term);
        let mut buf = CursorBuf::new();
        for b in 0..view.num_blocks() {
            view.decode_docs(b, &mut buf);
            view.decode_tfs(b, &mut buf);
            let n = usize::from(view.headers()[b].len);
            for i in 0..n {
                if !f(buf.docs[i], buf.tfs[i]) {
                    return false;
                }
            }
        }
        true
    }

    /// Materialize one term's run as owned `(docs, tfs)` vectors — the
    /// convenience path for builders, tests, and the BAT bridge.
    pub fn decode_term(&self, term: u32) -> (Vec<u32>, Vec<u32>) {
        let n = self.run_len(term);
        let mut docs = Vec::with_capacity(n);
        let mut tfs = Vec::with_capacity(n);
        self.for_each(term, |d, t| {
            docs.push(d);
            tfs.push(t);
        });
        (docs, tfs)
    }

    /// Size of the packed payload plus headers, in bytes — the compression
    /// figure experiment E17 reports against the flat layout's
    /// 8 bytes/posting.
    pub fn storage_bytes(&self) -> usize {
        self.payload.len() * 8 + self.headers.len() * std::mem::size_of::<BlockHeader>()
    }

    /// Total number of storage blocks across every term's run — the
    /// multiplier for per-block side tables (e.g. the 16-byte
    /// [`crate::scorer::BlockBound`] records, nibble maxima included).
    pub fn num_blocks(&self) -> usize {
        self.headers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(runs: &[(Vec<u32>, Vec<u32>)]) -> BlockPostingList {
        let mut b = BlockListBuilder::new();
        for (docs, tfs) in runs {
            b.push_run(docs, tfs);
        }
        b.finish()
    }

    fn run(n: usize, stride: u32) -> (Vec<u32>, Vec<u32>) {
        // Strictly increasing docs with irregular gaps in [1, stride].
        let mut d = 0u32;
        let docs: Vec<u32> = (0..n as u32)
            .map(|i| {
                d += 1 + (i.wrapping_mul(7919)) % stride.max(1);
                d
            })
            .collect();
        let tfs: Vec<u32> = (0..n as u32).map(|i| 1 + (i % 7)).collect();
        (docs, tfs)
    }

    #[test]
    fn roundtrips_including_partial_final_block() {
        for n in [0usize, 1, 5, BLOCK_LEN - 1, BLOCK_LEN, BLOCK_LEN + 1, 1000] {
            let (docs, tfs) = run(n, 3);
            let list = build(&[(docs.clone(), tfs.clone())]);
            assert_eq!(list.run_len(0), n);
            assert_eq!(list.num_postings(), n);
            assert_eq!(list.decode_term(0), (docs, tfs), "n={n}");
        }
    }

    #[test]
    fn consecutive_docs_pack_at_width_zero() {
        let docs: Vec<u32> = (100..100 + BLOCK_LEN as u32).collect();
        let tfs = vec![1u32; BLOCK_LEN];
        let list = build(&[(docs.clone(), tfs.clone())]);
        let h = list.view(0).headers()[0];
        assert_eq!(h.doc_bits, 0, "consecutive run needs no delta bits");
        assert_eq!(h.tf_bits, 1);
        assert_eq!((h.first_doc, h.last_doc), (100, 100 + BLOCK_LEN as u32 - 1));
        assert_eq!(list.decode_term(0), (docs, tfs));
    }

    #[test]
    fn multi_term_runs_are_independent() {
        let a = run(300, 2);
        let empty = (Vec::new(), Vec::new());
        let b = run(17, 1000);
        let list = build(&[a.clone(), empty, b.clone()]);
        assert_eq!(list.num_terms(), 3);
        assert_eq!(list.decode_term(0), a);
        assert_eq!(list.run_len(1), 0);
        assert!(list.view(1).is_empty());
        assert_eq!(list.decode_term(2), b);
        assert_eq!(list.num_postings(), 317);
        assert_eq!(list.run_len(u32::MAX), 0);
    }

    #[test]
    fn cursor_walks_in_order_with_lazy_tfs() {
        let (docs, tfs) = run(500, 5);
        let list = build(&[(docs.clone(), tfs.clone())]);
        let view = list.view(0);
        let mut buf = CursorBuf::new();
        let mut pos = view.start(&mut buf);
        for i in 0..docs.len() {
            assert_eq!(view.doc_at(&pos, &buf), Some(docs[i]));
            assert_eq!(view.tf_at(&mut pos, &mut buf), tfs[i]);
            view.advance(&mut pos, &mut buf);
        }
        assert_eq!(view.doc_at(&pos, &buf), None);
        assert_eq!(view.tf_at(&mut pos, &mut buf), 0);
        view.advance(&mut pos, &mut buf); // past-the-end advance is safe
        assert_eq!(view.doc_at(&pos, &buf), None);
    }

    #[test]
    fn tf_reads_decode_one_mini_block_at_a_time() {
        let (docs, tfs) = run(300, 5);
        let list = build(&[(docs.clone(), tfs.clone())]);
        let view = list.view(0);
        let mut buf = CursorBuf::new();
        let mut pos = view.start(&mut buf);
        // Seek into the middle of the second block.
        let target = docs[BLOCK_LEN + 40];
        view.seek(&mut pos, &mut buf, target);
        assert_eq!(pos.tf_ready, 0, "seeking never touches the tf payload");
        assert_eq!(view.tf_at(&mut pos, &mut buf), tfs[BLOCK_LEN + 40]);
        let mini = 40 / MINI_LEN;
        assert_eq!(
            pos.tf_ready,
            1 << mini,
            "one tf read decodes exactly its mini-block"
        );
        // The rest of that mini-block is already in the lookahead buffer.
        for k in (mini * MINI_LEN)..((mini + 1) * MINI_LEN) {
            assert_eq!(buf.tfs[k], tfs[BLOCK_LEN + k]);
        }
        // Crossing into a new block resets the mask.
        view.seek(&mut pos, &mut buf, docs[2 * BLOCK_LEN + 3]);
        assert_eq!(pos.tf_ready, 0);
        assert_eq!(view.tf_at(&mut pos, &mut buf), tfs[2 * BLOCK_LEN + 3]);
        assert_eq!(pos.tf_ready, 1 << (3 / MINI_LEN));
    }

    #[test]
    fn for_each_while_stops_mid_run() {
        let (docs, tfs) = run(500, 4);
        let list = build(&[(docs.clone(), tfs)]);
        let mut seen = 0usize;
        let complete = list.for_each_while(0, |_, _| {
            seen += 1;
            seen < 200
        });
        assert!(!complete);
        assert_eq!(seen, 200, "stops exactly where the callback said no");
        let complete = list.for_each_while(0, |_, _| true);
        assert!(complete);
    }

    #[test]
    fn seek_matches_linear_scan_and_counts_skips() {
        let (docs, tfs) = run(700, 4);
        let list = build(&[(docs.clone(), tfs.clone())]);
        let view = list.view(0);
        let targets: Vec<u32> = docs
            .iter()
            .flat_map(|&d| [d.saturating_sub(1), d, d + 1])
            .chain([0, u32::MAX])
            .collect();
        for &target in &targets {
            let mut buf = CursorBuf::new();
            let mut pos = view.start(&mut buf);
            let skipped = view.seek(&mut pos, &mut buf, target);
            let expect = docs.iter().position(|&d| d >= target);
            assert_eq!(
                view.doc_at(&pos, &buf),
                expect.map(|i| docs[i]),
                "target {target}"
            );
            assert_eq!(skipped, expect.unwrap_or(docs.len()));
            if let Some(i) = expect {
                assert_eq!(view.tf_at(&mut pos, &mut buf), tfs[i]);
            }
        }
        // Monotone: seeking backwards never moves.
        let mut buf = CursorBuf::new();
        let mut pos = view.start(&mut buf);
        view.seek(&mut pos, &mut buf, docs[docs.len() / 2]);
        let here = view.doc_at(&pos, &buf);
        assert_eq!(view.seek(&mut pos, &mut buf, 0), 0);
        assert_eq!(view.doc_at(&pos, &buf), here);
    }

    #[test]
    fn interleaved_seek_and_advance_balance_the_ledger() {
        let (docs, tfs) = run(777, 6);
        let list = build(&[(docs.clone(), tfs)]);
        let view = list.view(0);
        let mut buf = CursorBuf::new();
        let mut pos = view.start(&mut buf);
        let mut skipped = 0usize;
        let mut visited = 0usize;
        for (i, &d) in docs.iter().enumerate().step_by(11) {
            skipped += view.seek(&mut pos, &mut buf, d);
            assert_eq!(view.doc_at(&pos, &buf), Some(docs[i]));
            visited += 1;
            view.advance(&mut pos, &mut buf);
        }
        skipped += view.len() - (pos.base + pos.idx);
        assert_eq!(skipped + visited, docs.len());
    }

    #[test]
    fn storage_is_smaller_than_flat() {
        let (docs, tfs) = run(10_000, 7);
        let list = build(&[(docs, tfs)]);
        let flat = list.num_postings() * 8;
        assert!(
            list.storage_bytes() < flat / 2,
            "{} bytes vs flat {flat}",
            list.storage_bytes()
        );
    }
}
