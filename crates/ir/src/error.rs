//! Error types for the IR engine.

use std::fmt;

use moa_storage::StorageError;

/// Errors produced by IR engine operations.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// Underlying storage kernel error.
    Storage(StorageError),
    /// A term id outside the index vocabulary.
    UnknownTerm(u32),
    /// An invalid parameter (with human-readable context).
    InvalidConfig(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Storage(e) => write!(f, "storage error: {e}"),
            IrError::UnknownTerm(t) => write!(f, "unknown term id: {t}"),
            IrError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for IrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IrError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for IrError {
    fn from(e: StorageError) -> Self {
        IrError::Storage(e)
    }
}

/// Result alias for IR operations.
pub type Result<T> = std::result::Result<T, IrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(IrError::UnknownTerm(7).to_string(), "unknown term id: 7");
        assert!(IrError::InvalidConfig("x".into()).to_string().contains("x"));
        let e: IrError = StorageError::Empty.into();
        assert!(e.to_string().contains("storage error"));
    }

    #[test]
    fn source_chains_storage_errors() {
        use std::error::Error;
        let e: IrError = StorageError::NotSorted.into();
        assert!(e.source().is_some());
        assert!(IrError::UnknownTerm(1).source().is_none());
    }
}
