//! Indexing real text: tokenizer and incremental index builder.
//!
//! The synthetic corpus works in term ids; a downstream user has documents.
//! This module provides the missing on-ramp: a deterministic tokenizer
//! (lowercase, alphanumeric runs) and an [`IndexBuilder`] that accumulates
//! documents and produces the same [`InvertedIndex`] the rest of the stack
//! (fragmentation, ranking, the Moa algebra) operates on.

use std::collections::HashMap;

use crate::dict::Dictionary;
use crate::error::{IrError, Result};
use crate::index::InvertedIndex;

/// Split text into lowercase alphanumeric tokens (Unicode-aware).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lower in ch.to_lowercase() {
                current.push(lower);
            }
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Incrementally builds an [`InvertedIndex`] from term-id documents.
#[derive(Debug, Default)]
pub struct IndexBuilder {
    /// Per-document (term → tf) maps.
    docs: Vec<HashMap<u32, u32>>,
    /// Token count per document.
    doc_len: Vec<u32>,
    /// Highest term id seen.
    max_term: Option<u32>,
}

impl IndexBuilder {
    /// An empty builder.
    pub fn new() -> IndexBuilder {
        IndexBuilder::default()
    }

    /// Add one document given as a token stream of term ids; returns the
    /// assigned document id.
    pub fn add_document(&mut self, term_ids: &[u32]) -> u32 {
        let mut tf: HashMap<u32, u32> = HashMap::new();
        for &t in term_ids {
            *tf.entry(t).or_insert(0) += 1;
            self.max_term = Some(self.max_term.map_or(t, |m| m.max(t)));
        }
        self.docs.push(tf);
        self.doc_len.push(term_ids.len() as u32);
        (self.docs.len() - 1) as u32
    }

    /// Number of documents added so far.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Build the index. Fails on an empty builder.
    pub fn build(self) -> Result<InvertedIndex> {
        if self.docs.is_empty() {
            return Err(IrError::InvalidConfig(
                "cannot build an index from zero documents".into(),
            ));
        }
        let vocab = self.max_term.map_or(0, |m| m as usize + 1);
        let mut postings: Vec<(u32, u32, u32)> = Vec::new();
        for (doc, tf_map) in self.docs.iter().enumerate() {
            for (&term, &tf) in tf_map {
                postings.push((term, doc as u32, tf));
            }
        }
        postings.sort_unstable();
        InvertedIndex::from_sorted_postings(vocab, self.doc_len, &postings)
    }
}

/// Tokenize and index a batch of texts; returns the dictionary (term string
/// ↔ id) alongside the index.
pub fn index_texts<S: AsRef<str>>(texts: &[S]) -> Result<(Dictionary, InvertedIndex)> {
    let mut dict = Dictionary::new();
    let mut builder = IndexBuilder::new();
    for text in texts {
        let ids: Vec<u32> = tokenize(text.as_ref())
            .iter()
            .map(|tok| dict.intern(tok))
            .collect();
        builder.add_document(&ids);
    }
    Ok((dict, builder.build()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Searcher;
    use crate::ranking::RankingModel;

    #[test]
    fn tokenizer_lowercases_and_splits() {
        assert_eq!(
            tokenize("Top-N Optimization, issues (in) MM databases!"),
            vec![
                "top",
                "n",
                "optimization",
                "issues",
                "in",
                "mm",
                "databases"
            ]
        );
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("   ...   "), Vec::<String>::new());
        assert_eq!(tokenize("x1 2y"), vec!["x1", "2y"]);
    }

    #[test]
    fn builder_produces_consistent_index() {
        let mut b = IndexBuilder::new();
        let d0 = b.add_document(&[0, 1, 1, 2]);
        let d1 = b.add_document(&[1, 3]);
        assert_eq!((d0, d1), (0, 1));
        assert_eq!(b.num_docs(), 2);
        let idx = b.build().unwrap();
        assert_eq!(idx.num_docs(), 2);
        assert_eq!(idx.vocab_size(), 4);
        assert_eq!(idx.df(1).unwrap(), 2);
        assert_eq!(idx.cf(1).unwrap(), 3);
        assert_eq!(idx.max_tf(1).unwrap(), 2);
        assert_eq!(idx.doc_len(0), 4);
        let (docs, tfs) = idx.decode_postings(1).unwrap();
        assert_eq!(docs, vec![0, 1]);
        assert_eq!(tfs, vec![2, 1]);
    }

    #[test]
    fn empty_builder_rejected() {
        assert!(IndexBuilder::new().build().is_err());
    }

    #[test]
    fn end_to_end_text_retrieval() {
        let texts = [
            "multimedia databases rank documents by relevance",
            "the optimizer rewrites algebra expressions",
            "ranked retrieval in multimedia databases needs top n optimization",
            "cooking recipes with fresh tomatoes",
        ];
        let (dict, idx) = index_texts(&texts).unwrap();
        let q: Vec<u32> = ["multimedia", "databases"]
            .iter()
            .filter_map(|t| dict.lookup(t))
            .collect();
        assert_eq!(q.len(), 2);
        let mut s = Searcher::new(&idx, RankingModel::default());
        let rep = s.search(&q, 3).unwrap();
        // Docs 0 and 2 contain both terms; doc 3 contains neither.
        let top_docs: Vec<u32> = rep.top.iter().map(|&(d, _)| d).collect();
        assert!(top_docs.contains(&0));
        assert!(top_docs.contains(&2));
        assert!(!top_docs.contains(&3));
    }

    #[test]
    fn unicode_text_survives() {
        let (dict, idx) = index_texts(&["Écoute la Überraschung", "überraschung écoute"]).unwrap();
        assert!(dict.lookup("écoute").is_some());
        assert!(dict.lookup("überraschung").is_some());
        assert_eq!(idx.num_docs(), 2);
        let t = dict.lookup("écoute").unwrap();
        assert_eq!(idx.df(t).unwrap(), 2);
    }
}
