//! The early quality check ("switch accordingly in time").
//!
//! The paper's safe variant inserts "a check early in the query plan that is
//! able to detect when the answer quality would be better when the other
//! fragment would be used". The check may only use information available
//! *before* any postings are scanned: per-term catalog statistics (df, cf,
//! max tf) and fragment membership.
//!
//! The implemented policy bounds each query term's best possible score
//! contribution with [`crate::ranking::RankingModel::max_term_weight`] and
//! switches fragment B in when the B-resident terms could account for more
//! than a configured share of the total attainable score mass.

use crate::error::Result;
use crate::fragment::FragmentedIndex;
use crate::ranking::RankingModel;

/// Configuration of the switch policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchPolicy {
    /// Switch B in when B-terms' upper-bound score share exceeds this
    /// fraction of the query's total upper bound.
    pub max_b_share: f64,
}

impl Default for SwitchPolicy {
    fn default() -> Self {
        SwitchPolicy { max_b_share: 0.2 }
    }
}

/// The outcome of the early check.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use]
pub struct SwitchDecision {
    /// Whether fragment B must be consulted.
    pub use_b: bool,
    /// The upper-bound score share of the B-resident query terms.
    pub b_share: f64,
    /// Number of query terms resident in fragment B.
    pub b_terms: usize,
}

impl SwitchPolicy {
    /// Decide whether fragment B is needed for this query.
    pub fn decide(
        &self,
        terms: &[u32],
        frag: &FragmentedIndex,
        model: RankingModel,
    ) -> Result<SwitchDecision> {
        let index = frag.index();
        let stats = index.stats();
        let mut total = 0.0f64;
        let mut b_mass = 0.0f64;
        let mut b_terms = 0usize;
        for &t in terms {
            let df = index.df(t)?;
            if df == 0 {
                continue;
            }
            let bound = model.max_term_weight(index.max_tf(t)?, df, index.cf(t)?, &stats);
            total += bound;
            if !frag.term_in_a(t) {
                b_mass += bound;
                b_terms += 1;
            }
        }
        let b_share = if total > 0.0 { b_mass / total } else { 0.0 };
        Ok(SwitchDecision {
            use_b: b_share > self.max_b_share,
            b_share,
            b_terms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentSpec;
    use crate::index::InvertedIndex;
    use moa_corpus::{Collection, CollectionConfig};
    use std::sync::Arc;

    fn fixture() -> Arc<FragmentedIndex> {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = Arc::new(InvertedIndex::from_collection(&c));
        Arc::new(FragmentedIndex::build(idx, FragmentSpec::VolumeFraction(0.25)).unwrap())
    }

    #[test]
    fn all_a_query_needs_no_b() {
        let f = fixture();
        let a_terms: Vec<u32> = (0..f.index().vocab_size() as u32)
            .filter(|&t| f.term_in_a(t) && f.index().df(t).unwrap() > 0)
            .take(3)
            .collect();
        assert!(!a_terms.is_empty());
        let d = SwitchPolicy::default()
            .decide(&a_terms, &f, RankingModel::default())
            .unwrap();
        assert!(!d.use_b);
        assert_eq!(d.b_share, 0.0);
        assert_eq!(d.b_terms, 0);
    }

    #[test]
    fn all_b_query_needs_b() {
        let f = fixture();
        let b_terms: Vec<u32> = (0..f.index().vocab_size() as u32)
            .filter(|&t| !f.term_in_a(t) && f.index().df(t).unwrap() > 0)
            .take(3)
            .collect();
        assert!(!b_terms.is_empty());
        let d = SwitchPolicy::default()
            .decide(&b_terms, &f, RankingModel::default())
            .unwrap();
        assert!(d.use_b);
        assert!((d.b_share - 1.0).abs() < 1e-9);
        assert_eq!(d.b_terms, 3);
    }

    #[test]
    fn threshold_controls_decision() {
        let f = fixture();
        // A mixed query.
        let a_term = (0..f.index().vocab_size() as u32)
            .find(|&t| f.term_in_a(t) && f.index().df(t).unwrap() > 0)
            .unwrap();
        let b_term = (0..f.index().vocab_size() as u32)
            .find(|&t| !f.term_in_a(t) && f.index().df(t).unwrap() > 0)
            .unwrap();
        let q = vec![a_term, b_term];
        let strict = SwitchPolicy { max_b_share: 0.0 };
        let lax = SwitchPolicy { max_b_share: 1.0 };
        let model = RankingModel::default();
        assert!(strict.decide(&q, &f, model).unwrap().use_b);
        assert!(!lax.decide(&q, &f, model).unwrap().use_b);
    }

    #[test]
    fn unseen_terms_are_ignored() {
        let f = fixture();
        let dead = (0..f.index().vocab_size() as u32)
            .find(|&t| f.index().df(t).unwrap() == 0)
            .unwrap();
        let d = SwitchPolicy::default()
            .decide(&[dead], &f, RankingModel::default())
            .unwrap();
        assert!(!d.use_b);
        assert_eq!(d.b_share, 0.0);
    }

    #[test]
    fn unknown_term_errors() {
        let f = fixture();
        assert!(SwitchPolicy::default()
            .decide(&[u32::MAX], &f, RankingModel::default())
            .is_err());
    }

    #[test]
    fn b_share_is_monotone_in_b_terms() {
        let f = fixture();
        let a_terms: Vec<u32> = (0..f.index().vocab_size() as u32)
            .filter(|&t| f.term_in_a(t) && f.index().df(t).unwrap() > 0)
            .take(2)
            .collect();
        let b_terms: Vec<u32> = (0..f.index().vocab_size() as u32)
            .filter(|&t| !f.term_in_a(t) && f.index().df(t).unwrap() > 0)
            .take(2)
            .collect();
        let model = RankingModel::default();
        let policy = SwitchPolicy::default();
        let mut q = a_terms.clone();
        let share0 = policy.decide(&q, &f, model).unwrap().b_share;
        q.push(b_terms[0]);
        let share1 = policy.decide(&q, &f, model).unwrap().b_share;
        q.push(b_terms[1]);
        let share2 = policy.decide(&q, &f, model).unwrap().b_share;
        assert!(share0 <= share1 && share1 <= share2);
    }
}
