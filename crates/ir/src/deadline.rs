//! Per-query deadline budgets for graceful degradation under overload.
//!
//! A serving deployment cannot let one slow query wedge a shard worker
//! while admitted batches pile up behind it. [`DeadlineGate`] is the
//! cheap, sharable expiry signal the execution paths consult at their
//! loop boundaries — the same hook pattern as
//! [`crate::threshold::SharedThreshold`]: one `Arc` per query, shared by
//! every shard evaluating it, checked inside the hot loops at a cost that
//! vanishes against the work it bounds.
//!
//! **Cost discipline.** `Instant::now()` is a vDSO call but still tens of
//! nanoseconds — too much to pay per candidate document. [`DeadlineGate::
//! poll`] therefore *strides* the clock: only every [`POLL_STRIDE`]-th
//! poll reads the clock; the rest are one relaxed atomic load. Once the
//! deadline is observed past, the expiry latches (an `AtomicBool` that
//! never resets), so every subsequent poll on every shard is a single
//! load.
//!
//! **Soundness.** Expiry never changes *which* documents are admitted,
//! scored, or pruned — it only truncates the evaluation loop early. Every
//! score in the heap at expiry was computed exactly (identical `f64`s to
//! the unbounded run), so a timed-out query returns a *prefix-honest*
//! partial top-N: real documents with their real scores, plus work
//! counters describing exactly what was inspected. A query that completes
//! without observing expiry is bit-identical to one executed with no
//! deadline at all: the poll is read-only.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// Clock reads are amortized: one `Instant::now()` per this many polls.
/// A power of two so the stride test is a mask. At typical per-candidate
/// loop costs (tens of nanoseconds), 64 bounds the detection lag to a few
/// microseconds — far below any meaningful deadline budget.
pub const POLL_STRIDE: u32 = 64;

/// A latching per-query deadline, shared by every evaluator serving the
/// query (one `Arc<DeadlineGate>` per query, cloned into each shard's
/// [`crate::threshold::BoundGate`]).
#[derive(Debug)]
pub struct DeadlineGate {
    deadline: Instant,
    /// Latched expiry: set once, never cleared. Relaxed everywhere — the
    /// flag orders no other memory, and a late observation only delays
    /// truncation by a stride.
    expired: AtomicBool,
    /// Poll counter driving the clock-read stride.
    polls: AtomicU32,
}

impl DeadlineGate {
    /// A gate expiring `budget` from now — the admission-time constructor
    /// the serving layer uses (queueing time counts against the budget).
    pub fn after(budget: Duration) -> DeadlineGate {
        DeadlineGate::at(Instant::now() + budget)
    }

    /// A gate expiring at an absolute instant.
    pub fn at(deadline: Instant) -> DeadlineGate {
        DeadlineGate {
            deadline,
            expired: AtomicBool::new(false),
            polls: AtomicU32::new(0),
        }
    }

    /// Poll the deadline from an evaluation loop: `true` once the budget
    /// is spent. Cheap by design — a relaxed load on the fast path, one
    /// clock read every [`POLL_STRIDE`] calls until expiry latches.
    #[inline]
    pub fn poll(&self) -> bool {
        if self.expired.load(Ordering::Relaxed) {
            return true;
        }
        let n = self.polls.fetch_add(1, Ordering::Relaxed);
        if n & (POLL_STRIDE - 1) != 0 {
            return false;
        }
        if Instant::now() >= self.deadline {
            self.expired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Whether expiry has already been observed (no clock read; a `false`
    /// may lag the wall clock by up to a stride of polls).
    #[inline]
    pub fn is_expired(&self) -> bool {
        self.expired.load(Ordering::Relaxed)
    }

    /// Latch the gate expired immediately — the deterministic test hook
    /// (fault-injection suites expire a query without racing a clock).
    pub fn force_expire(&self) {
        self.expired.store(true, Ordering::Relaxed);
    }

    /// Budget remaining on the wall clock (zero once past the deadline).
    pub fn remaining(&self) -> Duration {
        self.deadline.saturating_duration_since(Instant::now())
    }

    /// Lifetime count of [`DeadlineGate::poll`] calls — the telemetry
    /// observable behind the deadline-overhead story: polls ÷
    /// [`POLL_STRIDE`] bounds the clock reads an evaluation paid for its
    /// deadline discipline.
    pub fn polls(&self) -> u32 {
        self.polls.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn far_deadline_never_expires_under_polling() {
        let g = DeadlineGate::after(Duration::from_secs(3600));
        for _ in 0..(POLL_STRIDE * 4) {
            assert!(!g.poll());
        }
        assert!(!g.is_expired());
        assert!(g.remaining() > Duration::from_secs(3000));
        assert_eq!(g.polls(), POLL_STRIDE * 4, "every poll is counted");
    }

    #[test]
    fn past_deadline_expires_and_latches() {
        let g = DeadlineGate::at(Instant::now() - Duration::from_millis(1));
        // The very first poll reads the clock (stride counter starts at 0).
        assert!(g.poll());
        assert!(g.is_expired());
        assert!(g.poll(), "expiry must latch");
        assert_eq!(g.remaining(), Duration::ZERO);
    }

    #[test]
    fn expiry_is_observed_within_a_stride() {
        let g = DeadlineGate::at(Instant::now() - Duration::from_millis(1));
        // Regardless of where the counter sits, at most POLL_STRIDE polls
        // pass before a clock read observes the past deadline.
        let mut seen = false;
        for _ in 0..=POLL_STRIDE {
            if g.poll() {
                seen = true;
                break;
            }
        }
        assert!(seen, "a past deadline must be observed within one stride");
    }

    #[test]
    fn force_expire_is_immediate() {
        let g = DeadlineGate::after(Duration::from_secs(3600));
        assert!(!g.poll());
        g.force_expire();
        assert!(g.poll());
        assert!(g.is_expired());
    }
}
