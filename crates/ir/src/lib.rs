//! # moa-ir — a set-at-a-time IR engine with df-based fragmentation
//!
//! The retrieval substrate of the Moa top-N reproduction, modeled on the
//! mi Ror engine the paper's group ran at TREC:
//!
//! * [`dict`] — term dictionary,
//! * [`index`] — term-major inverted index with catalog statistics,
//! * [`ranking`] — TF-IDF / Hiemstra LM / BM25 term weighting,
//! * [`scorer`] — the shared scoring kernel: per-term precomputed
//!   constants ([`TermScorer`]) and per-index cached document norms
//!   ([`ScoreKernel`]), bit-exact with [`RankingModel::term_weight`],
//! * [`eval`] — set-at-a-time query evaluation with a reusable epoch
//!   accumulator,
//! * [`daat`] — document-at-a-time evaluation with MaxScore bounds
//!   pruning over galloping [`index::PostingCursor`]s,
//! * [`fragment`] — horizontal df-based fragmentation of the term–document
//!   matrix (Step 1 of the paper): the unsafe fragment-A-only strategy, the
//!   safe switch strategy, and non-dense-index-accelerated fragment-B access,
//! * [`safety`] — the early quality check that triggers the switch,
//! * [`physical`] — the unified physical retrieval layer: every engine
//!   path as a [`RetrievalOp`] with unified [`ExecReport`] counters,
//!   dispatched by [`EngineSet`] so a cost-driven planner can pick among
//!   them,
//! * [`metrics`] — precision/recall/AP and ranking-overlap metrics.

#![warn(missing_docs)]

pub mod accum;
pub mod daat;
pub mod dict;
pub mod error;
pub mod eval;
pub mod fragment;
pub mod index;
pub mod metrics;
pub mod physical;
pub mod ranking;
pub mod safety;
pub mod scorer;
pub mod text;
pub mod threshold;

pub use accum::EpochAccumulator;
pub use daat::{DaatReport, DaatSearcher};
pub use dict::Dictionary;
pub use error::{IrError, Result};
pub use eval::{SearchReport, Searcher};
pub use fragment::{
    FragSearchReport, FragSearcher, FragmentSpec, FragmentedIndex, ScanStats, Strategy, TdTable,
};
pub use index::{CollectionStats, InvertedIndex, PostingCursor};
pub use metrics::{average_precision, footrule_at, mean_of, overlap_at, precision_at, recall_at};
pub use physical::{
    EngineSet, ExecReport, ExhaustiveDaatOp, FragmentedOp, PhysicalPlan, PrunedDaatOp, RetrievalOp,
    SetAtATimeOp,
};
pub use ranking::RankingModel;
pub use safety::{SwitchDecision, SwitchPolicy};
pub use scorer::{ScoreBounds, ScoreKernel, TermScorer};
pub use text::{index_texts, tokenize, IndexBuilder};
pub use threshold::{BoundGate, SharedThreshold};
