//! # moa-ir — a set-at-a-time IR engine with df-based fragmentation
//!
//! The retrieval substrate of the Moa top-N reproduction, modeled on the
//! mi Ror engine the paper's group ran at TREC:
//!
//! * [`dict`] — term dictionary (FxHash-interned),
//! * [`blocks`] — block-compressed posting storage: 128-entry blocks,
//!   delta-encoded bit-packed payloads, contiguous per-block headers,
//!   decode-on-demand cursors,
//! * [`index`] — term-major inverted index over the block storage, with
//!   catalog statistics,
//! * [`ranking`] — TF-IDF / Hiemstra LM / BM25 term weighting,
//! * [`scorer`] — the shared scoring kernel: per-term precomputed
//!   constants ([`TermScorer`]) and per-index cached document norms
//!   ([`ScoreKernel`]), bit-exact with [`RankingModel::term_weight`],
//! * [`eval`] — set-at-a-time query evaluation with a reusable epoch
//!   accumulator,
//! * [`daat`] — document-at-a-time evaluation with MaxScore bounds
//!   pruning over skippable [`index::PostingCursor`]s, block-max bounds
//!   colocated with the storage blocks,
//! * [`scratch`] — the reusable per-query execution arena
//!   ([`QueryScratch`]): steady-state queries allocate nothing,
//! * [`deadline`] — per-query deadline budgets ([`DeadlineGate`]) polled
//!   at evaluation-loop boundaries for graceful degradation under
//!   overload (partial-but-exact rankings, honest counters),
//! * [`fragment`] — horizontal df-based fragmentation of the term–document
//!   matrix (Step 1 of the paper): the unsafe fragment-A-only strategy, the
//!   safe switch strategy, and non-dense-index-accelerated fragment-B access,
//! * [`safety`] — the early quality check that triggers the switch,
//! * [`physical`] — the unified physical retrieval layer: every engine
//!   path as a [`RetrievalOp`] with unified [`ExecReport`] counters,
//!   dispatched by [`EngineSet`] so a cost-driven planner can pick among
//!   them,
//! * [`metrics`] — precision/recall/AP and ranking-overlap metrics.

#![warn(missing_docs)]

pub mod accum;
pub mod blocks;
pub mod daat;
pub mod deadline;
pub mod dict;
pub mod error;
pub mod eval;
pub mod fragment;
pub mod index;
pub mod metrics;
pub mod physical;
pub mod ranking;
pub mod safety;
pub mod scorer;
pub mod scratch;
pub mod text;
pub mod threshold;

pub use accum::EpochAccumulator;
pub use blocks::{BlockHeader, BlockPostingList, CursorBuf, BLOCK_LEN};
pub use daat::{DaatReport, DaatSearcher, DaatStats};
pub use deadline::DeadlineGate;
pub use dict::Dictionary;
pub use error::{IrError, Result};
pub use eval::{SearchReport, Searcher};
pub use fragment::{
    FragSearchReport, FragSearcher, FragmentSpec, FragmentedIndex, ScanStats, Strategy, TdTable,
};
pub use index::{CollectionStats, InvertedIndex, PostingCursor};
pub use metrics::{average_precision, footrule_at, mean_of, overlap_at, precision_at, recall_at};
pub use physical::{
    EngineSet, ExecReport, ExhaustiveDaatOp, FragmentedOp, PhysicalPlan, PrunedDaatOp, RetrievalOp,
    SetAtATimeOp,
};
pub use ranking::RankingModel;
pub use safety::{SwitchDecision, SwitchPolicy};
pub use scorer::{BlockBound, ScoreBounds, ScoreKernel, TermScorer};
pub use scratch::QueryScratch;
pub use text::{index_texts, tokenize, IndexBuilder};
pub use threshold::{BoundGate, SharedThreshold};
