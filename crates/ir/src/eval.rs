//! Set-at-a-time ranked retrieval over the term-major index.
//!
//! [`Searcher`] is the *element-addressable* evaluation path: each query
//! term's posting run is fetched directly (the "recoded" fast layout). The
//! scan-based BAT evaluation the paper's fragmentation experiment measures
//! lives in [`crate::fragment`]; both share the [`crate::scorer`] kernel
//! (precomputed term constants + cached per-document norms) and this
//! module's accumulate-then-top-N shape.
//!
//! The sparse accumulator marks touched slots with a query *epoch* rather
//! than a `score == 0.0` sentinel, so a legitimately-zero partial score
//! (e.g. an idf of exactly zero when `df == N`) can never double-push a
//! document, and no O(num_docs) reset is needed between queries.

use std::sync::Arc;

use moa_topn::TopNHeap;

use crate::accum::EpochAccumulator;
use crate::error::Result;
use crate::index::InvertedIndex;
use crate::ranking::RankingModel;
use crate::scorer::ScoreKernel;

/// Result of a ranked query evaluation.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct SearchReport {
    /// Top `(doc, score)` pairs, best first (score desc, doc id asc).
    pub top: Vec<(u32, f64)>,
    /// Postings read while evaluating.
    pub postings_scanned: usize,
    /// Query terms that contributed at least one posting.
    pub terms_matched: usize,
    /// Documents whose score was accumulated and offered to the heap.
    pub candidates: usize,
    /// Whether the evaluation was truncated by an expired per-query
    /// deadline. The accumulator path polls at every run boundary *and*
    /// every [`crate::fragment::SCAN_POLL_STRIDE`] postings inside a run,
    /// so even a single giant run stops within about a thousand postings
    /// of expiry. A document's accumulated sum is only exact once *every*
    /// run has been consumed, so a timed-out evaluation returns an
    /// **empty** `top` — partial sums are not exact scores and are never
    /// surfaced as a ranking — while the counters stay honest about the
    /// work performed.
    pub timed_out: bool,
}

/// A reusable query evaluator with a workhorse score accumulator.
#[derive(Debug)]
pub struct Searcher<'a> {
    index: &'a InvertedIndex,
    kernel: Arc<ScoreKernel>,
    accum: EpochAccumulator,
}

impl<'a> Searcher<'a> {
    /// Create a searcher over an index with a ranking model.
    pub fn new(index: &'a InvertedIndex, model: RankingModel) -> Searcher<'a> {
        let kernel = Arc::new(ScoreKernel::new(model, index));
        let accum = EpochAccumulator::new(index.num_docs());
        Searcher::with_state(index, kernel, accum)
    }

    /// Create a searcher view over shared per-index state. `kernel` must
    /// have been built for `index` with the desired model; `accum` is the
    /// (possibly reused) score accumulator, sized to the index — the
    /// physical layer swaps one accumulator through short-lived views.
    pub fn with_state(
        index: &'a InvertedIndex,
        kernel: Arc<ScoreKernel>,
        accum: EpochAccumulator,
    ) -> Searcher<'a> {
        Searcher {
            index,
            kernel,
            accum,
        }
    }

    /// Tear the searcher down into its reusable accumulator.
    pub fn into_accum(self) -> EpochAccumulator {
        self.accum
    }

    /// The ranking model in use.
    pub fn model(&self) -> RankingModel {
        self.kernel.model()
    }

    /// Evaluate a bag-of-terms query, returning the top `n` documents.
    pub fn search(&mut self, terms: &[u32], n: usize) -> Result<SearchReport> {
        self.search_gated(terms, n, &crate::threshold::BoundGate::none())
    }

    /// [`Searcher::search`] with a gate hook: the accumulator path cannot
    /// prune on a threshold, but it polls the gate's per-query deadline
    /// between term runs. On expiry it retires the accumulator cleanly
    /// and reports `timed_out` with an empty ranking (partial sums are
    /// not exact scores; see [`SearchReport::timed_out`]).
    pub fn search_gated(
        &mut self,
        terms: &[u32],
        n: usize,
        gate: &crate::threshold::BoundGate,
    ) -> Result<SearchReport> {
        // Validate every term before touching the accumulator: a mid-query
        // error must not strand partial scores in a shared accumulator
        // (the physical layer reuses one across queries), or the next
        // query would inherit stale touched documents.
        for &term in terms {
            let _ = self.index.df(term)?;
        }
        let mut scanned = 0usize;
        let mut matched = 0usize;
        let mut timed_out = false;
        for &term in terms {
            // Deadline poll at the run boundary: an expired query stops
            // consuming runs; the retire below keeps the shared
            // accumulator clean for the next query.
            if gate.expired() {
                timed_out = true;
                break;
            }
            let df = self.index.df(term)?;
            let cf = self.index.cf(term)?;
            let scorer = self.kernel.term_scorer(df, cf);
            if self.index.run_len(term)? > 0 {
                matched += 1;
            }
            // Stream the run straight off the block-compressed storage
            // (block-by-block decode on a stack buffer, no allocation);
            // document order matches the flat layout, so the accumulation
            // order — and every resulting f64 — is unchanged. The poll
            // re-fires every SCAN_POLL_STRIDE postings *inside* the run,
            // so a giant run stops within a stride of expiry instead of
            // at its end.
            let kernel = &self.kernel;
            let accum = &mut self.accum;
            let mut in_run = 0usize;
            let completed = self.index.for_each_posting_while(term, |doc, tf| {
                if in_run.is_multiple_of(crate::fragment::SCAN_POLL_STRIDE)
                    && in_run > 0
                    && gate.expired()
                {
                    return false;
                }
                in_run += 1;
                let w = kernel.weight(&scorer, tf, doc);
                accum.add(doc, w);
                scanned += 1;
                true
            })?;
            if !completed {
                timed_out = true;
                break;
            }
        }

        let mut heap = TopNHeap::new(n);
        if !timed_out {
            for &doc in self.accum.touched() {
                heap.push(doc, self.accum.score(doc));
            }
        }
        // Epoch bump retires this query's slots without any reset pass —
        // including the partial sums of a timed-out query.
        self.accum.retire();

        let candidates = heap.pushes();
        Ok(SearchReport {
            top: heap.into_sorted_vec(),
            postings_scanned: scanned,
            terms_matched: matched,
            candidates,
            timed_out,
        })
    }

    /// Full ranking of every matching document (reference for metrics).
    pub fn rank_all(&mut self, terms: &[u32]) -> Result<Vec<(u32, f64)>> {
        let n = self.index.num_docs();
        Ok(self.search(terms, n)?.top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_corpus::{Collection, CollectionConfig};

    fn setup() -> (Collection, InvertedIndex) {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        (c, idx)
    }

    #[test]
    fn search_returns_scored_ranking() {
        let (_, idx) = setup();
        let mut s = Searcher::new(&idx, RankingModel::default());
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() / 2], terms[terms.len() - 1]];
        let rep = s.search(&q, 10).unwrap();
        assert!(!rep.top.is_empty());
        assert!(rep.top.len() <= 10);
        assert!(rep.top.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(rep.postings_scanned > 0);
        assert_eq!(rep.terms_matched, 2);
    }

    #[test]
    fn scores_are_sums_of_term_weights() {
        let (_, idx) = setup();
        let model = RankingModel::TfIdf;
        let mut s = Searcher::new(&idx, model);
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[0], terms[terms.len() - 1]];
        let rep = s.search(&q, 5).unwrap();
        let stats = idx.stats();
        for &(doc, score) in &rep.top {
            let mut expect = 0.0;
            for &t in &q {
                let (docs, tfs) = idx.decode_postings(t).unwrap();
                if let Some(i) = docs.iter().position(|&d| d == doc) {
                    expect += model.term_weight(
                        tfs[i],
                        idx.df(t).unwrap(),
                        idx.cf(t).unwrap(),
                        idx.doc_len(doc),
                        &stats,
                    );
                }
            }
            assert!((score - expect).abs() < 1e-9, "doc {doc}");
        }
    }

    #[test]
    fn accumulator_resets_between_queries() {
        let (_, idx) = setup();
        let mut s = Searcher::new(&idx, RankingModel::default());
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() - 1]];
        let first = s.search(&q, 5).unwrap();
        let second = s.search(&q, 5).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn unknown_term_is_error() {
        let (_, idx) = setup();
        let mut s = Searcher::new(&idx, RankingModel::default());
        assert!(s.search(&[u32::MAX], 5).is_err());
    }

    #[test]
    fn failed_query_leaves_the_accumulator_clean() {
        // A query that errors after a valid term must not strand partial
        // scores: the next query on the same (shared) accumulator has to
        // answer exactly as a fresh searcher would.
        let (_, idx) = setup();
        let mut s = Searcher::new(&idx, RankingModel::default());
        let terms = idx.terms_by_df_asc();
        let good = vec![terms[terms.len() - 1]];
        let want = s.search(&good, 5).unwrap();
        assert!(s.search(&[good[0], u32::MAX], 5).is_err());
        let again = s.search(&good, 5).unwrap();
        assert_eq!(want, again, "stale accumulator state leaked");
    }

    #[test]
    fn zero_weight_terms_do_not_double_push() {
        // Term 0 occurs in every document, so its TF-IDF idf is ln(1) = 0
        // and its contributions are legitimately zero. A `score == 0.0`
        // "untouched" sentinel would re-push those docs when a later term
        // touches them; the epoch marker must count each doc exactly once.
        let idx = InvertedIndex::from_sorted_postings(
            2,
            vec![5, 5, 5],
            &[(0, 0, 1), (0, 1, 1), (0, 2, 1), (1, 0, 2), (1, 1, 1)],
        )
        .unwrap();
        let mut s = Searcher::new(&idx, RankingModel::TfIdf);
        let rep = s.search(&[0, 1], 10).unwrap();
        assert_eq!(rep.top.len(), 3, "each doc exactly once: {:?}", rep.top);
        let mut docs: Vec<u32> = rep.top.iter().map(|&(d, _)| d).collect();
        docs.sort_unstable();
        assert_eq!(docs, vec![0, 1, 2]);
        // Doc 2 matched only the zero-idf term: retained with score 0.
        assert_eq!(rep.top.last().map(|&(d, s)| (d, s)), Some((2, 0.0)));
        // And the accumulator stays sound on the next query.
        let again = s.search(&[0, 1], 10).unwrap();
        assert_eq!(rep, again);
    }

    #[test]
    fn empty_query_returns_empty() {
        let (_, idx) = setup();
        let mut s = Searcher::new(&idx, RankingModel::default());
        let rep = s.search(&[], 5).unwrap();
        assert!(rep.top.is_empty());
        assert_eq!(rep.postings_scanned, 0);
    }

    #[test]
    fn term_with_no_postings_contributes_nothing() {
        let (c, idx) = setup();
        // Find a term with df == 0 (vocabulary is larger than observed).
        let dead = (0..c.vocab_size() as u32)
            .find(|&t| c.df()[t as usize] == 0)
            .expect("tiny collection leaves unseen terms");
        let mut s = Searcher::new(&idx, RankingModel::default());
        let rep = s.search(&[dead], 5).unwrap();
        assert!(rep.top.is_empty());
        assert_eq!(rep.terms_matched, 0);
    }

    #[test]
    fn rank_all_is_consistent_with_topn() {
        let (_, idx) = setup();
        let mut s = Searcher::new(&idx, RankingModel::default());
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() / 2]];
        let all = s.rank_all(&q).unwrap();
        let top5 = s.search(&q, 5).unwrap().top;
        assert_eq!(&all[..top5.len().min(5)], &top5[..]);
    }

    #[test]
    fn models_disagree_but_both_rank() {
        let (_, idx) = setup();
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() / 3]];
        let mut s1 = Searcher::new(&idx, RankingModel::TfIdf);
        let mut s2 = Searcher::new(&idx, RankingModel::Bm25 { k1: 1.2, b: 0.75 });
        let r1 = s1.search(&q, 10).unwrap();
        let r2 = s2.search(&q, 10).unwrap();
        assert_eq!(r1.postings_scanned, r2.postings_scanned);
        assert!(!r1.top.is_empty() && !r2.top.is_empty());
    }
}
