//! Cross-engine score-threshold propagation.
//!
//! When several evaluators chase the *same* logical top-N — one engine per
//! document-partition shard in `moa_serve` — every heap insertion anywhere
//! raises a lower bound on the final global N-th score: a shard whose heap
//! holds N entries of score ≥ t has proven that N documents of final score
//! ≥ t exist, so the global N-th best is ≥ t. [`SharedThreshold`] carries
//! the tightest such bound as a single monotonically increasing
//! `AtomicU64`, and [`BoundGate`] is the (optional) hook the pruning gates
//! of the DAAT kernel and the fragmented evaluator consult: a document
//! whose score *upper bound* is **strictly below** the propagated
//! threshold cannot enter the global top-N and is skipped mid-flight, even
//! when the local heap would still have admitted it.
//!
//! Soundness: the threshold only ever *under*-estimates the final global
//! N-th score, and gating prunes strictly-below documents only, so every
//! document of the true global top-N survives in its shard's local heap
//! (ties at the threshold are never pruned — the tie-break by document id
//! is left to the final k-way merge). Publication and reads use `Relaxed`
//! ordering: the bound is monotone under `fetch_max`, and no other memory
//! is synchronized through it. NaN scores are rejected at the
//! [`SharedThreshold::offer`] boundary: the order-preserving encoding
//! ranks a positive-sign NaN *above* `+∞`, so one NaN reaching the
//! `fetch_max` would freeze the threshold at an unsound maximum and prune
//! every document on every shard.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use moa_topn::TopNHeap;

use crate::deadline::DeadlineGate;

/// Map an `f64` onto a `u64` whose unsigned order matches the float's
/// total order (negatives flipped, positives offset past them) — the
/// standard trick that lets one `fetch_max` maintain a float maximum.
#[inline]
fn encode(score: f64) -> u64 {
    let bits = score.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`encode`].
#[inline]
fn decode(key: u64) -> f64 {
    f64::from_bits(if key & (1 << 63) != 0 {
        key & !(1 << 63)
    } else {
        !key
    })
}

/// A monotonically increasing score bound shared across evaluators
/// (typically one per query, shared by all shards evaluating it).
#[derive(Debug)]
pub struct SharedThreshold(AtomicU64);

impl SharedThreshold {
    /// A fresh threshold, admitting everything (−∞).
    pub fn new() -> SharedThreshold {
        SharedThreshold(AtomicU64::new(encode(f64::NEG_INFINITY)))
    }

    /// Raise the bound to `score` if it is higher than the current bound
    /// (never lowers it).
    ///
    /// **NaN guard.** A NaN is silently ignored. The order-preserving
    /// encoding maps a positive-sign NaN *above* `+∞` (its exponent and
    /// mantissa bits are all-ones-plus), so a raw `fetch_max` on
    /// `encode(NaN)` would poison the threshold into pruning every
    /// document on every shard — an unsound bound smuggled in through one
    /// bad score. No ranking model in this workspace produces NaN, but the
    /// gate is the serving layer's last line of defense, so the guard is
    /// enforced here rather than assumed upstream. Ignoring is the sound
    /// direction: the threshold only ever under-estimates the global N-th
    /// score, and skipping an offer merely leaves it looser.
    #[inline]
    pub fn offer(&self, score: f64) {
        if score.is_nan() {
            return;
        }
        self.0.fetch_max(encode(score), Ordering::Relaxed);
    }

    /// The current bound (−∞ until the first [`SharedThreshold::offer`]).
    #[inline]
    pub fn get(&self) -> f64 {
        decode(self.0.load(Ordering::Relaxed))
    }
}

impl Default for SharedThreshold {
    fn default() -> Self {
        SharedThreshold::new()
    }
}

/// The pruning-gate hook: either inert (single-engine execution, the
/// default) or backed by a [`SharedThreshold`] that other shards are
/// raising concurrently. Optionally carries a per-query [`DeadlineGate`]
/// the evaluation loops poll at their block boundaries (graceful
/// degradation under overload — see [`crate::deadline`]).
#[derive(Debug, Clone, Default)]
pub struct BoundGate {
    shared: Option<Arc<SharedThreshold>>,
    deadline: Option<Arc<DeadlineGate>>,
}

impl BoundGate {
    /// The inert gate: admits every bound, publishes nothing.
    pub fn none() -> BoundGate {
        BoundGate {
            shared: None,
            deadline: None,
        }
    }

    /// A gate propagating through `threshold`.
    pub fn shared(threshold: Arc<SharedThreshold>) -> BoundGate {
        BoundGate {
            shared: Some(threshold),
            deadline: None,
        }
    }

    /// Attach a per-query deadline: evaluation loops polling this gate
    /// truncate (honestly, with exact partial results) once the budget is
    /// spent. The same `Arc` is shared by every shard serving the query,
    /// so expiry observed anywhere stops the work everywhere.
    pub fn with_deadline(mut self, deadline: Arc<DeadlineGate>) -> BoundGate {
        self.deadline = Some(deadline);
        self
    }

    /// The attached deadline, if any.
    pub fn deadline(&self) -> Option<&Arc<DeadlineGate>> {
        self.deadline.as_ref()
    }

    /// Poll the per-query deadline (always `false` without one). Called
    /// at evaluation-loop boundaries; never changes pruning decisions —
    /// a query that completes without observing expiry is bit-identical
    /// to one executed with no deadline at all.
    #[inline]
    pub fn expired(&self) -> bool {
        match &self.deadline {
            None => false,
            Some(d) => d.poll(),
        }
    }

    /// Whether this gate is backed by a shared threshold.
    pub fn is_active(&self) -> bool {
        self.shared.is_some()
    }

    /// Whether the gate currently carries a finite threshold — i.e. some
    /// engine has already published a full heap. Until then, bound
    /// computations against the gate cannot prune anything, so evaluators
    /// may stay on their cheap warm-up paths.
    #[inline]
    pub fn has_signal(&self) -> bool {
        match &self.shared {
            None => false,
            Some(t) => t.get() > f64::NEG_INFINITY,
        }
    }

    /// Whether a document with score upper bound `bound` could still reach
    /// the *global* top-N. Ties at the threshold are admitted (the bound
    /// is a lower bound on the global N-th score, and equal scores may
    /// still win the id tie-break).
    #[inline]
    pub fn admits(&self, bound: f64) -> bool {
        match &self.shared {
            None => true,
            Some(t) => bound >= t.get(),
        }
    }

    /// Publish `heap`'s current N-th score (if the heap is full): the
    /// caller has proven N documents of at least that score exist.
    #[inline]
    pub fn publish(&self, heap: &TopNHeap) {
        if let Some(t) = &self.shared {
            if let Some(score) = heap.threshold() {
                t.offer(score);
            }
        }
    }

    /// Publish a known N-th score directly (for paths that already hold a
    /// complete top-N rather than a live heap). The same proof obligation
    /// as [`BoundGate::publish`] applies: the caller must have N exact
    /// scores at or above `score`.
    #[inline]
    pub fn publish_score(&self, score: f64) {
        if let Some(t) = &self.shared {
            t.offer(score);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_preserves_float_order() {
        let values = [
            f64::NEG_INFINITY,
            -1.0e300,
            -2.5,
            -0.0,
            0.0,
            1.0e-300,
            2.5,
            1.0e300,
            f64::INFINITY,
        ];
        for w in values.windows(2) {
            assert!(encode(w[0]) <= encode(w[1]), "{} vs {}", w[0], w[1]);
            assert_eq!(decode(encode(w[0])), w[0]);
        }
        // −0.0 and +0.0 round-trip to themselves and order consistently.
        assert!(encode(-0.0) < encode(0.0));
    }

    #[test]
    fn threshold_is_monotone_max() {
        let t = SharedThreshold::new();
        assert_eq!(t.get(), f64::NEG_INFINITY);
        t.offer(1.5);
        assert_eq!(t.get(), 1.5);
        t.offer(0.5); // lower: ignored
        assert_eq!(t.get(), 1.5);
        t.offer(-3.0);
        assert_eq!(t.get(), 1.5);
        t.offer(2.0);
        assert_eq!(t.get(), 2.0);
    }

    #[test]
    fn nan_offers_are_ignored() {
        let t = SharedThreshold::new();
        t.offer(f64::NAN);
        assert_eq!(
            t.get(),
            f64::NEG_INFINITY,
            "a NaN must not move the threshold"
        );
        t.offer(1.25);
        t.offer(f64::NAN);
        assert_eq!(t.get(), 1.25, "a NaN must not poison an existing bound");
        // And the gate built on it keeps admitting correctly.
        let t = Arc::new(SharedThreshold::new());
        let g = BoundGate::shared(Arc::clone(&t));
        t.offer(f64::NAN);
        assert!(g.admits(-1.0e300), "NaN offer must leave the gate open");
        assert!(!g.has_signal());
    }

    #[test]
    fn subnormals_and_signed_zero_order_and_round_trip() {
        let subnormal = f64::from_bits(1); // smallest positive subnormal
        let neg_subnormal = f64::from_bits(1 | (1 << 63));
        let values = [
            -f64::MIN_POSITIVE,
            neg_subnormal,
            -0.0,
            0.0,
            subnormal,
            f64::MIN_POSITIVE,
        ];
        for w in values.windows(2) {
            assert!(encode(w[0]) < encode(w[1]), "{:e} vs {:e}", w[0], w[1]);
        }
        for v in values {
            assert_eq!(
                decode(encode(v)).to_bits(),
                v.to_bits(),
                "{v:e} must round-trip bit-exactly"
            );
        }
        // Monotone max across the subnormal range through the public API.
        let t = SharedThreshold::new();
        t.offer(neg_subnormal);
        assert_eq!(t.get().to_bits(), neg_subnormal.to_bits());
        t.offer(-0.0);
        assert_eq!(t.get().to_bits(), (-0.0f64).to_bits());
        t.offer(0.0);
        assert_eq!(t.get().to_bits(), 0.0f64.to_bits());
        t.offer(subnormal);
        assert_eq!(t.get().to_bits(), subnormal.to_bits());
        t.offer(neg_subnormal); // lower: ignored
        assert_eq!(t.get().to_bits(), subnormal.to_bits());
    }

    #[test]
    fn inert_gate_admits_everything() {
        let g = BoundGate::none();
        assert!(!g.is_active());
        assert!(g.admits(f64::NEG_INFINITY));
        assert!(g.admits(-1.0e300));
    }

    #[test]
    fn active_gate_prunes_strictly_below_and_keeps_ties() {
        let t = Arc::new(SharedThreshold::new());
        let g = BoundGate::shared(Arc::clone(&t));
        assert!(g.is_active());
        assert!(g.admits(-1.0), "everything admitted before any offer");
        t.offer(0.7);
        assert!(!g.admits(0.5));
        assert!(g.admits(0.7), "tie at the threshold must survive");
        assert!(g.admits(0.9));
    }

    #[test]
    fn publish_requires_a_full_heap() {
        let t = Arc::new(SharedThreshold::new());
        let g = BoundGate::shared(Arc::clone(&t));
        let mut heap = TopNHeap::new(2);
        heap.push(1, 0.9);
        g.publish(&heap);
        assert_eq!(t.get(), f64::NEG_INFINITY, "partial heap proves nothing");
        heap.push(2, 0.4);
        g.publish(&heap);
        assert_eq!(t.get(), 0.4);
        heap.push(3, 0.6);
        g.publish(&heap);
        assert_eq!(t.get(), 0.6);
    }

    #[test]
    fn gates_share_one_threshold() {
        let t = Arc::new(SharedThreshold::new());
        let a = BoundGate::shared(Arc::clone(&t));
        let b = a.clone();
        t.offer(1.0);
        assert!(!a.admits(0.9));
        assert!(!b.admits(0.9));
    }
}
