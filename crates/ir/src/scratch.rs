//! Reusable per-query scratch: the zero-allocation execution arena.
//!
//! A pruned DAAT query used to allocate on every execution — a `Vec` of
//! per-term states, the per-cursor decode buffers, the candidate and
//! bound work lists, the top-N heap, and the result vector. None of those
//! allocations carries information across queries; they are pure arena
//! state. [`QueryScratch`] owns all of them as flat, capacity-retaining
//! buffers keyed by position, so after the first query at a given shape
//! (term count, N) **steady-state execution performs zero heap
//! allocations** — pinned by the counting-allocator test in
//! `crates/ir/tests/alloc_steady_state.rs`.
//!
//! One scratch serves one engine at a time: [`crate::physical::EngineSet`]
//! owns one (giving every `moa_serve` shard its own pool, since each shard
//! owns an engine set), and the standalone
//! [`crate::daat::DaatSearcher::search_into`] /
//! [`crate::daat::DaatSearcher::search_exhaustive_into`] entry points take
//! it explicitly.
//!
//! Layout note: per-term cursor state is kept *structure-of-arrays*
//! ([`TermMeta`] / [`CursorPos`] / [`CursorBuf`] in parallel vectors)
//! rather than as a `Vec` of combined state structs. That is what makes
//! reuse possible at all — the buffers carry no borrows of any index, so
//! they outlive queries against different indexes — and it keeps the hot
//! min-scan over current documents in one dense `u32` array.

use moa_obs::PhaseAgg;
use moa_topn::TopNHeap;

use crate::blocks::{CursorBuf, CursorPos};
use crate::scorer::TermScorer;

/// Per-query-term plain data: identity, precomputed scorer, and the
/// MaxScore bound. Cursor position and decode buffers live in the sibling
/// arrays of [`QueryScratch`] under the same position index.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TermMeta {
    /// The term id (block views and bound slices are re-derived from it —
    /// two offset loads — so the scratch holds no index borrows).
    pub term: u32,
    /// Position in the original query (bit-exact summation order).
    pub qpos: u32,
    /// Precomputed per-term scoring constants.
    pub scorer: TermScorer,
    /// Exact per-term posting maximum (MaxScore partition key).
    pub max_weight: f64,
    /// Start of this term's range in the bound table's flat
    /// [`crate::scorer::BlockBound`] array (resolved once per query so the
    /// per-candidate gates index directly).
    pub bounds_start: u32,
    /// Number of block bounds in the range (= number of storage blocks).
    pub bounds_len: u32,
}

/// The reusable query-execution arena. See the module docs.
#[derive(Debug)]
pub struct QueryScratch {
    /// Per-term metadata, sorted by the kernel per query.
    pub(crate) metas: Vec<TermMeta>,
    /// Per-term cursor positions, parallel to `metas`.
    pub(crate) pos: Vec<CursorPos>,
    /// Per-term block decode buffers, parallel to `metas`. Grows to the
    /// widest query seen and stays.
    pub(crate) bufs: Vec<CursorBuf>,
    /// Dense mirror of each cursor's current document (`u32::MAX` when
    /// exhausted) — the min-scan array.
    pub(crate) cur: Vec<u32>,
    /// Per-query-position contributions (original order, bit-exact sums).
    pub(crate) contrib: Vec<f64>,
    /// `prefix_bound[k]` = sum of the `k` smallest per-term bounds.
    pub(crate) prefix_bound: Vec<f64>,
    /// Matching essential cursor indices of the current candidate.
    pub(crate) matching: Vec<usize>,
    /// Mini-block-refined local bound of each matching cursor, parallel to
    /// `matching` — computed once while the gate loads the `BlockBound`,
    /// reused by the refined gate and the suffix sums without reloading.
    pub(crate) match_bound: Vec<f64>,
    /// Exact suffix bounds over the matching cursors.
    pub(crate) suffix_bound: Vec<f64>,
    /// Non-essential shallow-bound prefix sums.
    pub(crate) ne_prefix: Vec<f64>,
    /// The reusable top-N heap ([`TopNHeap::reset`] per query).
    pub(crate) heap: TopNHeap,
    /// The current query's results, best first — filled by the `_into`
    /// search entry points in place of an allocated report.
    pub out: Vec<(u32, f64)>,
    /// Per-phase wall time of the query currently (or last) served out of
    /// this arena: a plain `Copy` aggregate written at *stage boundaries*
    /// (a handful of clock reads per query, nothing per posting), reset by
    /// [`QueryScratch::begin`]. Zero-allocation like the rest of the
    /// arena — the telemetry contract is pinned alongside the execution
    /// one in `crates/ir/tests/alloc_steady_state.rs`.
    pub(crate) phases: PhaseAgg,
    /// Queries this arena has begun serving over its lifetime. Never
    /// reset: a serving worker that truly reuses one arena across a whole
    /// stream shows the stream's length here, which is how the pool
    /// teardown tests prove the scratch hand-off (worker-owned arena in,
    /// same arena back out) rather than assuming it.
    queries_begun: u64,
}

impl QueryScratch {
    /// An empty arena; buffers grow to each query shape's high-water mark
    /// on first use and are retained afterwards.
    pub fn new() -> QueryScratch {
        QueryScratch {
            metas: Vec::new(),
            pos: Vec::new(),
            bufs: Vec::new(),
            cur: Vec::new(),
            contrib: Vec::new(),
            prefix_bound: Vec::new(),
            matching: Vec::new(),
            match_bound: Vec::new(),
            suffix_bound: Vec::new(),
            ne_prefix: Vec::new(),
            heap: TopNHeap::new(0),
            out: Vec::new(),
            phases: PhaseAgg::new(),
            queries_begun: 0,
        }
    }

    /// Per-phase wall times of the most recent query served out of this
    /// arena (see [`moa_obs::Phase`] for the vocabulary).
    pub fn phases(&self) -> PhaseAgg {
        self.phases
    }

    /// Lifetime count of queries this arena has begun serving (monotone;
    /// survives across batches and worker hand-offs).
    pub fn queries_begun(&self) -> u64 {
        self.queries_begun
    }

    /// Prepare the per-term arrays for a query of `m` terms: clears the
    /// per-query state and grows the decode-buffer pool if this query is
    /// wider than any seen before.
    pub(crate) fn begin(&mut self, m: usize, n: usize) {
        self.queries_begun += 1;
        self.phases.reset();
        self.metas.clear();
        self.pos.clear();
        self.cur.clear();
        self.contrib.clear();
        self.prefix_bound.clear();
        self.matching.clear();
        self.match_bound.clear();
        self.suffix_bound.clear();
        self.ne_prefix.clear();
        if self.bufs.len() < m {
            self.bufs.resize_with(m, CursorBuf::new);
        }
        self.metas.reserve(m);
        self.pos.reserve(m);
        self.cur.reserve(m);
        self.matching.reserve(m);
        self.match_bound.reserve(m);
        self.prefix_bound.reserve(m + 1);
        self.suffix_bound.reserve(m + 1);
        self.ne_prefix.reserve(m + 1);
        self.heap.reset(n);
    }
}

impl Default for QueryScratch {
    fn default() -> Self {
        QueryScratch::new()
    }
}
