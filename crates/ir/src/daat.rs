//! Document-at-a-time (element-at-a-time) evaluation, bounds-pruned.
//!
//! The paper's Step 1 observes: *"databases preferably operate set-based in
//! contrast with the element-at-a-time operation of most IR systems, \[so\]
//! IR technology and optimization techniques are not directly applicable in
//! a content based retrieval DBMS."* This module implements that contrasted
//! architecture — per-term posting cursors merged document-at-a-time, as
//! INQUERY-class engines do — so the set-based/element-at-a-time gap can be
//! measured (experiment E13) instead of asserted.
//!
//! [`DaatSearcher::search`] goes further than a plain merge: it applies the
//! same score-upper-bound machinery that powers the TA threshold and the
//! fragmentation safety check *inside* the hot loop, MaxScore-style:
//!
//! 1. query terms are sorted by their maximum possible contribution —
//!    the exact per-term posting maximum the
//!    [`crate::scorer::ScoreKernel`] precomputes at build time,
//! 2. terms whose cumulative bound cannot lift any document into the
//!    current top-N ([`moa_topn::TopNHeap::would_enter`]) become
//!    *non-essential*: their cursors are never merged, only `seek`-ed
//!    ([`crate::index::PostingCursor`], galloping skip),
//! 3. a document whose partial score plus the remaining bound cannot enter
//!    the heap is abandoned early (`bound_exits`).
//!
//! Results are **bit-exact** with the exhaustive merge
//! ([`DaatSearcher::search_exhaustive`]) and with the set-at-a-time
//! evaluator: per-document contributions are summed in original query-term
//! order, and all paths share the [`crate::scorer::ScoreKernel`] so every
//! weight is the identical `f64`. Only the work differs — `postings_scanned`
//! shrinks, `docs_skipped`/`seeks`/`bound_exits` account for the saving.

use std::sync::{Arc, OnceLock};

use moa_topn::TopNHeap;

use crate::error::Result;
use crate::index::{InvertedIndex, PostingCursor};
use crate::ranking::RankingModel;
use crate::scorer::{ScoreBounds, ScoreKernel, TermScorer};
use crate::threshold::BoundGate;

/// Result of a document-at-a-time evaluation.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct DaatReport {
    /// Top `(doc, score)` pairs, best first.
    pub top: Vec<(u32, f64)>,
    /// Postings consumed and scored (the element-at-a-time work measure).
    pub postings_scanned: usize,
    /// Cursor-advance operations performed.
    pub cursor_advances: usize,
    /// Postings bypassed without scoring (via galloping seeks or pruned
    /// tails). `postings_scanned + docs_skipped` equals the exhaustive
    /// merge's posting volume.
    pub docs_skipped: usize,
    /// Galloping `seek` calls issued on non-essential cursors.
    pub seeks: usize,
    /// Documents abandoned because partial score + remaining bound could
    /// not enter the top-N heap.
    pub bound_exits: usize,
    /// Documents whose exact score was computed and offered to the heap.
    pub candidates: usize,
}

/// A document-at-a-time evaluator over per-term posting cursors, with a
/// per-index scoring kernel built once and reused across queries.
#[derive(Debug)]
pub struct DaatSearcher<'a> {
    index: &'a InvertedIndex,
    kernel: Arc<ScoreKernel>,
    /// Per-term bound tables, built lazily on the first pruned search —
    /// exhaustive-only users never pay the two full scoring passes. Shared
    /// (`Arc`) so the physical layer can hand out per-query searcher views
    /// without rebuilding the tables.
    bounds: Arc<OnceLock<ScoreBounds>>,
}

/// Per-query-term evaluation state: cursor, precomputed scorer, bounds.
struct TermState<'p> {
    cursor: PostingCursor<'p>,
    scorer: TermScorer,
    /// Upper bound on any single posting's contribution (exact per-term
    /// posting maximum).
    max_weight: f64,
    /// Per-fine-block exact contribution maxima (block-max pruning).
    block_max: &'p [f64],
    /// Per-fine-block last document ids, aligned with `block_max`.
    block_last: &'p [u32],
    /// Coarse-block maxima (deep-skip widening).
    coarse_max: &'p [f64],
    /// Coarse-block last document ids, aligned with `coarse_max`.
    coarse_last: &'p [u32],
    /// Position in the original query (bit-exact summation order).
    qpos: usize,
}

impl TermState<'_> {
    /// Block-max bound of the current posting's block.
    #[inline]
    fn local_bound(&self) -> f64 {
        self.block_max[self.cursor.position() / ScoreBounds::BLOCK_POSTINGS]
    }

    /// Last document id of the current posting's block — the horizon up
    /// to which [`TermState::local_bound`] stays valid.
    #[inline]
    fn current_block_last(&self) -> u32 {
        self.block_last[self.cursor.position() / ScoreBounds::BLOCK_POSTINGS]
    }

    /// Coarse-block bound of the current posting's block.
    #[inline]
    fn coarse_bound(&self) -> f64 {
        self.coarse_max[self.cursor.position() / ScoreBounds::COARSE_BLOCK_POSTINGS]
    }

    /// Last document id of the current posting's coarse block.
    #[inline]
    fn current_coarse_last(&self) -> u32 {
        self.coarse_last[self.cursor.position() / ScoreBounds::COARSE_BLOCK_POSTINGS]
    }

    /// Block-max bound on this term's contribution to `target`, found by
    /// a *shallow* block-boundary search (no posting is touched and the
    /// cursor does not move): the block holding the first posting ≥
    /// `target`. 0.0 when the run is exhausted before `target`.
    #[inline]
    fn shallow_bound(&self, target: u32) -> f64 {
        let k0 = self.cursor.position() / ScoreBounds::BLOCK_POSTINGS;
        if k0 >= self.block_last.len() {
            return 0.0;
        }
        let k = k0 + self.block_last[k0..].partition_point(|&d| d < target);
        self.block_max.get(k).copied().unwrap_or(0.0)
    }
}

impl<'a> DaatSearcher<'a> {
    /// Create an evaluator with the given ranking model, materializing the
    /// per-document norm table once.
    pub fn new(index: &'a InvertedIndex, model: RankingModel) -> DaatSearcher<'a> {
        DaatSearcher::with_shared(
            index,
            Arc::new(ScoreKernel::new(model, index)),
            Arc::new(OnceLock::new()),
        )
    }

    /// Create an evaluator view over shared per-index state. `kernel` must
    /// have been built for `index` with the desired ranking model; `bounds`
    /// caches the lazily built bound tables across views (pass the same
    /// `Arc` every time so the two scoring passes happen at most once).
    pub fn with_shared(
        index: &'a InvertedIndex,
        kernel: Arc<ScoreKernel>,
        bounds: Arc<OnceLock<ScoreBounds>>,
    ) -> DaatSearcher<'a> {
        DaatSearcher {
            index,
            kernel,
            bounds,
        }
    }

    fn bounds(&self) -> &ScoreBounds {
        self.bounds
            .get_or_init(|| ScoreBounds::new(&self.kernel, self.index))
    }

    /// The scoring kernel (per-index precomputed state) in use.
    pub fn kernel(&self) -> &ScoreKernel {
        &self.kernel
    }

    fn term_states<'s>(&'s self, terms: &[u32]) -> Result<Vec<TermState<'s>>> {
        let bounds = self.bounds();
        let mut states = Vec::with_capacity(terms.len());
        for (qpos, &t) in terms.iter().enumerate() {
            let df = self.index.df(t)?;
            let cf = self.index.cf(t)?;
            let scorer = self.kernel.term_scorer(df, cf);
            let max_weight = bounds.term_max_weight(t);
            let (block_max, block_last) = bounds.term_blocks(t);
            let (coarse_max, coarse_last) = bounds.term_coarse_blocks(t);
            states.push(TermState {
                cursor: self.index.cursor(t)?,
                scorer,
                max_weight,
                block_max,
                block_last,
                coarse_max,
                coarse_last,
                qpos,
            });
        }
        Ok(states)
    }

    /// Evaluate a query document-at-a-time with MaxScore pruning,
    /// returning the top `n`. Bit-exact with
    /// [`DaatSearcher::search_exhaustive`]; strictly less work whenever
    /// the heap threshold disqualifies low-bound terms.
    pub fn search(&self, terms: &[u32], n: usize) -> Result<DaatReport> {
        self.search_gated(terms, n, &BoundGate::none())
    }

    /// [`DaatSearcher::search`] with a cross-engine threshold hook: every
    /// pruning gate additionally consults `gate` (documents whose bound
    /// falls strictly below the propagated global threshold are skipped
    /// even while the local heap still has room for them), and every heap
    /// insertion publishes the local N-th score back through the gate.
    /// The *local* top-N may therefore lose tail entries that cannot make
    /// the global top-N; the cross-shard merge remains bit-exact.
    pub fn search_gated(&self, terms: &[u32], n: usize, gate: &BoundGate) -> Result<DaatReport> {
        let mut states = self.term_states(terms)?;
        let m = states.len();
        // Ascending bound order: the cheapest terms come first so a prefix
        // of them can be declared non-essential as the threshold rises.
        states.sort_by(|a, b| {
            a.max_weight
                .total_cmp(&b.max_weight)
                .then(a.qpos.cmp(&b.qpos))
        });
        // prefix_bound[k] = sum of the k smallest per-term bounds: the most
        // any document matching only terms[..k] can score.
        let mut prefix_bound = vec![0.0f64; m + 1];
        for (i, s) in states.iter().enumerate() {
            prefix_bound[i + 1] = prefix_bound[i] + s.max_weight;
        }

        let mut heap = TopNHeap::new(n);
        let mut scanned = 0usize;
        let mut advances = 0usize;
        let mut skipped = 0usize;
        let mut seeks = 0usize;
        let mut bound_exits = 0usize;
        // Per-document contributions, indexed by original query position so
        // the final sum replays the exhaustive merge's addition order.
        let mut contrib = vec![0.0f64; m];
        // Reused per-candidate scratch: matching essential cursor indices
        // (descending bound order), their exact suffix bounds, and the
        // non-essential shallow block bounds with prefix sums.
        let mut matching: Vec<usize> = Vec::with_capacity(m);
        let mut suffix_bound: Vec<f64> = Vec::with_capacity(m + 1);
        let mut ne_prefix: Vec<f64> = Vec::with_capacity(m + 1);

        // Terms [0, first_essential) are non-essential: their cumulative
        // bound cannot enter the heap, so no document found *only* there
        // can make the top-N. Doc id 0 is the most favorable tie-break, so
        // using it keeps the partition conservative for every document.
        let mut first_essential = 0usize;
        // Contiguous mirror of each cursor's current doc (u32::MAX when
        // exhausted): the min-scan and match tests run over this dense
        // array instead of striding through the larger `TermState`s.
        let mut cur: Vec<u32> = states
            .iter()
            .map(|s| s.cursor.doc().unwrap_or(u32::MAX))
            .collect();

        // Phase 1 — warm-up merge: while the heap is not full every
        // candidate enters, so no bound bookkeeping pays off yet (the
        // partition is necessarily empty too). A plain merge fills the
        // heap as fast as possible. With a cross-engine gate that already
        // *carries a signal* the premise fails — a peer has published a
        // threshold that may disqualify early documents wholesale — so
        // the merge stops as soon as the gate lights up and the
        // bounds-pruned scan takes over (it handles an under-full heap
        // fine: `would_enter` admits everything until capacity, and the
        // gate prunes off the propagated threshold from the very next
        // posting).
        while !heap.is_full() && m > 0 && !gate.has_signal() {
            let next_doc = cur.iter().copied().min().unwrap_or(u32::MAX);
            if next_doc == u32::MAX {
                break; // input exhausted before the heap filled
            }
            for i in 0..m {
                if cur[i] == next_doc {
                    let s = &mut states[i];
                    contrib[s.qpos] = self.kernel.weight(&s.scorer, s.cursor.tf(), next_doc);
                    s.cursor.advance();
                    cur[i] = s.cursor.doc().unwrap_or(u32::MAX);
                    scanned += 1;
                    advances += 1;
                }
            }
            // Sum in original query order (bit-exact with the exhaustive
            // merge).
            let mut score = 0.0f64;
            for &c in contrib.iter() {
                score += c;
            }
            heap.push(next_doc, score);
            gate.publish(&heap);
            contrib.fill(0.0);
        }
        while first_essential < m
            && !(heap.would_enter(prefix_bound[first_essential + 1], 0)
                && gate.admits(prefix_bound[first_essential + 1]))
        {
            first_essential += 1;
        }

        // Phase 2 — bounds-pruned scan.
        loop {
            if first_essential >= m && m > 0 {
                // No remaining document can enter the heap at all.
                break;
            }

            // The next candidate is the minimum current doc across the
            // essential cursors.
            let next_doc = cur[first_essential..]
                .iter()
                .copied()
                .min()
                .unwrap_or(u32::MAX);
            if next_doc == u32::MAX {
                break; // all essential cursors exhausted
            }

            // Cheap first gate (no allocation, no block search): matching
            // cursors' current-block maxima plus the *global* bound of the
            // non-essential prefix. Most candidates match only weak terms
            // and die here — and because the same bound holds for every
            // document up to the matching blocks' boundaries (capped by
            // the non-matching essential cursors' current documents, whose
            // arrival would change the matching set), the whole range is
            // skipped in one galloping move per cursor (block-max deep
            // skip, Ding–Suel style).
            let mut gate_bound = prefix_bound[first_essential];
            let mut skip_to = u32::MAX;
            let mut nonmatch_cap = u32::MAX;
            for i in first_essential..m {
                let d = cur[i];
                if d == next_doc {
                    let s = &states[i];
                    gate_bound += s.local_bound();
                    skip_to = skip_to.min(s.current_block_last().saturating_add(1));
                } else {
                    nonmatch_cap = nonmatch_cap.min(d);
                }
            }
            skip_to = skip_to.min(nonmatch_cap);
            if !(heap.would_enter(gate_bound, next_doc) && gate.admits(gate_bound)) {
                bound_exits += 1;
                // Try widening the skip with the coarse blocks: if even
                // the looser coarse bound cannot enter, the whole coarse
                // range is dead and one gallop clears it. Pointless when
                // another essential cursor's document already caps the
                // skip below the fine-block boundary.
                if skip_to < nonmatch_cap {
                    let mut coarse_gate = prefix_bound[first_essential];
                    let mut coarse_to = u32::MAX;
                    for i in first_essential..m {
                        if cur[i] == next_doc {
                            let s = &states[i];
                            coarse_gate += s.coarse_bound();
                            coarse_to = coarse_to.min(s.current_coarse_last().saturating_add(1));
                        }
                    }
                    if !(heap.would_enter(coarse_gate, next_doc) && gate.admits(coarse_gate)) {
                        skip_to = coarse_to.min(nonmatch_cap).max(skip_to);
                    }
                }
                let single_step = skip_to == next_doc.saturating_add(1);
                for i in first_essential..m {
                    if cur[i] == next_doc {
                        let s = &mut states[i];
                        if single_step {
                            // The posting after the current one is already
                            // >= skip_to: a plain advance beats a gallop.
                            s.cursor.advance();
                            advances += 1;
                            skipped += 1;
                        } else {
                            seeks += 1;
                            skipped += s.cursor.seek(skip_to);
                        }
                        cur[i] = s.cursor.doc().unwrap_or(u32::MAX);
                    }
                }
                continue;
            }

            // Matching essential cursors, strongest bound first
            // (descending, i.e. reverse of the ascending sort).
            matching.clear();
            for i in (first_essential..m).rev() {
                if cur[i] == next_doc {
                    matching.push(i);
                }
            }

            // Fast path for the single-source candidate with nothing
            // non-essential to probe: its score is one weight, so skip
            // the suffix/probe machinery and push directly (0.0 + w is
            // bit-identical to the exhaustive merge's sum).
            if first_essential == 0 && matching.len() == 1 {
                let i = matching[0];
                let s = &mut states[i];
                let w = self.kernel.weight(&s.scorer, s.cursor.tf(), next_doc);
                s.cursor.advance();
                cur[i] = s.cursor.doc().unwrap_or(u32::MAX);
                scanned += 1;
                advances += 1;
                heap.push(next_doc, w);
                gate.publish(&heap);
                while first_essential < m
                    && !(heap.would_enter(prefix_bound[first_essential + 1], 0)
                        && gate.admits(prefix_bound[first_essential + 1]))
                {
                    first_essential += 1;
                }
                continue;
            }
            // Non-essential block-max bounds for this candidate, found by
            // shallow block-boundary searches (cursors do not move).
            // ne_prefix[j + 1] = the most non-essential terms 0..=j can
            // add to `next_doc`.
            ne_prefix.clear();
            ne_prefix.push(0.0);
            for s in &states[..first_essential] {
                let b = ne_prefix[ne_prefix.len() - 1] + s.shallow_bound(next_doc);
                ne_prefix.push(b);
            }
            let ne_total = ne_prefix[first_essential];
            // suffix_bound[k] = the most that matching cursors k.. plus
            // every non-essential term can still add — block-max local
            // bounds, built by exact summation (no subtractive drift) so
            // the pruning bound is never below the true remainder.
            suffix_bound.resize(matching.len() + 1, 0.0);
            suffix_bound[matching.len()] = ne_total;
            for k in (0..matching.len()).rev() {
                suffix_bound[k] = suffix_bound[k + 1] + states[matching[k]].local_bound();
            }

            // Second gate: same matching bounds but with the non-essential
            // part tightened from the global prefix to shallow block
            // maxima at `next_doc`.
            if !(heap.would_enter(suffix_bound[0], next_doc) && gate.admits(suffix_bound[0])) {
                bound_exits += 1;
                for &i in &matching {
                    let s = &mut states[i];
                    s.cursor.advance();
                    cur[i] = s.cursor.doc().unwrap_or(u32::MAX);
                    advances += 1;
                    skipped += 1;
                }
                continue;
            }

            // Score strongest-first, shrinking the remaining bound with
            // each actual weight so hopeless documents are abandoned
            // mid-scoring.
            let mut partial = 0.0f64;
            let mut abandoned = false;
            for (k, &i) in matching.iter().enumerate() {
                let s = &mut states[i];
                if abandoned {
                    s.cursor.advance();
                    advances += 1;
                    skipped += 1;
                } else {
                    let w = self.kernel.weight(&s.scorer, s.cursor.tf(), next_doc);
                    contrib[s.qpos] = w;
                    partial += w;
                    s.cursor.advance();
                    scanned += 1;
                    advances += 1;
                    let rest = partial + suffix_bound[k + 1];
                    if !(heap.would_enter(rest, next_doc) && gate.admits(rest)) {
                        bound_exits += 1;
                        abandoned = true;
                    }
                }
                cur[i] = s.cursor.doc().unwrap_or(u32::MAX);
            }

            // Probe the non-essential terms, strongest bound first, bailing
            // out as soon as the remaining bound cannot reach the heap.
            let mut completed = !abandoned;
            if completed {
                for j in (0..first_essential).rev() {
                    let rest = partial + ne_prefix[j + 1];
                    if !(heap.would_enter(rest, next_doc) && gate.admits(rest)) {
                        bound_exits += 1;
                        completed = false;
                        break;
                    }
                    let s = &mut states[j];
                    seeks += 1;
                    skipped += s.cursor.seek(next_doc);
                    if s.cursor.doc() == Some(next_doc) {
                        let w = self.kernel.weight(&s.scorer, s.cursor.tf(), next_doc);
                        contrib[s.qpos] = w;
                        partial += w;
                        s.cursor.advance();
                        scanned += 1;
                        advances += 1;
                    }
                    cur[j] = s.cursor.doc().unwrap_or(u32::MAX);
                }
            }

            if completed {
                // Re-sum in original query order: identical floating-point
                // addition sequence to the exhaustive/naive paths.
                let mut score = 0.0f64;
                for &c in contrib.iter() {
                    score += c;
                }
                heap.push(next_doc, score);
                gate.publish(&heap);
                // The threshold may have tightened: grow the non-essential
                // prefix (it never shrinks).
                while first_essential < m
                    && !(heap.would_enter(prefix_bound[first_essential + 1], 0)
                        && gate.admits(prefix_bound[first_essential + 1]))
                {
                    first_essential += 1;
                }
            }
            contrib.fill(0.0);
        }

        // Account for the pruned tails so the work ledger balances.
        for s in &states {
            skipped += s.cursor.remaining();
        }

        let candidates = heap.pushes();
        Ok(DaatReport {
            top: heap.into_sorted_vec(),
            postings_scanned: scanned,
            cursor_advances: advances,
            docs_skipped: skipped,
            seeks,
            bound_exits,
            candidates,
        })
    }

    /// Evaluate a query document-at-a-time with the plain exhaustive
    /// cursor merge — every posting of every query term is consumed. The
    /// unpruned baseline that experiment E14 measures [`Self::search`]
    /// against, and the element-at-a-time work reference of E13.
    pub fn search_exhaustive(&self, terms: &[u32], n: usize) -> Result<DaatReport> {
        // Lightweight per-term state: the plain merge needs no bound
        // tables, so this path never triggers the lazy `ScoreBounds`
        // build.
        let mut states: Vec<(PostingCursor<'_>, TermScorer)> = terms
            .iter()
            .map(|&t| {
                Ok((
                    self.index.cursor(t)?,
                    self.kernel
                        .term_scorer(self.index.df(t)?, self.index.cf(t)?),
                ))
            })
            .collect::<Result<_>>()?;

        let mut heap = TopNHeap::new(n);
        let mut scanned = 0usize;
        let mut advances = 0usize;

        loop {
            let mut next_doc = u32::MAX;
            for (cursor, _) in &states {
                if let Some(d) = cursor.doc() {
                    next_doc = next_doc.min(d);
                }
            }
            if next_doc == u32::MAX {
                break; // all cursors exhausted
            }
            // Accumulate this document's score from every matching cursor
            // and advance those cursors (element-at-a-time). States are in
            // query order, so the addition order matches the naive paths.
            let mut score = 0.0f64;
            for (cursor, scorer) in &mut states {
                if cursor.doc() == Some(next_doc) {
                    score += self.kernel.weight(scorer, cursor.tf(), next_doc);
                    cursor.advance();
                    scanned += 1;
                    advances += 1;
                }
            }
            heap.push(next_doc, score);
        }

        let candidates = heap.pushes();
        Ok(DaatReport {
            top: heap.into_sorted_vec(),
            postings_scanned: scanned,
            cursor_advances: advances,
            docs_skipped: 0,
            seeks: 0,
            bound_exits: 0,
            candidates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Searcher;
    use moa_corpus::{generate_queries, Collection, CollectionConfig, DfBias, QueryConfig};

    fn setup() -> (Collection, InvertedIndex) {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        (c, idx)
    }

    fn models() -> Vec<RankingModel> {
        vec![
            RankingModel::TfIdf,
            RankingModel::HiemstraLm { lambda: 0.15 },
            RankingModel::Bm25 { k1: 1.2, b: 0.75 },
        ]
    }

    #[test]
    fn daat_matches_set_at_a_time_exactly() {
        let (c, idx) = setup();
        let model = RankingModel::default();
        let daat = DaatSearcher::new(&idx, model);
        let mut saat = Searcher::new(&idx, model);
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        for q in queries.iter().take(15) {
            let d = daat.search(&q.terms, 20).unwrap();
            let s = saat.search(&q.terms, 20).unwrap();
            assert_eq!(d.top, s.top, "query {:?}", q.terms);
        }
    }

    #[test]
    fn pruned_matches_exhaustive_bit_exactly_for_all_models() {
        let (c, idx) = setup();
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        for model in models() {
            let daat = DaatSearcher::new(&idx, model);
            for q in queries.iter().take(12) {
                for n in [1usize, 5, 20, idx.num_docs()] {
                    let pruned = daat.search(&q.terms, n).unwrap();
                    let full = daat.search_exhaustive(&q.terms, n).unwrap();
                    assert_eq!(pruned.top, full.top, "{model:?} {:?} n={n}", q.terms);
                }
            }
        }
    }

    #[test]
    fn pruning_work_ledger_balances() {
        let (c, idx) = setup();
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        for q in queries.iter().take(12) {
            let volume: usize = q.terms.iter().map(|&t| idx.df(t).unwrap() as usize).sum();
            let rep = daat.search(&q.terms, 10).unwrap();
            assert_eq!(
                rep.postings_scanned + rep.docs_skipped,
                volume,
                "query {:?}",
                q.terms
            );
            assert!(rep.postings_scanned <= volume);
        }
    }

    #[test]
    fn pruned_scans_fewer_postings_at_small_n() {
        let (c, idx) = setup();
        // Frequent terms + small n: the regime where bounds pay off.
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        let queries = generate_queries(
            &c,
            &QueryConfig {
                num_queries: 20,
                bias: DfBias::TrecLike { high_df_mix: 0.3 },
                ..QueryConfig::default()
            },
        )
        .unwrap();
        let mut pruned_total = 0usize;
        let mut full_total = 0usize;
        let mut any_pruning = false;
        for q in &queries {
            let pruned = daat.search(&q.terms, 5).unwrap();
            let full = daat.search_exhaustive(&q.terms, 5).unwrap();
            pruned_total += pruned.postings_scanned;
            full_total += full.postings_scanned;
            if pruned.docs_skipped > 0 {
                any_pruning = true;
                assert!(pruned.seeks > 0 || pruned.bound_exits > 0 || pruned.docs_skipped > 0);
            }
        }
        assert!(any_pruning, "no query pruned anything");
        assert!(
            pruned_total < full_total,
            "pruned {pruned_total} >= exhaustive {full_total}"
        );
    }

    #[test]
    fn exhaustive_work_equals_query_postings() {
        let (_, idx) = setup();
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() / 2]];
        let expect: usize = q.iter().map(|&t| idx.df(t).unwrap() as usize).sum();
        let rep = daat.search_exhaustive(&q, 10).unwrap();
        assert_eq!(rep.postings_scanned, expect);
        assert_eq!(rep.cursor_advances, expect);
        assert_eq!(rep.docs_skipped, 0);
        assert_eq!(rep.seeks, 0);
        assert_eq!(rep.bound_exits, 0);
    }

    #[test]
    fn duplicate_query_terms_accumulate_twice() {
        // Bag-of-words semantics: a term listed twice contributes twice —
        // same as the set-at-a-time evaluator.
        let (_, idx) = setup();
        let model = RankingModel::default();
        let daat = DaatSearcher::new(&idx, model);
        let mut saat = Searcher::new(&idx, model);
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() - 1]];
        let d = daat.search(&q, 5).unwrap();
        let s = saat.search(&q, 5).unwrap();
        assert_eq!(d.top, s.top);
    }

    #[test]
    fn empty_query_and_unknown_term() {
        let (_, idx) = setup();
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        for rep in [
            daat.search(&[], 5).unwrap(),
            daat.search_exhaustive(&[], 5).unwrap(),
        ] {
            assert!(rep.top.is_empty());
            assert_eq!(rep.postings_scanned, 0);
        }
        assert!(daat.search(&[u32::MAX], 5).is_err());
        assert!(daat.search_exhaustive(&[u32::MAX], 5).is_err());
    }

    #[test]
    fn n_zero_prunes_everything() {
        let (_, idx) = setup();
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() / 2]];
        let rep = daat.search(&q, 0).unwrap();
        assert!(rep.top.is_empty());
        // A zero-capacity heap rejects everything: nothing is ever scored.
        assert_eq!(rep.postings_scanned, 0);
        let volume: usize = q.iter().map(|&t| idx.df(t).unwrap() as usize).sum();
        assert_eq!(rep.docs_skipped, volume);
    }

    #[test]
    fn results_are_sorted_descending() {
        let (_, idx) = setup();
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() - 3]];
        let rep = daat.search(&q, 50).unwrap();
        assert!(rep.top.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
