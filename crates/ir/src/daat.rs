//! Document-at-a-time (element-at-a-time) evaluation.
//!
//! The paper's Step 1 observes: *"databases preferably operate set-based in
//! contrast with the element-at-a-time operation of most IR systems, \[so\]
//! IR technology and optimization techniques are not directly applicable in
//! a content based retrieval DBMS."* This module implements that contrasted
//! architecture — per-term posting cursors merged document-at-a-time, as
//! INQUERY-class engines do — so the set-based/element-at-a-time gap can be
//! measured (experiment E13) instead of asserted.
//!
//! The work of a DAAT query is proportional to the *query terms' postings*;
//! the work of an unfragmented set-based (BAT-scan) query is proportional
//! to the *collection volume*. Fragmentation is exactly the device that
//! closes this gap while keeping evaluation set-based.

use moa_topn::TopNHeap;

use crate::error::Result;
use crate::index::InvertedIndex;
use crate::ranking::RankingModel;

/// Result of a document-at-a-time evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct DaatReport {
    /// Top `(doc, score)` pairs, best first.
    pub top: Vec<(u32, f64)>,
    /// Postings consumed (the element-at-a-time work measure).
    pub postings_scanned: usize,
    /// Cursor-advance operations performed.
    pub cursor_advances: usize,
}

/// A document-at-a-time evaluator over per-term posting cursors.
#[derive(Debug)]
pub struct DaatSearcher<'a> {
    index: &'a InvertedIndex,
    model: RankingModel,
}

impl<'a> DaatSearcher<'a> {
    /// Create an evaluator with the given ranking model.
    pub fn new(index: &'a InvertedIndex, model: RankingModel) -> DaatSearcher<'a> {
        DaatSearcher { index, model }
    }

    /// Evaluate a query document-at-a-time, returning the top `n`.
    pub fn search(&self, terms: &[u32], n: usize) -> Result<DaatReport> {
        let stats = self.index.stats();
        // One cursor per term: (docs, tfs, position, df, cf).
        struct Cursor<'p> {
            docs: &'p [u32],
            tfs: &'p [u32],
            pos: usize,
            df: u32,
            cf: u64,
        }
        let mut cursors = Vec::with_capacity(terms.len());
        for &t in terms {
            let (docs, tfs) = self.index.postings(t)?;
            cursors.push(Cursor {
                docs,
                tfs,
                pos: 0,
                df: self.index.df(t)?,
                cf: self.index.cf(t)?,
            });
        }

        let mut heap = TopNHeap::new(n);
        let mut scanned = 0usize;
        let mut advances = 0usize;

        loop {
            // The next document is the minimum current doc across cursors.
            let mut next_doc = u32::MAX;
            for c in &cursors {
                if c.pos < c.docs.len() {
                    next_doc = next_doc.min(c.docs[c.pos]);
                }
            }
            if next_doc == u32::MAX {
                break; // all cursors exhausted
            }
            // Accumulate this document's score from every matching cursor
            // and advance those cursors (element-at-a-time).
            let mut score = 0.0f64;
            for c in &mut cursors {
                if c.pos < c.docs.len() && c.docs[c.pos] == next_doc {
                    score += self.model.term_weight(
                        c.tfs[c.pos],
                        c.df,
                        c.cf,
                        self.index.doc_len(next_doc),
                        &stats,
                    );
                    c.pos += 1;
                    scanned += 1;
                    advances += 1;
                }
            }
            heap.push(next_doc, score);
        }

        Ok(DaatReport {
            top: heap.into_sorted_vec(),
            postings_scanned: scanned,
            cursor_advances: advances,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Searcher;
    use moa_corpus::{generate_queries, Collection, CollectionConfig, QueryConfig};

    fn setup() -> (Collection, InvertedIndex) {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        (c, idx)
    }

    #[test]
    fn daat_matches_set_at_a_time_exactly() {
        let (c, idx) = setup();
        let model = RankingModel::default();
        let daat = DaatSearcher::new(&idx, model);
        let mut saat = Searcher::new(&idx, model);
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        for q in queries.iter().take(15) {
            let d = daat.search(&q.terms, 20).unwrap();
            let s = saat.search(&q.terms, 20).unwrap();
            assert_eq!(d.top.len(), s.top.len(), "query {:?}", q.terms);
            for ((dd, ds), (sd, ss)) in d.top.iter().zip(&s.top) {
                assert_eq!(dd, sd);
                assert!((ds - ss).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn daat_work_equals_query_postings() {
        let (_, idx) = setup();
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() / 2]];
        let expect: usize = q.iter().map(|&t| idx.df(t).unwrap() as usize).sum();
        let rep = daat.search(&q, 10).unwrap();
        assert_eq!(rep.postings_scanned, expect);
        assert_eq!(rep.cursor_advances, expect);
    }

    #[test]
    fn duplicate_query_terms_accumulate_twice() {
        // Bag-of-words semantics: a term listed twice contributes twice —
        // same as the set-at-a-time evaluator.
        let (_, idx) = setup();
        let model = RankingModel::default();
        let daat = DaatSearcher::new(&idx, model);
        let mut saat = Searcher::new(&idx, model);
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() - 1]];
        let d = daat.search(&q, 5).unwrap();
        let s = saat.search(&q, 5).unwrap();
        assert_eq!(
            d.top.first().map(|&(doc, _)| doc),
            s.top.first().map(|&(doc, _)| doc)
        );
        let (ds, ss) = (d.top[0].1, s.top[0].1);
        assert!((ds - ss).abs() < 1e-9);
    }

    #[test]
    fn empty_query_and_unknown_term() {
        let (_, idx) = setup();
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        let rep = daat.search(&[], 5).unwrap();
        assert!(rep.top.is_empty());
        assert_eq!(rep.postings_scanned, 0);
        assert!(daat.search(&[u32::MAX], 5).is_err());
    }

    #[test]
    fn results_are_sorted_descending() {
        let (_, idx) = setup();
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() - 3]];
        let rep = daat.search(&q, 50).unwrap();
        assert!(rep.top.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
