//! Document-at-a-time (element-at-a-time) evaluation, bounds-pruned.
//!
//! The paper's Step 1 observes: *"databases preferably operate set-based in
//! contrast with the element-at-a-time operation of most IR systems, \[so\]
//! IR technology and optimization techniques are not directly applicable in
//! a content based retrieval DBMS."* This module implements that contrasted
//! architecture — per-term posting cursors merged document-at-a-time, as
//! INQUERY-class engines do — so the set-based/element-at-a-time gap can be
//! measured (experiment E13) instead of asserted.
//!
//! [`DaatSearcher::search`] goes further than a plain merge: it applies the
//! same score-upper-bound machinery that powers the TA threshold and the
//! fragmentation safety check *inside* the hot loop, MaxScore-style:
//!
//! 1. query terms are sorted by their maximum possible contribution —
//!    the exact per-term posting maximum the
//!    [`crate::scorer::ScoreKernel`] precomputes at build time,
//! 2. terms whose cumulative bound cannot lift any document into the
//!    current top-N ([`moa_topn::TopNHeap::would_enter`]) become
//!    *non-essential*: their cursors are never merged, only `seek`-ed
//!    (header binary search + single-block unpack on the block-compressed
//!    storage of [`crate::blocks`]),
//! 3. a document whose partial score plus the remaining bound cannot enter
//!    the heap is abandoned early (`bound_exits`).
//!
//! The pruning metadata is **colocated with the storage**: each
//! 128-posting storage block has one [`crate::scorer::BlockBound`]
//! (`last_doc` + exact block-max score + eight 4-bit quantized mini-block
//! maxima) in a contiguous per-term array, so a skip decision costs one
//! 16-byte load — and a rejected block's packed payload is never decoded
//! at all. A block gate that *passes* is refined against the candidates'
//! 16-entry mini-block maxima (nibbles riding in the same 16 bytes)
//! before any scoring happens, which keeps gates discriminating on long
//! runs where whole-block maxima approach the term maxima. Term
//! frequencies decode lazily at mini-block granularity, so even a
//! *scored* candidate inside a block whose siblings were pruned pays only
//! the block's doc half plus one 16-entry tf decode.
//!
//! Results are **bit-exact** with the exhaustive merge
//! ([`DaatSearcher::search_exhaustive`]) and with the set-at-a-time
//! evaluator: per-document contributions are summed in original query-term
//! order, and all paths share the [`crate::scorer::ScoreKernel`] so every
//! weight is the identical `f64`. Only the work differs — `postings_scanned`
//! shrinks, `docs_skipped`/`seeks`/`bound_exits` account for the saving.
//!
//! The `_into` entry points ([`DaatSearcher::search_into`],
//! [`DaatSearcher::search_exhaustive_into`]) run on a caller-owned
//! [`QueryScratch`] and leave the ranking in `scratch.out`: after the
//! first query at a given shape they perform **zero heap allocations**
//! (see `crates/ir/tests/alloc_steady_state.rs`).

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use moa_obs::Phase;

use crate::error::Result;
use crate::index::InvertedIndex;
use crate::ranking::RankingModel;
use crate::scorer::{BlockBound, ScoreBounds, ScoreKernel};
use crate::scratch::{QueryScratch, TermMeta};
use crate::threshold::BoundGate;

/// Work counters of one document-at-a-time evaluation (results live in
/// the scratch's `out` buffer on the `_into` paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[must_use]
pub struct DaatStats {
    /// Postings consumed and scored (the element-at-a-time work measure).
    pub postings_scanned: usize,
    /// Cursor-advance operations performed.
    pub cursor_advances: usize,
    /// Postings bypassed without scoring (via seeks or pruned tails).
    /// `postings_scanned + docs_skipped` equals the exhaustive merge's
    /// posting volume.
    pub docs_skipped: usize,
    /// Skip (`seek`) calls issued.
    pub seeks: usize,
    /// Documents abandoned because partial score + remaining bound could
    /// not enter the top-N heap.
    pub bound_exits: usize,
    /// Documents whose exact score was computed and offered to the heap.
    pub candidates: usize,
    /// Whether the evaluation was truncated by an expired per-query
    /// deadline ([`crate::deadline::DeadlineGate`]). The heap's contents
    /// are exact scores of the documents evaluated so far; the counters
    /// describe the work actually performed.
    pub timed_out: bool,
}

/// Result of a document-at-a-time evaluation (owning form).
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct DaatReport {
    /// Top `(doc, score)` pairs, best first.
    pub top: Vec<(u32, f64)>,
    /// Postings consumed and scored (the element-at-a-time work measure).
    pub postings_scanned: usize,
    /// Cursor-advance operations performed.
    pub cursor_advances: usize,
    /// Postings bypassed without scoring (via galloping seeks or pruned
    /// tails). `postings_scanned + docs_skipped` equals the exhaustive
    /// merge's posting volume.
    pub docs_skipped: usize,
    /// Galloping `seek` calls issued on non-essential cursors.
    pub seeks: usize,
    /// Documents abandoned because partial score + remaining bound could
    /// not enter the top-N heap.
    pub bound_exits: usize,
    /// Documents whose exact score was computed and offered to the heap.
    pub candidates: usize,
    /// Whether the evaluation was truncated by an expired per-query
    /// deadline (partial but exact top; honest work counters).
    pub timed_out: bool,
}

impl DaatStats {
    fn into_report(self, top: Vec<(u32, f64)>) -> DaatReport {
        DaatReport {
            top,
            postings_scanned: self.postings_scanned,
            cursor_advances: self.cursor_advances,
            docs_skipped: self.docs_skipped,
            seeks: self.seeks,
            bound_exits: self.bound_exits,
            candidates: self.candidates,
            timed_out: self.timed_out,
        }
    }
}

/// A document-at-a-time evaluator over block-compressed posting cursors,
/// with a per-index scoring kernel built once and reused across queries.
#[derive(Debug)]
pub struct DaatSearcher<'a> {
    index: &'a InvertedIndex,
    kernel: Arc<ScoreKernel>,
    /// Per-term bound tables, built lazily on the first pruned search —
    /// exhaustive-only users never pay the full scoring pass. Shared
    /// (`Arc`) so the physical layer can hand out per-query searcher views
    /// without rebuilding the tables.
    bounds: Arc<OnceLock<ScoreBounds>>,
}

/// Block-bound of term `meta`'s current block — the one-cache-line skip
/// record (valid only while the cursor is not exhausted).
#[inline]
fn local_bound(bounds: &ScoreBounds, meta: &TermMeta, block: usize) -> BlockBound {
    bounds.at(meta.bounds_start as usize + block)
}

/// Block-max bound on `meta`'s contribution to `target`, found by a
/// *shallow* block-boundary search from the cursor's current block (no
/// posting is decoded and the cursor does not move). 0.0 when the run is
/// exhausted before `target`.
#[inline]
fn shallow_bound(bounds: &ScoreBounds, meta: &TermMeta, block: usize, target: u32) -> f64 {
    let bb = bounds.slice(meta.bounds_start, meta.bounds_len);
    if block >= bb.len() {
        return 0.0;
    }
    let k = block + bb[block..].partition_point(|b| b.last_doc < target);
    bb.get(k).map_or(0.0, |b| b.max_score)
}

impl<'a> DaatSearcher<'a> {
    /// Create an evaluator with the given ranking model, materializing the
    /// per-document norm table once.
    pub fn new(index: &'a InvertedIndex, model: RankingModel) -> DaatSearcher<'a> {
        DaatSearcher::with_shared(
            index,
            Arc::new(ScoreKernel::new(model, index)),
            Arc::new(OnceLock::new()),
        )
    }

    /// Create an evaluator view over shared per-index state. `kernel` must
    /// have been built for `index` with the desired ranking model; `bounds`
    /// caches the lazily built bound tables across views (pass the same
    /// `Arc` every time so the scoring pass happens at most once).
    pub fn with_shared(
        index: &'a InvertedIndex,
        kernel: Arc<ScoreKernel>,
        bounds: Arc<OnceLock<ScoreBounds>>,
    ) -> DaatSearcher<'a> {
        DaatSearcher {
            index,
            kernel,
            bounds,
        }
    }

    fn bounds(&self) -> &ScoreBounds {
        self.bounds
            .get_or_init(|| ScoreBounds::new(&self.kernel, self.index))
    }

    /// The scoring kernel (per-index precomputed state) in use.
    pub fn kernel(&self) -> &ScoreKernel {
        &self.kernel
    }

    /// Evaluate a query document-at-a-time with MaxScore pruning,
    /// returning the top `n`. Bit-exact with
    /// [`DaatSearcher::search_exhaustive`]; strictly less work whenever
    /// the heap threshold disqualifies low-bound terms. Allocating
    /// convenience wrapper over [`DaatSearcher::search_into`].
    pub fn search(&self, terms: &[u32], n: usize) -> Result<DaatReport> {
        self.search_gated(terms, n, &BoundGate::none())
    }

    /// [`DaatSearcher::search`] with a cross-engine threshold hook: every
    /// pruning gate additionally consults `gate` (documents whose bound
    /// falls strictly below the propagated global threshold are skipped
    /// even while the local heap still has room for them), and every heap
    /// insertion publishes the local N-th score back through the gate.
    /// The *local* top-N may therefore lose tail entries that cannot make
    /// the global top-N; the cross-shard merge remains bit-exact.
    pub fn search_gated(&self, terms: &[u32], n: usize, gate: &BoundGate) -> Result<DaatReport> {
        let mut scratch = QueryScratch::new();
        let stats = self.search_into(terms, n, gate, &mut scratch)?;
        Ok(stats.into_report(std::mem::take(&mut scratch.out)))
    }

    /// The MaxScore + block-max pruned kernel on a caller-owned
    /// [`QueryScratch`]: the top `n` lands in `scratch.out` (best first)
    /// and the counters come back by value. Steady-state calls (same or
    /// smaller query shape as previously seen by this scratch) perform
    /// zero heap allocations.
    pub fn search_into(
        &self,
        terms: &[u32],
        n: usize,
        gate: &BoundGate,
        scratch: &mut QueryScratch,
    ) -> Result<DaatStats> {
        // Stage clocks: one `Instant` read per stage *boundary* — setup
        // (gate pass), warm-up merge (decode), pruned scan (score), heap
        // drain (merge) — never inside the per-posting loops, so the
        // telemetry cost is a few clock reads per query.
        let t_gate_pass = Instant::now();
        let bounds = self.bounds();
        let blocks = self.index.blocks();
        let m = terms.len();
        scratch.begin(m, n);
        let QueryScratch {
            metas,
            pos,
            bufs,
            cur,
            contrib,
            prefix_bound,
            matching,
            match_bound,
            suffix_bound,
            ne_prefix,
            heap,
            out,
            phases,
            ..
        } = scratch;

        for (qpos, &t) in terms.iter().enumerate() {
            let df = self.index.df(t)?;
            let cf = self.index.cf(t)?;
            let (bounds_start, bounds_len) = bounds.term_range(t);
            metas.push(TermMeta {
                term: t,
                qpos: qpos as u32,
                scorer: self.kernel.term_scorer(df, cf),
                max_weight: bounds.term_max_weight(t),
                bounds_start,
                bounds_len,
            });
        }
        // Ascending bound order: the cheapest terms come first so a prefix
        // of them can be declared non-essential as the threshold rises.
        // (Unstable sort: the (max_weight, qpos) key is unique per entry.)
        metas.sort_unstable_by(|a, b| {
            a.max_weight
                .total_cmp(&b.max_weight)
                .then(a.qpos.cmp(&b.qpos))
        });
        // prefix_bound[k] = sum of the k smallest per-term bounds: the most
        // any document matching only terms[..k] can score.
        prefix_bound.push(0.0);
        for i in 0..m {
            prefix_bound.push(prefix_bound[i] + metas[i].max_weight);
        }
        // Open one cursor per term; `cur` mirrors each cursor's current doc
        // (u32::MAX when exhausted) so the min-scan and match tests run
        // over a dense array.
        for i in 0..m {
            let view = blocks.view(metas[i].term);
            let p = view.start(&mut bufs[i]);
            cur.push(view.doc_at(&p, &bufs[i]).unwrap_or(u32::MAX));
            pos.push(p);
        }
        // Per-document contributions, indexed by original query position so
        // the final sum replays the exhaustive merge's addition order.
        contrib.resize(m, 0.0);
        phases.add(Phase::GatePass, t_gate_pass.elapsed());

        let mut stats = DaatStats::default();
        let t_decode = Instant::now();

        // Phase 1 — warm-up merge: while the heap is not full every
        // candidate enters, so no bound bookkeeping pays off yet (the
        // partition is necessarily empty too). A plain merge fills the
        // heap as fast as possible. With a cross-engine gate that already
        // *carries a signal* the premise fails — a peer has published a
        // threshold that may disqualify early documents wholesale — so
        // the merge stops as soon as the gate lights up and the
        // bounds-pruned scan takes over (it handles an under-full heap
        // fine: `would_enter` admits everything until capacity, and the
        // gate prunes off the propagated threshold from the very next
        // posting).
        while !heap.is_full() && m > 0 && !gate.has_signal() {
            // Deadline poll at the candidate boundary: truncation only —
            // every score already in the heap is exact.
            if gate.expired() {
                stats.timed_out = true;
                break;
            }
            let next_doc = cur.iter().copied().min().unwrap_or(u32::MAX);
            if next_doc == u32::MAX {
                break; // input exhausted before the heap filled
            }
            for i in 0..m {
                if cur[i] == next_doc {
                    let meta = metas[i];
                    let view = blocks.view(meta.term);
                    let tf = view.tf_at(&mut pos[i], &mut bufs[i]);
                    contrib[meta.qpos as usize] = self.kernel.weight(&meta.scorer, tf, next_doc);
                    view.advance(&mut pos[i], &mut bufs[i]);
                    cur[i] = view.doc_at(&pos[i], &bufs[i]).unwrap_or(u32::MAX);
                    stats.postings_scanned += 1;
                    stats.cursor_advances += 1;
                }
            }
            // Sum in original query order (bit-exact with the exhaustive
            // merge).
            let mut score = 0.0f64;
            for &c in contrib.iter() {
                score += c;
            }
            heap.push(next_doc, score);
            gate.publish(heap);
            contrib.fill(0.0);
        }
        // Terms [0, first_essential) are non-essential: their cumulative
        // bound cannot enter the heap, so no document found *only* there
        // can make the top-N. Doc id 0 is the most favorable tie-break, so
        // using it keeps the partition conservative for every document.
        let mut first_essential = 0usize;
        while first_essential < m
            && !(heap.would_enter(prefix_bound[first_essential + 1], 0)
                && gate.admits(prefix_bound[first_essential + 1]))
        {
            first_essential += 1;
        }
        phases.add(Phase::Decode, t_decode.elapsed());
        let t_score = Instant::now();

        // Phase 2 — bounds-pruned scan.
        loop {
            // Deadline poll at the candidate boundary (phase 1 may have
            // already observed expiry; never start phase 2 then).
            if stats.timed_out || gate.expired() {
                stats.timed_out = true;
                break;
            }
            if first_essential >= m && m > 0 {
                // No remaining document can enter the heap at all.
                break;
            }

            // The next candidate is the minimum current doc across the
            // essential cursors.
            let next_doc = cur[first_essential..]
                .iter()
                .copied()
                .min()
                .unwrap_or(u32::MAX);
            if next_doc == u32::MAX {
                break; // all essential cursors exhausted
            }

            // Cheap first gate: matching cursors' current-block maxima
            // plus the *global* bound of the non-essential prefix. Each
            // matching term contributes one 16-byte BlockBound load —
            // last_doc and max_score together. Most candidates match only
            // weak terms and die here, and because the same bound holds
            // for every document up to the matching blocks' boundaries
            // (capped by the non-matching essential cursors' current
            // documents, whose arrival would change the matching set), the
            // whole storage-block range is skipped in one seek per cursor
            // without decoding any rejected block (Ding–Suel style).
            let mut gate_bound = prefix_bound[first_essential];
            let mut refined = prefix_bound[first_essential];
            let mut skip_to = u32::MAX;
            let mut nonmatch_cap = u32::MAX;
            matching.clear();
            match_bound.clear();
            for i in first_essential..m {
                let d = cur[i];
                if d == next_doc {
                    let b = local_bound(bounds, &metas[i], pos[i].block);
                    gate_bound += b.max_score;
                    skip_to = skip_to.min(b.last_doc.saturating_add(1));
                    matching.push(i);
                    // The mini bound costs one nibble extraction while the
                    // 16-byte record is still in registers; caching it here
                    // spares the refined gate and suffix sums a reload.
                    let mb = b.mini_bound(pos[i].idx);
                    refined += mb;
                    match_bound.push(mb);
                } else {
                    nonmatch_cap = nonmatch_cap.min(d);
                }
            }
            skip_to = skip_to.min(nonmatch_cap);
            if !(heap.would_enter(gate_bound, next_doc) && gate.admits(gate_bound)) {
                stats.bound_exits += 1;
                let single_step = skip_to == next_doc.saturating_add(1);
                for &i in matching.iter() {
                    let view = blocks.view(metas[i].term);
                    if single_step {
                        // The posting after the current one is already
                        // >= skip_to: a plain advance beats a seek.
                        view.advance(&mut pos[i], &mut bufs[i]);
                        stats.cursor_advances += 1;
                        stats.docs_skipped += 1;
                    } else {
                        stats.seeks += 1;
                        stats.docs_skipped += view.seek(&mut pos[i], &mut bufs[i], skip_to);
                    }
                    cur[i] = view.doc_at(&pos[i], &bufs[i]).unwrap_or(u32::MAX);
                }
                continue;
            }

            // Mini-block refinement of the passed block gate: the same
            // matching terms, each bounded by its cursor's 16-entry
            // mini-block maximum — one 4-bit nibble dequantized while the
            // BlockBound was in registers above, so the refined check
            // costs one compare. On long runs the 128-entry block maxima
            // approach the term maxima and stop discriminating; the mini
            // bounds stay tight. The refined bound holds only for *this*
            // candidate (other documents of the block may sit in stronger
            // mini-blocks), so a failure advances one posting instead of
            // skipping to the block horizon.
            if !(heap.would_enter(refined, next_doc) && gate.admits(refined)) {
                stats.bound_exits += 1;
                for &i in matching.iter() {
                    let view = blocks.view(metas[i].term);
                    view.advance(&mut pos[i], &mut bufs[i]);
                    cur[i] = view.doc_at(&pos[i], &bufs[i]).unwrap_or(u32::MAX);
                    stats.cursor_advances += 1;
                    stats.docs_skipped += 1;
                }
                continue;
            }

            // Strongest bound first for scoring (descending, i.e. reverse
            // of the ascending gate order). `match_bound` stays parallel.
            matching.reverse();
            match_bound.reverse();

            // Fast path for the single-source candidate with nothing
            // non-essential to probe: its score is one weight, so skip
            // the suffix/probe machinery and push directly (0.0 + w is
            // bit-identical to the exhaustive merge's sum).
            if first_essential == 0 && matching.len() == 1 {
                let i = matching[0];
                let meta = metas[i];
                let view = blocks.view(meta.term);
                let tf = view.tf_at(&mut pos[i], &mut bufs[i]);
                let w = self.kernel.weight(&meta.scorer, tf, next_doc);
                view.advance(&mut pos[i], &mut bufs[i]);
                cur[i] = view.doc_at(&pos[i], &bufs[i]).unwrap_or(u32::MAX);
                stats.postings_scanned += 1;
                stats.cursor_advances += 1;
                heap.push(next_doc, w);
                gate.publish(heap);
                while first_essential < m
                    && !(heap.would_enter(prefix_bound[first_essential + 1], 0)
                        && gate.admits(prefix_bound[first_essential + 1]))
                {
                    first_essential += 1;
                }
                continue;
            }
            // Non-essential block-max bounds for this candidate, found by
            // shallow block-boundary searches (cursors do not move, no
            // payload is decoded). ne_prefix[j + 1] = the most
            // non-essential terms 0..=j can add to `next_doc`.
            ne_prefix.clear();
            ne_prefix.push(0.0);
            for j in 0..first_essential {
                let b = ne_prefix[j] + shallow_bound(bounds, &metas[j], pos[j].block, next_doc);
                ne_prefix.push(b);
            }
            let ne_total = ne_prefix[first_essential];
            // suffix_bound[k] = the most that matching cursors k.. plus
            // every non-essential term can still add — mini-block refined
            // local bounds (each matching cursor sits *at* this candidate,
            // so its contribution is bounded by its current mini-block),
            // built by exact summation (no subtractive drift) so the
            // pruning bound is never below the true remainder.
            suffix_bound.resize(matching.len() + 1, 0.0);
            suffix_bound[matching.len()] = ne_total;
            for k in (0..matching.len()).rev() {
                suffix_bound[k] = suffix_bound[k + 1] + match_bound[k];
            }

            // Second gate: same matching bounds but with the non-essential
            // part tightened from the global prefix to shallow block
            // maxima at `next_doc`.
            if !(heap.would_enter(suffix_bound[0], next_doc) && gate.admits(suffix_bound[0])) {
                stats.bound_exits += 1;
                for &i in matching.iter() {
                    let view = blocks.view(metas[i].term);
                    view.advance(&mut pos[i], &mut bufs[i]);
                    cur[i] = view.doc_at(&pos[i], &bufs[i]).unwrap_or(u32::MAX);
                    stats.cursor_advances += 1;
                    stats.docs_skipped += 1;
                }
                continue;
            }

            // Score strongest-first, shrinking the remaining bound with
            // each actual weight so hopeless documents are abandoned
            // mid-scoring.
            let mut partial = 0.0f64;
            let mut abandoned = false;
            for k in 0..matching.len() {
                let i = matching[k];
                let meta = metas[i];
                let view = blocks.view(meta.term);
                if abandoned {
                    view.advance(&mut pos[i], &mut bufs[i]);
                    stats.cursor_advances += 1;
                    stats.docs_skipped += 1;
                } else {
                    let tf = view.tf_at(&mut pos[i], &mut bufs[i]);
                    let w = self.kernel.weight(&meta.scorer, tf, next_doc);
                    contrib[meta.qpos as usize] = w;
                    partial += w;
                    view.advance(&mut pos[i], &mut bufs[i]);
                    stats.postings_scanned += 1;
                    stats.cursor_advances += 1;
                    let rest = partial + suffix_bound[k + 1];
                    if !(heap.would_enter(rest, next_doc) && gate.admits(rest)) {
                        stats.bound_exits += 1;
                        abandoned = true;
                    }
                }
                cur[i] = view.doc_at(&pos[i], &bufs[i]).unwrap_or(u32::MAX);
            }

            // Probe the non-essential terms, strongest bound first, bailing
            // out as soon as the remaining bound cannot reach the heap.
            let mut completed = !abandoned;
            if completed {
                for j in (0..first_essential).rev() {
                    let rest = partial + ne_prefix[j + 1];
                    if !(heap.would_enter(rest, next_doc) && gate.admits(rest)) {
                        stats.bound_exits += 1;
                        completed = false;
                        break;
                    }
                    let meta = metas[j];
                    let view = blocks.view(meta.term);
                    stats.seeks += 1;
                    stats.docs_skipped += view.seek(&mut pos[j], &mut bufs[j], next_doc);
                    if view.doc_at(&pos[j], &bufs[j]) == Some(next_doc) {
                        let tf = view.tf_at(&mut pos[j], &mut bufs[j]);
                        let w = self.kernel.weight(&meta.scorer, tf, next_doc);
                        contrib[meta.qpos as usize] = w;
                        partial += w;
                        view.advance(&mut pos[j], &mut bufs[j]);
                        stats.postings_scanned += 1;
                        stats.cursor_advances += 1;
                    }
                    cur[j] = view.doc_at(&pos[j], &bufs[j]).unwrap_or(u32::MAX);
                }
            }

            if completed {
                // Re-sum in original query order: identical floating-point
                // addition sequence to the exhaustive/naive paths.
                let mut score = 0.0f64;
                for &c in contrib.iter() {
                    score += c;
                }
                heap.push(next_doc, score);
                gate.publish(heap);
                // The threshold may have tightened: grow the non-essential
                // prefix (it never shrinks).
                while first_essential < m
                    && !(heap.would_enter(prefix_bound[first_essential + 1], 0)
                        && gate.admits(prefix_bound[first_essential + 1]))
                {
                    first_essential += 1;
                }
            }
            contrib.fill(0.0);
        }

        // Account for the pruned tails so the work ledger balances.
        for i in 0..m {
            let len = blocks.view(metas[i].term).len();
            stats.docs_skipped += len - (pos[i].base + pos[i].idx).min(len);
        }
        phases.add(Phase::Score, t_score.elapsed());

        let t_merge = Instant::now();
        stats.candidates = heap.pushes();
        heap.extract_sorted_into(out);
        phases.add(Phase::Merge, t_merge.elapsed());
        Ok(stats)
    }

    /// Evaluate a query document-at-a-time with the plain exhaustive
    /// cursor merge — every posting of every query term is consumed. The
    /// unpruned baseline that experiments E14/E17 measure [`Self::search`]
    /// against, and the element-at-a-time work reference of E13.
    /// Allocating wrapper over [`DaatSearcher::search_exhaustive_into`].
    pub fn search_exhaustive(&self, terms: &[u32], n: usize) -> Result<DaatReport> {
        let mut scratch = QueryScratch::new();
        let stats = self.search_exhaustive_into(terms, n, &mut scratch)?;
        Ok(stats.into_report(std::mem::take(&mut scratch.out)))
    }

    /// The exhaustive cursor merge on a caller-owned scratch. Never
    /// triggers the lazy [`ScoreBounds`] build — the plain merge needs no
    /// bound tables.
    pub fn search_exhaustive_into(
        &self,
        terms: &[u32],
        n: usize,
        scratch: &mut QueryScratch,
    ) -> Result<DaatStats> {
        self.search_exhaustive_gated_into(terms, n, &BoundGate::none(), scratch)
    }

    /// [`DaatSearcher::search_exhaustive_into`] with a gate hook: the
    /// exhaustive merge cannot prune on a threshold, but it polls the
    /// gate's per-query deadline at each candidate boundary and truncates
    /// honestly once the budget is spent.
    pub fn search_exhaustive_gated_into(
        &self,
        terms: &[u32],
        n: usize,
        gate: &BoundGate,
        scratch: &mut QueryScratch,
    ) -> Result<DaatStats> {
        let t_gate_pass = Instant::now();
        let blocks = self.index.blocks();
        let m = terms.len();
        scratch.begin(m, n);
        let QueryScratch {
            metas,
            pos,
            bufs,
            cur,
            heap,
            out,
            phases,
            ..
        } = scratch;
        // States stay in query order, so the addition order matches the
        // naive paths.
        for (qpos, &t) in terms.iter().enumerate() {
            let df = self.index.df(t)?;
            let cf = self.index.cf(t)?;
            metas.push(TermMeta {
                term: t,
                qpos: qpos as u32,
                scorer: self.kernel.term_scorer(df, cf),
                max_weight: 0.0,
                bounds_start: 0,
                bounds_len: 0,
            });
        }
        for i in 0..m {
            let view = blocks.view(metas[i].term);
            let p = view.start(&mut bufs[i]);
            cur.push(view.doc_at(&p, &bufs[i]).unwrap_or(u32::MAX));
            pos.push(p);
        }
        phases.add(Phase::GatePass, t_gate_pass.elapsed());

        let mut stats = DaatStats::default();
        // The exhaustive merge has no pruned-scan stage: every posting is
        // decoded and scored, so the whole loop is one decode span.
        let t_decode = Instant::now();
        loop {
            let next_doc = cur.iter().copied().min().unwrap_or(u32::MAX);
            if next_doc == u32::MAX {
                break; // all cursors exhausted
            }
            // Deadline poll at the candidate boundary — the exhaustive
            // merge degrades to a document-id-prefix evaluation.
            if gate.expired() {
                stats.timed_out = true;
                break;
            }
            // Accumulate this document's score from every matching cursor
            // and advance those cursors (element-at-a-time).
            let mut score = 0.0f64;
            for i in 0..m {
                if cur[i] == next_doc {
                    let meta = metas[i];
                    let view = blocks.view(meta.term);
                    let tf = view.tf_at(&mut pos[i], &mut bufs[i]);
                    score += self.kernel.weight(&meta.scorer, tf, next_doc);
                    view.advance(&mut pos[i], &mut bufs[i]);
                    cur[i] = view.doc_at(&pos[i], &bufs[i]).unwrap_or(u32::MAX);
                    stats.postings_scanned += 1;
                    stats.cursor_advances += 1;
                }
            }
            heap.push(next_doc, score);
        }
        phases.add(Phase::Decode, t_decode.elapsed());

        let t_merge = Instant::now();
        stats.candidates = heap.pushes();
        heap.extract_sorted_into(out);
        phases.add(Phase::Merge, t_merge.elapsed());
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Searcher;
    use moa_corpus::{generate_queries, Collection, CollectionConfig, DfBias, QueryConfig};

    fn setup() -> (Collection, InvertedIndex) {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        (c, idx)
    }

    fn models() -> Vec<RankingModel> {
        vec![
            RankingModel::TfIdf,
            RankingModel::HiemstraLm { lambda: 0.15 },
            RankingModel::Bm25 { k1: 1.2, b: 0.75 },
        ]
    }

    #[test]
    fn daat_matches_set_at_a_time_exactly() {
        let (c, idx) = setup();
        let model = RankingModel::default();
        let daat = DaatSearcher::new(&idx, model);
        let mut saat = Searcher::new(&idx, model);
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        for q in queries.iter().take(15) {
            let d = daat.search(&q.terms, 20).unwrap();
            let s = saat.search(&q.terms, 20).unwrap();
            assert_eq!(d.top, s.top, "query {:?}", q.terms);
        }
    }

    #[test]
    fn pruned_matches_exhaustive_bit_exactly_for_all_models() {
        let (c, idx) = setup();
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        for model in models() {
            let daat = DaatSearcher::new(&idx, model);
            for q in queries.iter().take(12) {
                for n in [1usize, 5, 20, idx.num_docs()] {
                    let pruned = daat.search(&q.terms, n).unwrap();
                    let full = daat.search_exhaustive(&q.terms, n).unwrap();
                    assert_eq!(pruned.top, full.top, "{model:?} {:?} n={n}", q.terms);
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_scratch() {
        // One scratch reused across queries of varying widths and depths
        // answers exactly as a fresh scratch per query.
        let (c, idx) = setup();
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        let mut reused = QueryScratch::new();
        for q in queries.iter().take(15) {
            for n in [1usize, 10] {
                let stats = daat
                    .search_into(&q.terms, n, &BoundGate::none(), &mut reused)
                    .unwrap();
                let fresh = daat.search(&q.terms, n).unwrap();
                assert_eq!(reused.out, fresh.top, "query {:?} n={n}", q.terms);
                assert_eq!(stats.postings_scanned, fresh.postings_scanned);
                assert_eq!(stats.docs_skipped, fresh.docs_skipped);
                assert_eq!(stats.seeks, fresh.seeks);
                assert_eq!(stats.bound_exits, fresh.bound_exits);
                assert_eq!(stats.candidates, fresh.candidates);
                // Exhaustive reuse through the same scratch too.
                let ex = daat
                    .search_exhaustive_into(&q.terms, n, &mut reused)
                    .unwrap();
                assert_eq!(reused.out, fresh.top);
                assert_eq!(
                    ex.postings_scanned,
                    stats.postings_scanned + stats.docs_skipped
                );
            }
        }
    }

    #[test]
    fn pruning_work_ledger_balances() {
        let (c, idx) = setup();
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        for q in queries.iter().take(12) {
            let volume: usize = q.terms.iter().map(|&t| idx.df(t).unwrap() as usize).sum();
            let rep = daat.search(&q.terms, 10).unwrap();
            assert_eq!(
                rep.postings_scanned + rep.docs_skipped,
                volume,
                "query {:?}",
                q.terms
            );
            assert!(rep.postings_scanned <= volume);
        }
    }

    #[test]
    fn pruned_scans_fewer_postings_at_small_n() {
        let (c, idx) = setup();
        // Frequent terms + small n: the regime where bounds pay off.
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        let queries = generate_queries(
            &c,
            &QueryConfig {
                num_queries: 20,
                bias: DfBias::TrecLike { high_df_mix: 0.3 },
                ..QueryConfig::default()
            },
        )
        .unwrap();
        let mut pruned_total = 0usize;
        let mut full_total = 0usize;
        let mut any_pruning = false;
        for q in &queries {
            let pruned = daat.search(&q.terms, 5).unwrap();
            let full = daat.search_exhaustive(&q.terms, 5).unwrap();
            pruned_total += pruned.postings_scanned;
            full_total += full.postings_scanned;
            if pruned.docs_skipped > 0 {
                any_pruning = true;
                assert!(pruned.seeks > 0 || pruned.bound_exits > 0 || pruned.docs_skipped > 0);
            }
        }
        assert!(any_pruning, "no query pruned anything");
        assert!(
            pruned_total < full_total,
            "pruned {pruned_total} >= exhaustive {full_total}"
        );
    }

    #[test]
    fn exhaustive_work_equals_query_postings() {
        let (_, idx) = setup();
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() / 2]];
        let expect: usize = q.iter().map(|&t| idx.df(t).unwrap() as usize).sum();
        let rep = daat.search_exhaustive(&q, 10).unwrap();
        assert_eq!(rep.postings_scanned, expect);
        assert_eq!(rep.cursor_advances, expect);
        assert_eq!(rep.docs_skipped, 0);
        assert_eq!(rep.seeks, 0);
        assert_eq!(rep.bound_exits, 0);
    }

    #[test]
    fn duplicate_query_terms_accumulate_twice() {
        // Bag-of-words semantics: a term listed twice contributes twice —
        // same as the set-at-a-time evaluator.
        let (_, idx) = setup();
        let model = RankingModel::default();
        let daat = DaatSearcher::new(&idx, model);
        let mut saat = Searcher::new(&idx, model);
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() - 1]];
        let d = daat.search(&q, 5).unwrap();
        let s = saat.search(&q, 5).unwrap();
        assert_eq!(d.top, s.top);
    }

    #[test]
    fn empty_query_and_unknown_term() {
        let (_, idx) = setup();
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        for rep in [
            daat.search(&[], 5).unwrap(),
            daat.search_exhaustive(&[], 5).unwrap(),
        ] {
            assert!(rep.top.is_empty());
            assert_eq!(rep.postings_scanned, 0);
        }
        assert!(daat.search(&[u32::MAX], 5).is_err());
        assert!(daat.search_exhaustive(&[u32::MAX], 5).is_err());
    }

    #[test]
    fn n_zero_prunes_everything() {
        let (_, idx) = setup();
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() / 2]];
        let rep = daat.search(&q, 0).unwrap();
        assert!(rep.top.is_empty());
        // A zero-capacity heap rejects everything: nothing is ever scored.
        assert_eq!(rep.postings_scanned, 0);
        let volume: usize = q.iter().map(|&t| idx.df(t).unwrap() as usize).sum();
        assert_eq!(rep.docs_skipped, volume);
    }

    #[test]
    fn results_are_sorted_descending() {
        let (_, idx) = setup();
        let daat = DaatSearcher::new(&idx, RankingModel::default());
        let terms = idx.terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() - 3]];
        let rep = daat.search(&q, 50).unwrap();
        assert!(rep.top.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
