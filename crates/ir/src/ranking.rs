//! Ranking models.
//!
//! Three probabilistic/vector-space models of the paper's era, all with the
//! property the fragmentation strategy relies on: **rare (low-df) terms
//! contribute the bulk of a document's score**, so evaluating only the
//! "interesting" fragment retains most of the ranking signal.
//!
//! * TF-IDF — `(1 + ln tf) · ln(N / df)`, length-normalized.
//! * Hiemstra's language model (the mi Ror group's own model, used at TREC):
//!   `ln(1 + (λ · tf · |C|) / ((1−λ) · cf · |d|))`.
//! * BM25 — the Robertson/Sparck-Jones baseline.

use crate::index::CollectionStats;
use crate::scorer::TermScorer;

/// A per-term document scoring model. Scores are summed over query terms
/// (bag-of-words, conjunctive-free evaluation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankingModel {
    /// Length-normalized TF-IDF.
    TfIdf,
    /// Hiemstra's linearly smoothed language model with mixing weight
    /// `lambda` in (0, 1).
    HiemstraLm {
        /// Probability mass given to the document model (vs collection).
        lambda: f64,
    },
    /// Okapi BM25 with the usual `k1`/`b` parameters.
    Bm25 {
        /// Term-frequency saturation.
        k1: f64,
        /// Length-normalization strength.
        b: f64,
    },
}

impl Default for RankingModel {
    fn default() -> Self {
        RankingModel::HiemstraLm { lambda: 0.15 }
    }
}

impl RankingModel {
    /// The score contribution of one query term occurring `tf` times in a
    /// document of `doc_len` tokens, given the term's document frequency
    /// `df`, collection frequency `cf`, and collection statistics.
    ///
    /// Returns 0.0 for degenerate inputs (`tf == 0` or `df == 0`).
    ///
    /// Delegates to [`TermScorer`] and [`RankingModel::doc_norm`] — the
    /// precomputed hot paths execute the identical floating-point
    /// operations, so naive and bounds-pruned evaluation agree bit-exactly.
    pub fn term_weight(
        &self,
        tf: u32,
        df: u32,
        cf: u64,
        doc_len: u32,
        stats: &CollectionStats,
    ) -> f64 {
        TermScorer::new(*self, df, cf, stats).weight(tf, self.doc_norm(doc_len, stats))
    }

    /// The per-document length-normalization factor of this model:
    /// `1/√dl` for TF-IDF, `1/dl` for Hiemstra, and the BM25 denominator
    /// norm `k1·(1 − b + b·dl/avgdl)`. [`crate::scorer::ScoreKernel`]
    /// caches this per document so the per-posting work is a multiply-add.
    pub fn doc_norm(&self, doc_len: u32, stats: &CollectionStats) -> f64 {
        let dl = f64::from(doc_len.max(1));
        match *self {
            RankingModel::TfIdf => dl.sqrt().recip(),
            RankingModel::HiemstraLm { .. } => dl.recip(),
            RankingModel::Bm25 { k1, b } => k1 * (1.0 - b + b * dl / stats.avg_doc_len.max(1.0)),
        }
    }

    /// An upper bound on the contribution any single posting of this term
    /// can make, given the term's maximum within-document tf. Used by the
    /// fragmentation safety check to bound what fragment B could add.
    pub fn max_term_weight(&self, max_tf: u32, df: u32, cf: u64, stats: &CollectionStats) -> f64 {
        // Shortest plausible document maximizes all three models' weights.
        let min_dl = 1u32;
        self.term_weight(max_tf, df, cf, min_dl, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> CollectionStats {
        CollectionStats {
            num_docs: 1_000,
            avg_doc_len: 100.0,
            total_tokens: 100_000,
        }
    }

    fn models() -> Vec<RankingModel> {
        vec![
            RankingModel::TfIdf,
            RankingModel::HiemstraLm { lambda: 0.15 },
            RankingModel::Bm25 { k1: 1.2, b: 0.75 },
        ]
    }

    #[test]
    fn zero_tf_or_df_scores_zero() {
        let s = stats();
        for m in models() {
            assert_eq!(m.term_weight(0, 10, 10, 100, &s), 0.0);
            assert_eq!(m.term_weight(5, 0, 10, 100, &s), 0.0);
        }
    }

    #[test]
    fn weight_increases_with_tf() {
        let s = stats();
        for m in models() {
            let w1 = m.term_weight(1, 10, 50, 100, &s);
            let w3 = m.term_weight(3, 10, 50, 100, &s);
            let w9 = m.term_weight(9, 10, 50, 100, &s);
            assert!(w1 < w3 && w3 < w9, "{m:?}: {w1} {w3} {w9}");
        }
    }

    #[test]
    fn rare_terms_outweigh_frequent_terms() {
        // The property the fragmentation rests on: same tf, lower df/cf ⇒
        // larger contribution.
        let s = stats();
        for m in models() {
            let rare = m.term_weight(2, 5, 12, 100, &s);
            let common = m.term_weight(2, 800, 5_000, 100, &s);
            assert!(
                rare > 2.0 * common,
                "{m:?}: rare {rare} not ≫ common {common}"
            );
        }
    }

    #[test]
    fn longer_documents_are_penalized() {
        let s = stats();
        for m in models() {
            let short = m.term_weight(2, 10, 50, 50, &s);
            let long = m.term_weight(2, 10, 50, 500, &s);
            assert!(short > long, "{m:?}: short {short} <= long {long}");
        }
    }

    #[test]
    fn weights_are_finite_and_positive() {
        let s = stats();
        for m in models() {
            for (tf, df, cf, dl) in [(1u32, 1u32, 1u64, 1u32), (100, 999, 99_999, 10_000)] {
                let w = m.term_weight(tf, df, cf, dl, &s);
                assert!(
                    w.is_finite() && w > 0.0,
                    "{m:?} ({tf},{df},{cf},{dl}) => {w}"
                );
            }
        }
    }

    #[test]
    fn max_term_weight_bounds_actual_weights() {
        let s = stats();
        for m in models() {
            let bound = m.max_term_weight(7, 10, 70, &s);
            for tf in 1..=7u32 {
                for dl in [1u32, 10, 100, 1000] {
                    let w = m.term_weight(tf, 10, 70, dl, &s);
                    assert!(w <= bound + 1e-12, "{m:?}: {w} > bound {bound}");
                }
            }
        }
    }

    #[test]
    fn hiemstra_lambda_is_clamped() {
        let s = stats();
        let extreme = RankingModel::HiemstraLm { lambda: 1.0 };
        let w = extreme.term_weight(2, 10, 50, 100, &s);
        assert!(w.is_finite());
        let zero = RankingModel::HiemstraLm { lambda: 0.0 };
        assert!(zero.term_weight(2, 10, 50, 100, &s).is_finite());
    }

    #[test]
    fn default_model_is_hiemstra() {
        assert!(matches!(
            RankingModel::default(),
            RankingModel::HiemstraLm { .. }
        ));
    }
}
