//! Sparse score accumulator shared by the set-at-a-time evaluators.
//!
//! [`crate::eval::Searcher`] and [`crate::fragment::FragSearcher`] both
//! accumulate per-document partial scores in a dense array but touch only
//! the documents their query terms reach. An *epoch marker* distinguishes
//! this query's slots from stale ones, so a legitimately-zero partial
//! score (e.g. an idf of exactly zero when `df == N`) can never be
//! mistaken for "untouched" and double-counted, and no O(num_docs) reset
//! is needed between queries.

/// A reusable sparse accumulator: dense score slots, epoch-marked
/// touched tracking, lazy reset.
#[derive(Debug, Clone)]
pub struct EpochAccumulator {
    scores: Vec<f64>,
    /// `epoch[doc] == cur_epoch` iff `scores[doc]` belongs to this query.
    epoch: Vec<u32>,
    cur_epoch: u32,
    touched: Vec<u32>,
}

impl EpochAccumulator {
    /// Create an accumulator over `num_docs` score slots.
    pub fn new(num_docs: usize) -> EpochAccumulator {
        EpochAccumulator {
            scores: vec![0.0; num_docs],
            epoch: vec![0; num_docs],
            cur_epoch: 1,
            touched: Vec::new(),
        }
    }

    /// Add `w` to `doc`'s partial score, registering the document as
    /// touched on first contact (even when `w == 0.0`).
    #[inline]
    pub fn add(&mut self, doc: u32, w: f64) {
        let slot = doc as usize;
        if self.epoch[slot] != self.cur_epoch {
            self.epoch[slot] = self.cur_epoch;
            self.scores[slot] = 0.0;
            self.touched.push(doc);
        }
        self.scores[slot] += w;
    }

    /// The documents touched by the current query, in first-touch order.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// The current partial score of a touched document.
    #[inline]
    pub fn score(&self, doc: u32) -> f64 {
        self.scores[doc as usize]
    }

    /// Finish the current query: clear the touched list and bump the
    /// epoch so every slot reads as untouched again. One full marker
    /// clear every 2^32 queries keeps the wraparound sound.
    pub fn retire(&mut self) {
        self.touched.clear();
        self.cur_epoch = self.cur_epoch.wrapping_add(1);
        if self.cur_epoch == 0 {
            self.epoch.fill(0);
            self.cur_epoch = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_contribution_is_touched_exactly_once() {
        let mut acc = EpochAccumulator::new(4);
        acc.add(2, 0.0);
        acc.add(2, 0.0);
        acc.add(1, 1.5);
        assert_eq!(acc.touched(), &[2, 1]);
        assert_eq!(acc.score(2), 0.0);
        assert_eq!(acc.score(1), 1.5);
    }

    #[test]
    fn retire_resets_lazily() {
        let mut acc = EpochAccumulator::new(3);
        acc.add(0, 2.0);
        acc.retire();
        assert!(acc.touched().is_empty());
        acc.add(0, 1.0);
        assert_eq!(acc.score(0), 1.0, "stale score must not leak");
        assert_eq!(acc.touched(), &[0]);
    }

    #[test]
    fn epoch_wraparound_stays_sound() {
        let mut acc = EpochAccumulator::new(2);
        acc.add(0, 1.0);
        acc.retire();
        // Force the wrap: the next retire rolls cur_epoch over 0.
        acc.cur_epoch = u32::MAX;
        acc.add(1, 3.0);
        acc.retire();
        assert_eq!(acc.cur_epoch, 1);
        acc.add(1, 0.5);
        assert_eq!(acc.score(1), 0.5);
        assert_eq!(acc.touched(), &[1]);
    }
}
